"""repro.faults — fault injection and resilience policies.

The paper's pipeline assumes a lossless network and never-failing
stages; this package supplies the machinery to break that assumption on
purpose and to survive it:

- :class:`LiveFaultSpec` / :func:`parse_fault` — wire-level faults for
  the live substrate (corrupt, truncate, drop, delay);
- :class:`FaultInjector` — deterministic counter-based trigger hooked
  into :class:`~repro.live.transport.FramedSender`;
- :class:`RetryPolicy` — capped exponential backoff for the resilient
  sender's reconnect loop;
- :class:`TimeoutPolicy` — the consolidated live-endpoint timeout
  knobs.

Simulator-side faults stay on :class:`repro.core.config.FaultSpec`
(``stall`` / ``degrade`` / ``crash`` / ``reconnect``) so a scenario
file can model the same recovery cost the live substrate pays for
real.  See ``docs/resilience.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.policy import RetryPolicy, TimeoutPolicy
from repro.faults.spec import LIVE_FAULT_KINDS, LiveFaultSpec, parse_fault

__all__ = [
    "FaultInjector",
    "LIVE_FAULT_KINDS",
    "LiveFaultSpec",
    "RetryPolicy",
    "TimeoutPolicy",
    "parse_fault",
]
