"""Fault specifications for the live (socket) substrate.

The simulator describes faults with :class:`repro.core.config.FaultSpec`
(stall / degrade / crash / reconnect on a pipeline thread, in simulated
seconds).  The live substrate needs a different vocabulary — its faults
live on the *wire*: a frame arrives corrupted, a connection resets
mid-stream, the network hiccups.  :class:`LiveFaultSpec` is that
vocabulary, and :func:`parse_fault` is the CLI surface for it
(``repro-live --fault drop:at=5``).

Both spec families share the same shape on purpose: a *kind*, a trigger
point, and a magnitude — so a chaos scenario reads the same whether it
targets the simulator or real sockets (``docs/resilience.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ValidationError

#: Fault kinds the live injector knows how to fire.
#:
#: - ``corrupt``  — flip a byte of the frame on the wire (checksum trips)
#: - ``truncate`` — send half the frame, then close the connection
#: - ``drop``     — close the connection without sending (TCP reset)
#: - ``delay``    — sleep ``delay`` seconds before sending (network stall)
LIVE_FAULT_KINDS = ("corrupt", "truncate", "drop", "delay")


@dataclass(frozen=True)
class LiveFaultSpec:
    """One injected fault on the live transport's send path."""

    kind: str
    #: Fire once the injector has seen this many frames (across all
    #: connections of the sender).
    at_frame: int = 0
    #: Restrict to one sender connection index; None hits whichever
    #: connection reaches the trigger first.
    connection: int | None = None
    #: Sleep duration for ``kind="delay"``.
    delay: float = 0.05
    #: How many times this spec fires (>1 models a flaky link).
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in LIVE_FAULT_KINDS:
            raise ValidationError(
                f"unknown live fault kind {self.kind!r} "
                f"(choose from {', '.join(LIVE_FAULT_KINDS)})"
            )
        if self.at_frame < 0:
            raise ValidationError("at_frame must be >= 0")
        if self.connection is not None and self.connection < 0:
            raise ValidationError("connection must be >= 0")
        if self.delay < 0:
            raise ValidationError("delay must be >= 0")
        if self.count < 1:
            raise ValidationError("count must be >= 1")


def parse_fault(text: str) -> LiveFaultSpec:
    """Parse one ``--fault`` CLI argument into a :class:`LiveFaultSpec`.

    Grammar: ``KIND[:key=value,...]`` with keys ``at`` (frame index),
    ``conn`` (connection index), ``delay`` (seconds), ``count``::

        drop                    # reset the first connection immediately
        drop:at=5               # reset after 5 frames went out
        corrupt:at=3,conn=1     # corrupt connection 1's 4th frame
        delay:at=0,delay=0.2,count=8
    """
    kind, _, rest = text.partition(":")
    kwargs: dict[str, int | float | None] = {}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValidationError(
                    f"bad --fault option {item!r} (want key=value)"
                )
            try:
                if key == "at":
                    kwargs["at_frame"] = int(value)
                elif key == "conn":
                    kwargs["connection"] = int(value)
                elif key == "delay":
                    kwargs["delay"] = float(value)
                elif key == "count":
                    kwargs["count"] = int(value)
                else:
                    raise ValidationError(
                        f"unknown --fault option {key!r} "
                        "(known: at, conn, delay, count)"
                    )
            except ValueError as exc:
                raise ValidationError(
                    f"bad --fault value {item!r}: {exc}"
                ) from exc
    return LiveFaultSpec(kind=kind, **kwargs)
