"""Deterministic fault injection for the live transport.

A :class:`FaultInjector` is attached to one sender's
:class:`~repro.live.transport.FramedSender` instances (one injector
shared across all of that sender's connections).  The transport asks it
before every frame goes out; the injector answers with the
:class:`~repro.faults.spec.LiveFaultSpec` to apply, or ``None``.

Triggering is counter-based, not random: spec ``at_frame=N`` fires on
the N-th frame the *sender as a whole* puts on the wire, which makes
chaos tests reproducible without seeding a RNG.  Each spec fires at
most ``count`` times; retransmitted frames count like any other frame
(so a fault with ``count=1`` cannot re-kill its own retransmission).
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro.faults.spec import LiveFaultSpec


class FaultInjector:
    """Decides which transmitted frames get sabotaged, and how."""

    def __init__(
        self,
        specs: Iterable[LiveFaultSpec] = (),
        *,
        telemetry=None,
    ) -> None:
        self._entries: list[list] = [[spec, spec.count] for spec in specs]
        self._lock = threading.Lock()
        self._frames_seen = 0
        self._fired: list[tuple[int, LiveFaultSpec]] = []
        self.telemetry = telemetry

    @property
    def frames_seen(self) -> int:
        """Frames the attached sender has attempted so far."""
        return self._frames_seen

    @property
    def fired(self) -> Sequence[tuple[int, LiveFaultSpec]]:
        """(frame number, spec) pairs for every fault that fired."""
        return tuple(self._fired)

    @property
    def exhausted(self) -> bool:
        """True once every spec has fired its full ``count``."""
        with self._lock:
            return all(remaining <= 0 for _, remaining in self._entries)

    def on_send(self, frame, connection: int = 0) -> LiveFaultSpec | None:
        """Called by the transport before each frame; picks the fault.

        At most one spec fires per frame (the first armed match, in
        declaration order).
        """
        with self._lock:
            n = self._frames_seen
            self._frames_seen += 1
            for entry in self._entries:
                spec, remaining = entry
                if remaining <= 0 or n < spec.at_frame:
                    continue
                if spec.connection is not None and spec.connection != connection:
                    continue
                entry[1] = remaining - 1
                self._fired.append((n, spec))
                break
            else:
                return None
        if self.telemetry is not None:
            self.telemetry.record_fault(spec.kind)
            self.telemetry.emit_event(
                "fault_injected",
                f"{spec.kind} fault on frame {n}",
                severity="warning",
                fault=spec.kind,
                frame=n,
                connection=connection,
            )
        return spec
