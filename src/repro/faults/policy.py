"""Resilience policies shared by the live endpoints.

:class:`RetryPolicy` shapes the sender's reconnect loop (capped
exponential backoff); :class:`TimeoutPolicy` is the single home for
every live-endpoint timeout knob used by
:class:`~repro.live.remote.ReceiverServer`,
:class:`~repro.live.remote.SenderClient` and
:class:`~repro.live.runtime.LiveConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transport reconnects."""

    #: Reconnect attempts before the sender gives up on a connection.
    max_attempts: int = 5
    #: Sleep before the first retry, seconds.
    base_delay: float = 0.05
    #: Backoff growth factor per failed attempt.
    multiplier: float = 2.0
    #: Ceiling on any single backoff sleep, seconds.
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValidationError("multiplier must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based), seconds."""
        if attempt < 0:
            raise ValidationError("attempt must be >= 0")
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def schedule(self) -> list[float]:
        """The full backoff schedule, for logs and tests."""
        return [self.backoff(i) for i in range(self.max_attempts)]


@dataclass(frozen=True)
class TimeoutPolicy:
    """Every live-endpoint timeout, in one place (seconds)."""

    #: Sender: establishing one TCP connection.
    connect: float = 30.0
    #: Receiver: longest tolerated stall with no frames, accepts or
    #: stream completions before ``serve()`` gives up.
    accept: float = 30.0
    #: Both endpoints: joining worker threads at the end of a run.
    join: float = 120.0
    #: Sender: waiting for the receiver to acknowledge the last frames
    #: after end-of-stream.
    drain: float = 30.0

    def __post_init__(self) -> None:
        for name in ("connect", "accept", "join", "drain"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"timeout {name!r} must be > 0")
