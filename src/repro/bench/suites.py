"""The pinned benchmark suites behind ``repro-bench``.

Four benchmarks, each a pair (or more) of configurations measured in
the same process so their ratio is host-independent:

- **queue handoff** — :class:`~repro.live.queues.ClosableQueue` one
  item per lock round-trip vs ``put_many``/``get_many`` batches;
- **framing** — the transport send path: per-frame join+``sendall``
  copy vs zero-copy vectored ``send_many`` over a real socketpair,
  with per-frame latency percentiles;
- **loopback pipeline** — the full live pipeline end to end on a
  transport-dominated workload (small chunks, null codec), pre-PR
  copy path vs vectored+batched; this ratio is the CI gate;
- **process scaling** — the codec-dominated regime (pure-Python LZ4,
  so compression holds the GIL) at 1/2/4 compressor domains, thread
  mode vs :class:`~repro.mp.ProcessPipeline`; on hosts with >= 4 CPUs
  the 4-domain process/thread ratio is gated, because that is the
  configuration where sidestepping the GIL must show up;
- **codec frontier** — the ratio-vs-throughput frontier of every
  static codec over three entropy regimes (RNG noise, smooth uint16
  ramps, sphere-phantom projections), plus the mixed-entropy corpus
  end to end: per-chunk adaptive selection must land within 5% of the
  best static codec and beat the worst by >= 1.3x (both gated);
- **many streams** — the event-loop receiver plane under a 10x spread
  of concurrent loopback streams (one connection each); per-stream
  cost must stay flat (within 1.5x) as the count scales, with zero
  delivery errors and p99 stream-completion latency reported;
- **trace overhead** — the telemetry-instrumented loopback pipeline
  with flow tracing off, armed-but-idle, and at the recommended
  1-in-64 head-sampling rate; arming must cost <= 1% and 1-in-64
  <= 5% (both gated), so tracing can stay on in production;
- **sim scenario** — the discrete-event runtime on a generated
  paper-testbed scenario, simulated chunks per wall second.

Workloads are deliberately small-payload: the point is to measure the
*per-frame* machinery (syscalls, header joins, lock round-trips), not
``memcpy`` bandwidth, because that is the regime where the hot-path
rewrite matters and where regressions would hide otherwise.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import TYPE_CHECKING, Iterator

from repro.bench.harness import (
    BenchReport,
    BenchResult,
    GateResult,
    latency_summary,
)
from repro.data.chunking import Chunk
from repro.live.queues import ClosableQueue, Closed
from repro.live.transport import Frame, FramedReceiver, FramedSender

if TYPE_CHECKING:
    from repro.compress.codec import Codec

#: The CI gate: loopback pipeline, fast path vs pre-PR copy path.
LOOPBACK_GATE_THRESHOLD = 1.3

#: The observability gate: throughput with the full obs plane attached
#: (events + watchdog + HTTP server + profiler) must stay within 5% of
#: telemetry-only, i.e. rate ratio >= 0.95.
OBS_GATE_THRESHOLD = 0.95

#: The process-mode gate: with 4 compressor domains on a GIL-bound
#: codec, process mode must beat thread mode by at least this much.
#: Only applied on hosts with >= PROCESS_GATE_MIN_CPUS usable CPUs —
#: on smaller hosts there is no parallelism for process mode to win.
PROCESS_SCALING_GATE_THRESHOLD = 1.5
PROCESS_GATE_MIN_CPUS = 4

#: The autotune gate: the paper's misconfiguration story, closed-loop.
#: After an injected load shift the static plan starves the compress
#: stage; with the controller on (watchdog backpressure -> plan delta
#: -> live scale-up) end-to-end throughput must recover to at least
#: 1.2x the static-misconfigured run.
AUTOTUNE_GATE_THRESHOLD = 1.2

#: The many-streams gate: the event-loop receiver's per-stream cost at
#: 10x the stream count must stay flat — the gate value is the ratio
#: per-stream-seconds(small) / per-stream-seconds(large), so >= 1/1.5
#: means the large run costs at most 1.5x per stream.
MANY_STREAMS_GATE_THRESHOLD = 1 / 1.5

#: The flow-tracing gates, on the telemetry-instrumented loopback
#: pipeline.  Arming the tracer (a per-chunk head-sampling decision in
#: the feeder, with a rate so sparse essentially nothing is sampled)
#: must stay within 1% of tracing-off, and a realistic 1-in-64
#: sampling rate — trailer packing, wire-span recording, clock-offset
#: observation for every 64th chunk — within 5%.
TRACE_OFF_GATE_THRESHOLD = 0.99
TRACE_SAMPLING_GATE_THRESHOLD = 0.95

#: The adaptive-codec gates, over the mixed-entropy loopback corpus:
#: per-chunk selection must land within 5% of the best static codec's
#: end-to-end throughput (it converges to the right choice per entropy
#: band) and beat the worst static by a wide margin (it never commits
#: to a codec that is catastrophic for the data actually flowing).
CODEC_BEST_GATE_THRESHOLD = 0.95
CODEC_WORST_GATE_THRESHOLD = 1.3


# ---------------------------------------------------------------------------
# queue handoff
# ---------------------------------------------------------------------------


def _queue_round_trip(items: int, batch: int, capacity: int = 256) -> float:
    """Producer thread -> consumer (caller), returning wall seconds."""
    q: ClosableQueue = ClosableQueue(
        capacity=capacity, producers=1, name="bench"
    )
    payload = list(range(items))

    def produce() -> None:
        if batch == 1:
            for item in payload:
                q.put(item)
        else:
            done = 0
            while done < len(payload):
                done += q.put_many(payload[done:done + batch])
        q.close()

    worker = threading.Thread(target=produce, name="bench-producer")
    start = time.perf_counter()
    worker.start()
    got = 0
    try:
        while True:
            if batch == 1:
                q.get()
                got += 1
            else:
                got += len(q.get_many(batch))
    except Closed:
        pass
    elapsed = time.perf_counter() - start
    worker.join()
    if got != items:
        raise RuntimeError(f"queue bench lost items: {got} != {items}")
    return elapsed


def bench_queue_handoff(*, quick: bool = False) -> list[BenchResult]:
    items = 20_000 if quick else 100_000
    batch = 64
    results = []
    for name, b in (("queue_handoff_single", 1), ("queue_handoff_batched", batch)):
        elapsed = _queue_round_trip(items, b)
        results.append(
            BenchResult(
                name=name,
                value=items / elapsed,
                unit="ops/s",
                duration_s=elapsed,
                n=items,
                params={"items": items, "batch": b, "capacity": 256},
            )
        )
    return results


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def _drain(rx: FramedReceiver, frames: int) -> threading.Thread:
    """Background thread consuming ``frames`` frames then returning."""

    def run() -> None:
        for _ in range(frames):
            rx.recv()

    worker = threading.Thread(target=run, name="bench-rx", daemon=True)
    worker.start()
    return worker


def bench_framing(*, quick: bool = False) -> list[BenchResult]:
    frames = 2_000 if quick else 10_000
    payload = bytes(4096)
    group = 32
    results = []
    for name, vectored in (("framing_copy", False), ("framing_vectored", True)):
        n = (frames // group) * group  # same frame count on both sides
        a, b = socket.socketpair()
        try:
            tx = FramedSender(a, vectored=vectored)
            rx = FramedReceiver(b)
            drainer = _drain(rx, n)
            batch = [
                Frame(stream_id="bench", index=i, payload=payload,
                      orig_len=len(payload))
                for i in range(group)
            ]
            latencies: list[float] = []
            start = time.perf_counter()
            if vectored:
                for _ in range(n // group):
                    t0 = time.perf_counter()
                    tx.send_many(batch)
                    latencies.append((time.perf_counter() - t0) / group)
            else:
                for i in range(n):
                    t0 = time.perf_counter()
                    tx.send(batch[i % group])
                    latencies.append(time.perf_counter() - t0)
            drainer.join(timeout=30.0)
            elapsed = time.perf_counter() - start
            if drainer.is_alive():
                raise RuntimeError("framing bench receiver stalled")
        finally:
            a.close()
            b.close()
        results.append(
            BenchResult(
                name=name,
                value=n * len(payload) / elapsed / 1e6,
                unit="MB/s",
                duration_s=elapsed,
                n=n,
                latency_us=latency_summary(latencies),
                params={
                    "frames": n,
                    "payload_bytes": len(payload),
                    "group": group if vectored else 1,
                },
            )
        )
    return results


# ---------------------------------------------------------------------------
# loopback pipeline (the gated end-to-end benchmark)
# ---------------------------------------------------------------------------


def _chunk_source(chunks: int, payload: bytes) -> Iterator[Chunk]:
    for i in range(chunks):
        yield Chunk(
            stream_id="bench",
            index=i,
            nbytes=len(payload),
            ratio=1.0,
            payload=payload,
        )


def _loopback_once(
    chunks: int, payload: bytes, *, batch_frames: int, vectored: bool
) -> float:
    """One full LivePipeline run; returns wall seconds.

    The copy-path baseline flips :class:`FramedSender` back to its
    pre-vectored default for the duration of the run — with
    ``batch_frames=1`` that reproduces the pre-PR per-frame
    join+``sendall`` behaviour byte for byte.
    """
    from repro.live.runtime import LiveConfig, LivePipeline

    cfg = LiveConfig(
        codec="null",
        compress_threads=1,
        decompress_threads=1,
        connections=1,
        queue_capacity=64,
        batch_frames=batch_frames,
    )
    saved = FramedSender.DEFAULT_VECTORED
    FramedSender.DEFAULT_VECTORED = vectored
    try:
        pipeline = LivePipeline(cfg)
        start = time.perf_counter()
        report = pipeline.run(_chunk_source(chunks, payload))
        elapsed = time.perf_counter() - start
    finally:
        FramedSender.DEFAULT_VECTORED = saved
    if not report.ok:
        raise RuntimeError(f"loopback bench run failed: {report.summary()}")
    return elapsed


def bench_loopback_pipeline(
    *, quick: bool = False
) -> tuple[list[BenchResult], GateResult]:
    chunks = 800 if quick else 3_000
    repeats = 3
    payload = bytes(2048)
    batch = 32
    configs: tuple[tuple[str, int, bool], ...] = (
        ("loopback_copy_path", 1, False),
        ("loopback_fast_path", batch, True),
    )
    # Warm both paths (one-time import/allocator costs), then alternate
    # measured runs config-by-config and keep each side's best, so a
    # noise spike (scheduler, GC) cannot decide the gate ratio.
    for _, batch_frames, vectored in configs:
        _loopback_once(
            max(chunks // 10, 50), payload,
            batch_frames=batch_frames, vectored=vectored,
        )
    best: dict[str, float] = {}
    for _ in range(repeats):
        for name, batch_frames, vectored in configs:
            elapsed = _loopback_once(
                chunks, payload,
                batch_frames=batch_frames, vectored=vectored,
            )
            best[name] = min(best.get(name, elapsed), elapsed)
    results = []
    rates: dict[str, float] = {}
    for name, batch_frames, vectored in configs:
        elapsed = best[name]
        rate = chunks / elapsed
        rates[name] = rate
        results.append(
            BenchResult(
                name=name,
                value=rate,
                unit="chunks/s",
                duration_s=elapsed,
                n=chunks,
                params={"chunks": chunks, "payload_bytes": len(payload),
                        "batch_frames": batch_frames, "vectored": vectored,
                        "repeats": repeats},
            )
        )
    gate = GateResult(
        name="loopback_speedup",
        value=rates["loopback_fast_path"] / rates["loopback_copy_path"],
        threshold=LOOPBACK_GATE_THRESHOLD,
    )
    return results, gate


# ---------------------------------------------------------------------------
# process scaling (gated on multi-core hosts)
# ---------------------------------------------------------------------------


def _usable_cpus() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _scaling_once(chunks: int, payload: bytes, *, mode: str, workers: int) -> float:
    """One codec-dominated loopback run; returns wall seconds.

    The pure-Python ``lz4`` codec holds the GIL for ~1ms per 4KB chunk,
    so thread mode cannot scale past one core no matter how many
    compressor threads it spawns — which is exactly the regime the
    process runtime exists for.
    """
    import multiprocessing

    from repro.live.runtime import LiveConfig, LivePipeline
    from repro.mp import ProcessPipeline

    start_method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    cfg = LiveConfig(
        codec="lz4",
        compress_threads=workers,
        decompress_threads=1,
        connections=1,
        queue_capacity=64,
        execution_mode=mode,
        mp_start_method=start_method,
    )
    pipeline = (
        ProcessPipeline(cfg) if mode == "process" else LivePipeline(cfg)
    )
    start = time.perf_counter()
    report = pipeline.run(_chunk_source(chunks, payload))
    elapsed = time.perf_counter() - start
    if not report.ok:
        raise RuntimeError(f"scaling bench run failed: {report.summary()}")
    return elapsed


def bench_process_scaling(
    *, quick: bool = False
) -> tuple[list[BenchResult], GateResult | None]:
    """Thread vs process mode at 1/2/4 compressor domains.

    Returns the per-configuration rows plus the 4-domain gate — or
    ``None`` for the gate when the host has too few CPUs to make the
    comparison meaningful (the rows are still reported).
    """
    from repro.util.rng import make_rng

    chunks = 64 if quick else 192
    # Noisy payload: repetitive data short-circuits the pure-Python
    # match loop and the run degenerates to transport-dominated.
    payload = (
        make_rng(7, "bench-scaling")
        .integers(0, 255, 4096, dtype="uint8")
        .tobytes()
    )
    cpus = _usable_cpus()
    results = []
    rates: dict[tuple[str, int], float] = {}
    for workers in (1, 2, 4):
        for mode in ("thread", "process"):
            elapsed = _scaling_once(
                chunks, payload, mode=mode, workers=workers
            )
            rate = chunks / elapsed
            rates[(mode, workers)] = rate
            results.append(
                BenchResult(
                    name=f"scaling_{mode}_{workers}",
                    value=rate,
                    unit="chunks/s",
                    duration_s=elapsed,
                    n=chunks,
                    params={"chunks": chunks, "payload_bytes": len(payload),
                            "mode": mode, "workers": workers,
                            "host_cpus": cpus},
                )
            )
    gate: GateResult | None = None
    if cpus >= PROCESS_GATE_MIN_CPUS:
        gate = GateResult(
            name="process_scaling_speedup",
            value=rates[("process", 4)] / rates[("thread", 4)],
            threshold=PROCESS_SCALING_GATE_THRESHOLD,
        )
    return results, gate


# ---------------------------------------------------------------------------
# observability overhead (the second gated benchmark)
# ---------------------------------------------------------------------------


def _loopback_obs_once(chunks: int, payload: bytes, *, obs: bool) -> float:
    """One telemetry-instrumented loopback run; returns wall seconds.

    With ``obs=True`` the full observability plane rides along exactly
    as ``repro-live --obs-port 0 --profile`` would attach it: an
    :class:`EventBus` wired into the telemetry, a running
    :class:`Watchdog`, a live :class:`ObservabilityServer` on an
    ephemeral port, and the sampling profiler — so the measured delta
    is the whole plane, not one component.
    """
    from repro.live.runtime import LiveConfig, LivePipeline
    from repro.obs import (
        EventBus,
        ObservabilityServer,
        SamplingProfiler,
        Watchdog,
    )
    from repro.telemetry import Telemetry

    cfg = LiveConfig(
        codec="null",
        compress_threads=1,
        decompress_threads=1,
        connections=1,
        queue_capacity=64,
        batch_frames=32,
    )
    telemetry = Telemetry()
    plane: list = []
    if obs:
        bus = EventBus(source="live")
        telemetry.attach_events(bus)
        watchdog = Watchdog(telemetry)
        watchdog.start()
        server = ObservabilityServer(telemetry, port=0, events=bus)
        server.start()
        profiler = SamplingProfiler(hz=100.0)
        profiler.start()
        plane = [profiler.stop, watchdog.stop, server.stop, bus.close]
    try:
        pipeline = LivePipeline(cfg, telemetry=telemetry)
        start = time.perf_counter()
        report = pipeline.run(_chunk_source(chunks, payload))
        elapsed = time.perf_counter() - start
    finally:
        for teardown in plane:
            teardown()
    if not report.ok:
        raise RuntimeError(f"obs bench run failed: {report.summary()}")
    return elapsed


def bench_obs_overhead(
    *, quick: bool = False
) -> tuple[list[BenchResult], GateResult]:
    chunks = 800 if quick else 3_000
    repeats = 3
    payload = bytes(2048)
    configs: tuple[tuple[str, bool], ...] = (
        ("loopback_obs_off", False),
        ("loopback_obs_on", True),
    )
    for _, obs in configs:  # warm both variants
        _loopback_obs_once(max(chunks // 10, 50), payload, obs=obs)
    best: dict[str, float] = {}
    for _ in range(repeats):
        for name, obs in configs:
            elapsed = _loopback_obs_once(chunks, payload, obs=obs)
            best[name] = min(best.get(name, elapsed), elapsed)
    results = []
    rates: dict[str, float] = {}
    for name, obs in configs:
        elapsed = best[name]
        rates[name] = chunks / elapsed
        results.append(
            BenchResult(
                name=name,
                value=rates[name],
                unit="chunks/s",
                duration_s=elapsed,
                n=chunks,
                params={"chunks": chunks, "payload_bytes": len(payload),
                        "obs_plane": obs, "repeats": repeats},
            )
        )
    gate = GateResult(
        name="obs_overhead",
        value=rates["loopback_obs_on"] / rates["loopback_obs_off"],
        threshold=OBS_GATE_THRESHOLD,
    )
    return results, gate


# ---------------------------------------------------------------------------
# flow-tracing overhead (the PR 10 gates)
# ---------------------------------------------------------------------------


def _loopback_trace_once(chunks: int, payload: bytes, *, sample: int) -> float:
    """One telemetry-instrumented loopback run at ``sample``; returns
    wall seconds.  ``sample=0`` is the tracing-off baseline every
    pre-trace run gets."""
    from repro.live.runtime import LiveConfig, LivePipeline
    from repro.telemetry import Telemetry

    cfg = LiveConfig(
        codec="null",
        compress_threads=1,
        decompress_threads=1,
        connections=1,
        queue_capacity=64,
        batch_frames=32,
        trace_sample=sample,
    )
    pipeline = LivePipeline(cfg, telemetry=Telemetry())
    start = time.perf_counter()
    report = pipeline.run(_chunk_source(chunks, payload))
    elapsed = time.perf_counter() - start
    if not report.ok:
        raise RuntimeError(f"trace bench run failed: {report.summary()}")
    return elapsed


def bench_trace(
    *, quick: bool = False
) -> tuple[list[BenchResult], list[GateResult]]:
    """Flow-tracing overhead on the loopback pipeline, three rates.

    ``loopback_trace_off`` is tracing disabled (no sampler built);
    ``loopback_trace_armed`` attaches the sampler at a rate so sparse
    only the head chunk is traced — it measures the per-chunk decision
    itself; ``loopback_trace_1in64`` is the recommended production
    rate, paying the trailer + wire-span cost on every 64th chunk.
    """
    # A 1% ratio gate on a multi-threaded pipeline is hopeless against
    # host drift (CPU-quota throttling slows successive runs), so each
    # round is an A-B-A design: tracing-off runs *bracket* every traced
    # run and the baseline is interpolated between them, cancelling
    # linear drift.  The gate takes the best round — pessimistic hosts
    # cannot fail it, a real per-chunk cost shows up in every round.
    chunks = 6_000
    rounds = 5 if quick else 7
    payload = bytes(2048)
    configs: tuple[tuple[str, int], ...] = (
        ("loopback_trace_off", 0),
        ("loopback_trace_armed", 1 << 20),
        ("loopback_trace_1in64", 64),
    )
    for _, sample in configs:  # warm every variant
        _loopback_trace_once(300, payload, sample=sample)
    best: dict[str, float] = {}

    def run(name: str, sample: int) -> float:
        elapsed = _loopback_trace_once(chunks, payload, sample=sample)
        best[name] = min(best.get(name, elapsed), elapsed)
        return elapsed

    armed_ratios: list[float] = []
    sampled_ratios: list[float] = []
    for _ in range(rounds):
        off_a = run("loopback_trace_off", 0)
        armed = run("loopback_trace_armed", 1 << 20)
        off_b = run("loopback_trace_off", 0)
        sampled = run("loopback_trace_1in64", 64)
        off_c = run("loopback_trace_off", 0)
        armed_ratios.append((off_a + off_b) / 2.0 / armed)
        sampled_ratios.append((off_b + off_c) / 2.0 / sampled)
    results = []
    for name, sample in configs:
        elapsed = best[name]
        results.append(
            BenchResult(
                name=name,
                value=chunks / elapsed,
                unit="chunks/s",
                duration_s=elapsed,
                n=chunks,
                params={"chunks": chunks, "payload_bytes": len(payload),
                        "trace_sample": sample, "rounds": rounds},
            )
        )
    gates = [
        GateResult(
            name="trace_off_overhead",
            value=max(armed_ratios),
            threshold=TRACE_OFF_GATE_THRESHOLD,
        ),
        GateResult(
            name="trace_sampling_overhead",
            value=max(sampled_ratios),
            threshold=TRACE_SAMPLING_GATE_THRESHOLD,
        ),
    ]
    return results, gates


# ---------------------------------------------------------------------------
# codec frontier (the adaptive-selection gates)
# ---------------------------------------------------------------------------

#: Static codecs on the ratio-vs-throughput frontier rows.
FRONTIER_CODECS: tuple[str, ...] = ("null", "zlib", "lz4")

#: Codecs in the mixed-corpus wire-path runs and the adaptive pool.
#: C-backed only: the pure-Python LZ4 stack is a pedagogical frontier
#: point, but at ~10 MB/s a static-lz4 contender would spend minutes
#: per run on a corpus the other contenders finish in milliseconds.
MIXED_POOL: tuple[str, ...] = ("null", "zlib")


def _frontier_datasets(*, quick: bool = False) -> dict[str, bytes]:
    """Three entropy regimes, one payload each.

    ``noise`` is incompressible (RNG bytes), ``smooth`` is a synthetic
    uint16 ramp every codec crushes, and ``phantom`` is a real sphere
    projection from the data layer — the mid-entropy case the paper's
    detector streams actually look like.
    """
    import numpy as np

    from repro.data import SpheresDataset, SpheresPhantom
    from repro.data.chunking import DatasetChunkSource
    from repro.util.rng import make_rng

    n = 1 << 17 if quick else 1 << 18
    noise = (
        make_rng(7, "bench-codec-noise")
        .integers(0, 256, n, dtype="uint8")
        .tobytes()
    )
    smooth = (np.arange(n // 2, dtype=np.uint16) >> 4).tobytes()
    dataset = SpheresDataset(
        SpheresPhantom(
            cylinder_radius=300,
            cylinder_height=240,
            volume_fraction=0.2,
            seed=7,
        ),
        detector_shape=(256, 512),
        num_projections=1,
        seed=7,
    )
    chunk = next(DatasetChunkSource("bench", dataset, limit=1).chunks())
    phantom = bytes(chunk.payload)[:n]
    return {"noise": noise, "smooth": smooth, "phantom": phantom}


def _mixed_corpus(chunks: int, datasets: dict[str, bytes]) -> list[Chunk]:
    """Round-robin over the frontier datasets: the mixed-entropy feed
    no single static codec is right for."""
    payloads = list(datasets.values())
    return [
        Chunk(
            stream_id="bench",
            index=i,
            nbytes=len(payloads[i % len(payloads)]),
            ratio=1.0,
            payload=payloads[i % len(payloads)],
        )
        for i in range(chunks)
    ]


def _codec_loopback_once(corpus: list[Chunk], codec: str | Codec) -> float:
    """One single-threaded pass of the sender->receiver wire path.

    Per chunk this does exactly what the two pipeline ends do around a
    frame — compress (stamping the codec wire id), encode the header
    (which computes the payload crc32), re-parse the flags word, verify
    the checksum, route to the decompressor the wire id names, and
    decompress — but with no sockets and no worker threads.  A threaded
    LivePipeline run jitters by +-30% under the scheduler, which is
    noise the 0.95x adaptive gate cannot survive; this loop is the same
    per-chunk work, deterministic.

    ``codec`` may be a spec string or a built :class:`Codec` instance —
    the adaptive contender passes one warmed instance across repeats so
    the measurement reflects a long-running stream's steady state, not
    the one-time cost of its first probe round.
    """
    import zlib

    from repro.compress.codec import decompressor_for, resolve_codec
    from repro.live.transport import _BODY, CODEC_SHIFT, encode_frame_header

    codec = resolve_codec(codec)
    start = time.perf_counter()
    for chunk in corpus:
        payload = chunk.payload
        wire_payload, codec_id = codec.compress_with_id(payload)
        frame = Frame(
            stream_id=chunk.stream_id,
            index=chunk.index,
            payload=wire_payload,
            compressed=True,
            orig_len=len(payload),
            codec_id=codec_id,
        )
        header = encode_frame_header(frame)
        _, flags, orig_len, checksum, length = _BODY.unpack_from(
            header, len(header) - _BODY.size
        )
        if zlib.crc32(wire_payload) != checksum or length != len(
            wire_payload
        ):
            raise RuntimeError("codec bench frame failed integrity check")
        wire_id = flags >> CODEC_SHIFT
        decomp = decompressor_for(wire_id) if wire_id else codec
        if len(decomp.decompress(wire_payload)) != orig_len:
            raise RuntimeError("codec bench round-trip length mismatch")
    return time.perf_counter() - start


def bench_codec_frontier(
    *, quick: bool = False
) -> tuple[list[BenchResult], list[GateResult]]:
    """The ratio-vs-throughput frontier plus the adaptive gates.

    Per dataset x static codec: direct compress throughput and ratio
    (the frontier a static choice is stuck on).  Then the mixed-entropy
    corpus through the single-threaded wire path (compress, frame,
    checksum, decompress — see :func:`_codec_loopback_once`) for every
    static codec and for adaptive selection over the same set.  The
    vs-worst gate comes from those per-chunk rates; the tight vs-best
    gate is re-measured head to head (adjacent alternating passes of
    the winning static and adaptive) so clock/cache drift between rate
    rows cannot decide a 5% ratio.
    """
    from repro.compress.codec import get_codec

    datasets = _frontier_datasets(quick=quick)
    results: list[BenchResult] = []

    # -- frontier rows: what each static codec costs on each regime ----
    reps = 2 if quick else 4
    for dname, payload in datasets.items():
        for cname in FRONTIER_CODECS:
            codec = get_codec(cname)
            wire = codec.compress(payload)  # warm + ratio source
            elapsed = min(
                _timed(codec.compress, payload) for _ in range(reps)
            )
            results.append(
                BenchResult(
                    name=f"codec_{dname}_{cname}",
                    value=len(payload) / elapsed / 1e6,
                    unit="MB/s",
                    duration_s=elapsed,
                    n=1,
                    params={
                        "dataset": dname,
                        "codec": cname,
                        "ratio": round(codec.ratio(payload, wire), 3),
                        "payload_bytes": len(payload),
                    },
                )
            )

    # -- end-to-end: mixed corpus, statics vs adaptive -----------------
    from repro.compress.codec import resolve_codec

    chunks = 48 if quick else 120
    corpus = _mixed_corpus(chunks, datasets)
    pool = "|".join(MIXED_POOL)
    spec = f"adaptive:allowed={pool},probe_interval=256,sample_bytes=1024"
    # One instance across warm + repeats: the statics carry no learning
    # state, so the adaptive contender gets the same treatment — its
    # first probe round is one-time warm-up, not steady-state cost.
    contenders: list[tuple[str, str | Codec]] = [
        *((name, name) for name in MIXED_POOL),
        ("adaptive", resolve_codec(spec)),
    ]
    for _, codec in contenders:  # warm every contender once
        _codec_loopback_once(_mixed_corpus(max(chunks // 6, 6), datasets),
                             codec)
    repeats = 6 if quick else 9
    best: dict[str, float] = {}
    # Rotate the starting contender each repeat: in a fixed cycle the
    # same contender always runs right after the slow zlib pass (hot
    # caches, throttled clocks) and min-of-repeats inherits that bias.
    for rep in range(repeats):
        shift = rep % len(contenders)
        for label, codec in contenders[shift:] + contenders[:shift]:
            elapsed = _codec_loopback_once(corpus, codec)
            best[label] = min(best.get(label, elapsed), elapsed)
    rates: dict[str, float] = {}
    for label, _ in contenders:
        rates[label] = chunks / best[label]
        results.append(
            BenchResult(
                name=f"codec_mixed_{label}",
                value=rates[label],
                unit="chunks/s",
                duration_s=best[label],
                n=chunks,
                params={"chunks": chunks,
                        "codec": spec if label == "adaptive" else label,
                        "repeats": repeats},
            )
        )
    # -- the vs-best gate: paired, adjacent passes ---------------------
    # The rate rows above are measured up to seconds apart, with the
    # slow zlib pass (and its cache/turbo wake) in between — drift on
    # that scale is bigger than the 5% the gate polices.  So the gate
    # ratio comes from a dedicated head-to-head: best static and
    # adaptive alternating back to back, min-of-times per side.
    best_static = max(MIXED_POOL, key=lambda name: rates[name])
    adaptive_codec = dict(contenders)["adaptive"]
    paired: dict[str, float] = {}
    for _ in range(repeats):
        for label, codec in (
            ("static", best_static),
            ("adaptive", adaptive_codec),
        ):
            elapsed = _codec_loopback_once(corpus, codec)
            paired[label] = min(paired.get(label, elapsed), elapsed)
    gates = [
        GateResult(
            name="codec_adaptive_vs_best",
            value=paired["static"] / paired["adaptive"],
            threshold=CODEC_BEST_GATE_THRESHOLD,
        ),
        GateResult(
            name="codec_adaptive_vs_worst",
            value=rates["adaptive"] / min(rates[c] for c in MIXED_POOL),
            threshold=CODEC_WORST_GATE_THRESHOLD,
        ),
    ]
    return results, gates


def _timed(fn, payload: bytes) -> float:
    start = time.perf_counter()
    fn(payload)
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# sim scenario
# ---------------------------------------------------------------------------


def bench_sim_scenario(*, quick: bool = False) -> list[BenchResult]:
    from repro.core.generator import ConfigGenerator, StreamRequest, Workload
    from repro.core.runtime import run_scenario
    from repro.experiments.base import paper_testbed

    num_chunks = 60 if quick else 250
    gen = ConfigGenerator(paper_testbed())
    scenario = gen.generate(
        Workload(
            streams=[
                StreamRequest(
                    stream_id="bench",
                    sender="updraft1",
                    receiver="lynxdtn",
                    path="alcf-aps",
                    num_chunks=num_chunks,
                )
            ],
            name="bench-sim",
        )
    )
    start = time.perf_counter()
    result = run_scenario(scenario)
    elapsed = time.perf_counter() - start
    delivered = sum(
        s.chunks_delivered for s in result.streams.values()
    )
    return [
        BenchResult(
            name="sim_scenario",
            value=delivered / elapsed,
            unit="sim-chunks/s",
            duration_s=elapsed,
            n=delivered,
            params={"num_chunks": num_chunks, "streams": 1},
        )
    ]


# ---------------------------------------------------------------------------
# autotune recovery
# ---------------------------------------------------------------------------


def bench_autotune(
    *, quick: bool = False
) -> tuple[list[BenchResult], GateResult]:
    """Closed-loop recovery after a load shift, on the simulator.

    The scenario models a plan that was optimal before the workload
    shifted: post-shift, one compress worker is the binding constraint
    (the queue ahead of it pins at capacity).  Three deterministic runs
    on the virtual clock:

    - ``static_misconfigured`` — the stale plan, no controller;
    - ``closed_loop`` — same stale plan, controller on: watchdog
      backpressure drives ``replan_applied`` scale-ups mid-run;
    - ``static_optimal`` — the plan a planner with hindsight would
      have written (compress already at the controller's ceiling).

    The gate is closed_loop vs static_misconfigured on delivered
    (virtual-time) throughput; the optimal run is reported so the CI
    acceptance job can also check post-replan throughput converges to
    within 10% of it.
    """
    from repro.control import Controller
    from repro.core.config import ScenarioConfig, StageConfig, StreamConfig
    from repro.core.params import APS_LAN_PATH
    from repro.core.placement import PlacementSpec
    from repro.core.runtime import ScenarioResult, SimRuntime
    from repro.hw.presets import lynxdtn_spec, updraft_spec
    from repro.obs import EventBus
    from repro.obs.watchdog import WatchdogConfig
    from repro.plan.ir import ControlNode
    from repro.telemetry import Telemetry

    num_chunks = 120 if quick else 300
    max_workers = 4

    def scenario(compress_workers: int) -> ScenarioConfig:
        stream = StreamConfig(
            stream_id="s",
            sender="updraft1",
            receiver="lynxdtn",
            path="aps-lan",
            num_chunks=num_chunks,
            queue_capacity=8,
            compress=StageConfig(
                compress_workers, PlacementSpec.socket(0)
            ),
            send=StageConfig(2, PlacementSpec.socket(1)),
            recv=StageConfig(2, PlacementSpec.socket(1)),
            decompress=StageConfig(4, PlacementSpec.split([0, 1])),
        )
        return ScenarioConfig(
            name="bench-autotune",
            machines={
                "updraft1": updraft_spec(),
                "lynxdtn": lynxdtn_spec(),
            },
            paths={"aps-lan": APS_LAN_PATH},
            streams=[stream],
            warmup_chunks=5,
        )

    def run(
        compress_workers: int, *, autotune: bool
    ) -> tuple[ScenarioResult, Controller | None, EventBus, float]:
        tel = Telemetry()
        bus = EventBus(source="bench")
        tel.attach_events(bus)
        controller: Controller | None = None
        watchdog: WatchdogConfig | None = None
        if autotune:
            controller = Controller(
                tel,
                ControlNode(
                    enabled=True,
                    interval=0.05,
                    cooldown=0.2,
                    max_workers=max_workers,
                ),
            )
            watchdog = WatchdogConfig(
                interval=0.05,
                backpressure_depth=6.0,
                backpressure_after=0.1,
                bottleneck_every=0,
            )
        start = time.perf_counter()
        result = SimRuntime(
            scenario(compress_workers),
            telemetry=tel,
            watchdog=watchdog,
            controller=controller,
        ).run()
        elapsed = time.perf_counter() - start
        return result, controller, bus, elapsed

    def gbps(result: ScenarioResult) -> float:
        return result.streams["s"].delivered_gbps

    mis, _, _, mis_wall = run(1, autotune=False)
    tuned, controller, bus, tuned_wall = run(1, autotune=True)
    opt, _, _, opt_wall = run(max_workers, autotune=False)

    assert controller is not None
    replans = [e for e in bus.recent(0) if e.kind == "replan_applied"]

    # Post-replan (steady-state) throughput: chunks the final stage
    # finished after the last applied re-plan, over the remaining
    # virtual time — the "did it converge to optimal" number.
    post_gbps = 0.0
    if replans and tuned.telemetry is not None:
        last_ts = replans[-1].ts
        tail = [
            s
            for s in tuned.telemetry.spans.snapshot()  # type: ignore[attr-defined]
            if s.stage == "decompress" and s.end > last_ts
        ]
        window = tuned.sim_time - last_ts
        chunk_bytes = scenario(1).streams[0].chunk_bytes
        if tail and window > 0:
            post_gbps = len(tail) * chunk_bytes * 8 / window / 1e9

    results = [
        BenchResult(
            name="autotune_static_misconfigured",
            value=gbps(mis),
            unit="sim-Gbps",
            duration_s=mis_wall,
            n=num_chunks,
            params={"compress_workers": 1, "sim_time_s": mis.sim_time},
        ),
        BenchResult(
            name="autotune_closed_loop",
            value=gbps(tuned),
            unit="sim-Gbps",
            duration_s=tuned_wall,
            n=num_chunks,
            params={
                "compress_workers_start": 1,
                "max_workers": max_workers,
                "sim_time_s": tuned.sim_time,
                "replans_applied": len(replans),
                "decisions": list(controller.decisions),
                "post_replan_gbps": round(post_gbps, 3),
            },
        ),
        BenchResult(
            name="autotune_static_optimal",
            value=gbps(opt),
            unit="sim-Gbps",
            duration_s=opt_wall,
            n=num_chunks,
            params={
                "compress_workers": max_workers,
                "sim_time_s": opt.sim_time,
            },
        ),
    ]
    gate = GateResult(
        name="autotune_recovery",
        value=gbps(tuned) / gbps(mis),
        threshold=AUTOTUNE_GATE_THRESHOLD,
    )
    return results, gate


# ---------------------------------------------------------------------------
# many concurrent streams (event-loop receiver plane, gated)
# ---------------------------------------------------------------------------


def _raise_nofile_limit(need: int) -> None:
    """Best-effort: lift the soft fd limit toward ``need`` descriptors."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    want = min(hard, max(soft, need))
    if want > soft:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (want, hard))
        except (ValueError, OSError):  # pragma: no cover - locked down
            pass


def _many_streams_once(
    streams: int,
    *,
    chunks_per_stream: int,
    payload: bytes,
    shards: int = 0,
) -> tuple[float, list[float], int]:
    """One run: ``streams`` loopback connections, one stream each,
    against an event-loop :class:`~repro.live.remote.ReceiverServer`.

    Returns (seconds from dial-barrier release to the last stream's
    completion, per-stream completion latencies in seconds, delivered
    chunk count).  Raises on any delivery error — the bench doubles as
    the zero-error acceptance check.
    """
    from repro.faults.policy import TimeoutPolicy
    from repro.live.remote import ReceiverServer

    # One client socket + one accepted socket per stream, plus slack.
    _raise_nofile_limit(2 * streams + 256)
    lock = threading.Lock()
    counts: dict[str, int] = {}
    completed: dict[str, float] = {}
    started = {"t": 0.0}

    def sink(stream_id: str, index: int, data: bytes) -> None:
        with lock:
            done = counts.get(stream_id, 0) + 1
            counts[stream_id] = done
            if done == chunks_per_stream:
                completed[stream_id] = time.perf_counter() - started["t"]

    server = ReceiverServer(
        port=0,
        codec="null",
        connections=streams,
        decompress_threads=2,
        queue_capacity=256,
        mode="eventloop",
        shards=shards,
        timeouts=TimeoutPolicy(accept=120.0, join=120.0),
    )
    host, port = server.address
    box: dict[str, object] = {}

    def serve() -> None:
        box["report"] = server.serve(sink)

    server_thread = threading.Thread(target=serve, daemon=True)

    worker_errors: list[str] = []
    n_workers = min(16, streams)
    # Dial everything first, then release every client at once: the
    # timed window measures the receive path per stream, not the O(n)
    # connection-setup storm (which client threads serialize anyway).
    # The barrier action stamps t0 in exactly one thread at release.
    dialed = threading.Barrier(
        n_workers,
        action=lambda: started.__setitem__("t", time.perf_counter()),
    )

    def client(lo: int, hi: int) -> None:
        conns: list[tuple[str, FramedSender, FramedReceiver]] = []
        try:
            for s in range(lo, hi):
                sock = socket.create_connection((host, port), timeout=60)
                sock.settimeout(60.0)
                sid = f"ms-{s:04d}"
                conns.append(
                    (sid, FramedSender(sock), FramedReceiver(sock))
                )
            dialed.wait(120.0)
            for index in range(chunks_per_stream):
                for sid, tx, _rx in conns:
                    tx.send(
                        Frame(
                            stream_id=sid,
                            index=index,
                            payload=payload,
                            orig_len=len(payload),
                        )
                    )
            for sid, tx, _rx in conns:
                tx.send(Frame.end_of_stream(sid))
            # Every frame (data + EOS) is ACKed; drain them all, then
            # half-close so the receiver counts the stream finished.
            for sid, tx, rx in conns:
                for _ in range(chunks_per_stream + 1):
                    ack = rx.recv()
                    if ack is None or not ack.ack:
                        raise RuntimeError(
                            f"stream {sid}: bad ACK stream {ack!r}"
                        )
                tx.close()
        except Exception as exc:  # noqa: BLE001
            dialed.abort()
            with lock:
                worker_errors.append(f"client[{lo}:{hi}]: {exc!r}")
        finally:
            for _sid, tx, _rx in conns:
                try:
                    tx.sock.close()
                except OSError:
                    pass

    bounds = [
        (streams * w // n_workers, streams * (w + 1) // n_workers)
        for w in range(n_workers)
    ]
    workers = [
        threading.Thread(target=client, args=b, daemon=True)
        for b in bounds
    ]
    server_thread.start()
    for t in workers:
        t.start()
    for t in workers:
        t.join(180.0)
    server_thread.join(180.0)
    report = box.get("report")
    errors = list(worker_errors)
    if report is None:
        errors.append("receiver did not finish")
    elif getattr(report, "errors", None):
        errors.extend(report.errors)  # type: ignore[union-attr]
    delivered = sum(counts.values())
    if delivered != streams * chunks_per_stream:
        errors.append(
            f"delivered {delivered} of {streams * chunks_per_stream} chunks"
        )
    if len(completed) != streams:
        errors.append(
            f"{len(completed)} of {streams} streams completed"
        )
    if errors:
        raise RuntimeError(
            f"many-streams run ({streams} streams) failed: "
            + "; ".join(errors[:5])
        )
    latencies = sorted(completed.values())
    # Window: barrier release (all streams dialed) to the last stream's
    # final chunk reaching the sink — pure receive-path time.
    return latencies[-1], latencies, delivered


def bench_many_streams(
    *, quick: bool = False
) -> tuple[list[BenchResult], GateResult]:
    """Thousands of loopback streams through the event-loop receiver.

    Two rows at a 10x stream-count spread, identical per-stream work;
    the gate holds the per-stream cost flat (within 1.5x) as the count
    scales, which a thread-per-connection receiver cannot do.
    """
    small, large = (50, 500) if quick else (100, 1000)
    chunks_per_stream = 4
    payload = bytes(2048)
    # Warm imports/allocators with a tiny run so the small row does not
    # pay one-time costs that the large row amortizes for free.
    _many_streams_once(
        10, chunks_per_stream=chunks_per_stream, payload=payload
    )
    results = []
    per_stream: dict[int, float] = {}
    for streams in (small, large):
        # Best of two runs per row, so a scheduler hiccup in either row
        # cannot decide the gate ratio on a loaded host.
        elapsed, latencies, delivered = min(
            (
                _many_streams_once(
                    streams,
                    chunks_per_stream=chunks_per_stream,
                    payload=payload,
                )
                for _ in range(2)
            ),
            key=lambda run: run[0],
        )
        per_stream[streams] = elapsed / streams
        results.append(
            BenchResult(
                name=f"many_streams_{streams}",
                value=delivered / elapsed,
                unit="chunks/s",
                duration_s=elapsed,
                n=streams,
                latency_us=latency_summary(latencies),
                params={
                    "streams": streams,
                    "chunks_per_stream": chunks_per_stream,
                    "payload_bytes": len(payload),
                    "per_stream_ms": round(1e3 * elapsed / streams, 3),
                },
            )
        )
    gate = GateResult(
        name="many_streams_flat",
        value=per_stream[small] / per_stream[large],
        threshold=MANY_STREAMS_GATE_THRESHOLD,
    )
    return results, gate


# ---------------------------------------------------------------------------
# suite runner
# ---------------------------------------------------------------------------


def run_suite(
    *,
    quick: bool = False,
    pinned: bool = True,
    gate: bool = True,
    events_out: str | None = None,
) -> BenchReport:
    """Run every benchmark and assemble the report (see ``repro-bench``).

    With ``events_out`` set, suite lifecycle events (``run_start`` /
    ``run_end`` per benchmark group) stream to that JSONL path so long
    bench runs are observable like any pipeline run.
    """
    from repro.bench.harness import pin_benchmark_thread

    bus = None
    if events_out is not None:
        from repro.obs import EventBus

        bus = EventBus(source="bench", jsonl_path=events_out)

    def emit(kind: str, message: str, **fields: object) -> None:
        if bus is not None:
            bus.emit(kind, message, **fields)

    report = BenchReport(quick=quick)
    report.pinned = pin_benchmark_thread(0) if pinned else False
    try:
        emit("run_start", "bench suite starting", quick=quick,
             pinned=report.pinned)
        # The codec gates compare sub-millisecond single-threaded runs
        # against each other, so they go first, from a cold process:
        # the other suites (thread pools, forked compressor processes,
        # big queue churn) leave cache/allocator wake behind that can
        # tilt a ratio this close to 1.0.
        emit("run_start", "bench group codec_frontier",
             group="codec_frontier")
        codec_results, codec_gates = bench_codec_frontier(quick=quick)
        report.results.extend(codec_results)
        if gate:
            report.gates.extend(codec_gates)
        emit("run_end", "bench group codec_frontier done",
             group="codec_frontier", ok=True,
             gate_value=codec_gates[0].value)
        groups: tuple[tuple[str, object], ...] = (
            ("queue_handoff", lambda: bench_queue_handoff(quick=quick)),
            ("framing", lambda: bench_framing(quick=quick)),
        )
        for group_name, runner in groups:
            emit("run_start", f"bench group {group_name}", group=group_name)
            report.results.extend(runner())  # type: ignore[operator]
            emit("run_end", f"bench group {group_name} done",
                 group=group_name, ok=True)
        for group_name, gated_runner in (
            ("loopback_pipeline",
             lambda: bench_loopback_pipeline(quick=quick)),
            ("obs_overhead", lambda: bench_obs_overhead(quick=quick)),
            ("many_streams", lambda: bench_many_streams(quick=quick)),
        ):
            emit("run_start", f"bench group {group_name}", group=group_name)
            results, group_gate = gated_runner()
            report.results.extend(results)
            if gate:
                report.gates.append(group_gate)
            emit("run_end", f"bench group {group_name} done",
                 group=group_name, ok=True, gate_value=group_gate.value)
        emit("run_start", "bench group process_scaling",
             group="process_scaling")
        scaling_results, scaling_gate = bench_process_scaling(quick=quick)
        report.results.extend(scaling_results)
        if gate and scaling_gate is not None:
            report.gates.append(scaling_gate)
        emit("run_end", "bench group process_scaling done",
             group="process_scaling", ok=True,
             gate_value=None if scaling_gate is None else scaling_gate.value)
        emit("run_start", "bench group sim_scenario", group="sim_scenario")
        report.results.extend(bench_sim_scenario(quick=quick))
        emit("run_end", "bench group sim_scenario done",
             group="sim_scenario", ok=True)
        emit("run_start", "bench group trace_overhead", group="trace_overhead")
        trace_results, trace_gates = bench_trace(quick=quick)
        report.results.extend(trace_results)
        if gate:
            report.gates.extend(trace_gates)
        emit("run_end", "bench group trace_overhead done",
             group="trace_overhead", ok=True,
             gate_value=trace_gates[0].value)
        emit("run_start", "bench group autotune", group="autotune")
        autotune_results, autotune_gate = bench_autotune(quick=quick)
        report.results.extend(autotune_results)
        if gate:
            report.gates.append(autotune_gate)
        emit("run_end", "bench group autotune done",
             group="autotune", ok=True, gate_value=autotune_gate.value)
        emit("run_end", "bench suite finished", ok=report.ok,
             gates=len(report.gates))
    finally:
        if bus is not None:
            bus.close()
    return report
