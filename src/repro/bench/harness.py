"""Benchmark harness: timing, percentiles, pinning, and the JSON doc.

The harness is deliberately tiny — a :class:`BenchResult` per measured
configuration plus a :class:`BenchReport` that serializes the whole run
to ``BENCH_pipeline.json``.  Benchmarks pin the orchestrating thread to
one CPU (best-effort, via :mod:`repro.live.affinity`) so scheduler
migration noise does not drown the effects being measured; worker
threads spawned by a benchmark inherit placement from the OS exactly
like production runs do.

Comparisons are in-run by design: every ratio reported here (e.g. the
loopback vectored-vs-copy speedup) measures both sides in the same
process a few seconds apart, so host speed cancels out and the number
is meaningful across machines — which is what lets CI gate on it.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.live.affinity import pin_current_thread, supports_affinity

#: The percentile points every benchmark reports, in order.
PERCENTILES: tuple[float, ...] = (50.0, 90.0, 99.0)


def percentile(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile of ``samples`` (0 < p <= 100)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def latency_summary(samples: Sequence[float]) -> dict[str, float]:
    """p50/p90/p99 of ``samples`` (seconds in, microseconds out)."""
    return {
        f"p{int(p)}_us": percentile(samples, p) * 1e6 for p in PERCENTILES
    }


@dataclass
class BenchResult:
    """One measured configuration of one benchmark."""

    name: str
    #: Headline throughput value and its unit (``ops/s``, ``MB/s``, ...).
    value: float
    unit: str
    #: Wall-clock seconds the measured section took.
    duration_s: float
    #: Operations (frames, handoffs, chunks) the section performed.
    n: int
    #: Per-operation latency percentiles, microseconds.
    latency_us: dict[str, float] = field(default_factory=dict)
    #: Knobs that produced this configuration (batch size, payload, ...).
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "value": round(self.value, 3),
            "unit": self.unit,
            "duration_s": round(self.duration_s, 6),
            "n": self.n,
            "latency_us": {
                k: round(v, 3) for k, v in self.latency_us.items()
            },
            "params": self.params,
        }


@dataclass
class GateResult:
    """A pass/fail threshold computed from the run's own results."""

    name: str
    value: float
    threshold: float

    @property
    def ok(self) -> bool:
        return self.value >= self.threshold

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "value": round(self.value, 3),
            "threshold": self.threshold,
            "pass": self.ok,
        }


@dataclass
class BenchReport:
    """Everything one ``repro-bench`` invocation measured."""

    results: list[BenchResult] = field(default_factory=list)
    gates: list[GateResult] = field(default_factory=list)
    quick: bool = False
    pinned: bool = False

    @property
    def ok(self) -> bool:
        return all(g.ok for g in self.gates)

    def result(self, name: str) -> BenchResult:
        for r in self.results:
            if r.name == name:
                return r
        raise KeyError(name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro-bench",
            "version": 1,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "quick": self.quick,
            "pinned": self.pinned,
            "results": [r.to_dict() for r in self.results],
            "gates": [g.to_dict() for g in self.gates],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def render(self) -> str:
        lines = ["benchmark                                value  unit"]
        for r in self.results:
            lat = ""
            if r.latency_us:
                lat = "  p50={p50_us:.1f}us p99={p99_us:.1f}us".format(
                    **r.latency_us
                )
            lines.append(
                f"{r.name:<38} {r.value:>12,.0f}  {r.unit}{lat}"
            )
        for g in self.gates:
            verdict = "PASS" if g.ok else "FAIL"
            lines.append(
                f"gate {g.name}: {g.value:.2f}x "
                f"(threshold {g.threshold:.2f}x) {verdict}"
            )
        return "\n".join(lines)


def pin_benchmark_thread(cpu: int | None = 0) -> bool:
    """Best-effort: pin the calling (orchestrating) thread to one CPU.

    Returns whether a pin was applied; hosts without affinity support
    simply run unpinned, like every other live-path placement.
    """
    if cpu is None or not supports_affinity():
        return False
    return pin_current_thread([cpu])
