"""repro.bench — pinned micro/e2e benchmarks behind ``repro-bench``.

Measures the hot-path machinery this repo optimizes (queue handoffs,
frame encoding, the loopback pipeline, the sim runtime) and emits a
``BENCH_pipeline.json`` document with throughput and latency
percentiles.  See ``docs/performance.md`` for how to run and read it.
"""

from repro.bench.harness import (
    BenchReport,
    BenchResult,
    GateResult,
    latency_summary,
    percentile,
    pin_benchmark_thread,
)
from repro.bench.suites import (
    CODEC_BEST_GATE_THRESHOLD,
    CODEC_WORST_GATE_THRESHOLD,
    LOOPBACK_GATE_THRESHOLD,
    TRACE_OFF_GATE_THRESHOLD,
    TRACE_SAMPLING_GATE_THRESHOLD,
    bench_codec_frontier,
    bench_framing,
    bench_loopback_pipeline,
    bench_queue_handoff,
    bench_sim_scenario,
    bench_trace,
    run_suite,
)

__all__ = [
    "BenchReport",
    "BenchResult",
    "CODEC_BEST_GATE_THRESHOLD",
    "CODEC_WORST_GATE_THRESHOLD",
    "GateResult",
    "LOOPBACK_GATE_THRESHOLD",
    "TRACE_OFF_GATE_THRESHOLD",
    "TRACE_SAMPLING_GATE_THRESHOLD",
    "bench_codec_frontier",
    "bench_framing",
    "bench_loopback_pipeline",
    "bench_queue_handoff",
    "bench_sim_scenario",
    "bench_trace",
    "latency_summary",
    "percentile",
    "pin_benchmark_thread",
    "run_suite",
]
