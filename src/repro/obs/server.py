"""In-process HTTP observability endpoints for a running pipeline.

:class:`ObservabilityServer` wraps a stdlib ``ThreadingHTTPServer`` —
zero dependencies, daemon threads, safe to embed in either live
endpoint — and serves four read-only views of one
:class:`~repro.telemetry.Telemetry`:

========== ===========================================================
endpoint   payload
========== ===========================================================
/metrics   Prometheus text exposition of the live registry
/healthz   JSON liveness verdict from per-worker heartbeats
           (HTTP 200 healthy / 503 stale)
/report    the current :class:`~repro.telemetry.report.PipelineReport`
           as JSON, plus the sampling profile when one is attached
/events    most recent structured events (``?n=50&kind=stage_stall``)
/trace     assembled per-chunk flow traces (``?n=20`` caps how many),
           with waterfalls, critical-path verdicts, and the
           sender/receiver clock-offset bound
========== ===========================================================

``/healthz`` is the piece a supervisor actually probes: a worker whose
heartbeat is older than ``stale_after`` seconds flips the whole
endpoint to 503 — long before the run's own timeout fires.  A finished
run calls :meth:`ObservabilityServer.mark_finished` so the inevitable
post-run staleness doesn't read as death.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, urlparse

from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import EventBus
    from repro.obs.profiler import SamplingProfiler

#: Content type of the Prometheus text exposition format.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObservabilityServer:
    """Serves ``/metrics``, ``/healthz``, ``/report``, ``/events``,
    ``/trace``.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` — the integration tests do).  The server is wholly
    passive: every endpoint is a snapshot read of shared telemetry, so
    attaching it never changes pipeline behavior.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        stale_after: float = 5.0,
        events: "EventBus | None" = None,
        profiler: "SamplingProfiler | None" = None,
    ) -> None:
        if stale_after <= 0:
            raise ValueError("stale_after must be > 0")
        self.telemetry = telemetry
        self.stale_after = stale_after
        self.events = events if events is not None else telemetry.events
        self.profiler = profiler
        self._finished = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        # The handler reaches back through the server object.
        self._httpd.obs = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            self._httpd.server_close()
            return
        self._httpd.shutdown()
        thread.join(timeout=2.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def mark_finished(self) -> None:
        """The run completed: stale heartbeats are now expected."""
        self._finished.set()

    # -- payloads --------------------------------------------------------

    def health(self) -> tuple[int, dict[str, Any]]:
        """The ``/healthz`` verdict: ``(http status, body)``."""
        now = self.telemetry.clock.now()
        beats = self.telemetry.heartbeats()
        workers: dict[str, dict[str, Any]] = {}
        stale: list[str] = []
        for worker, beat in sorted(beats.items()):
            age = max(0.0, now - beat)
            ok = age <= self.stale_after
            if not ok:
                stale.append(worker)
            workers[worker] = {"age_s": round(age, 3), "ok": ok}
        finished = self._finished.is_set()
        healthy = finished or not stale
        body = {
            "status": "finished" if finished else ("ok" if healthy else "stale"),
            "healthy": healthy,
            "stale_after_s": self.stale_after,
            "stale_workers": [] if finished else stale,
            "workers": workers,
        }
        return (200 if healthy else 503), body

    def report(self) -> dict[str, Any]:
        """The ``/report`` payload."""
        report = self.telemetry.pipeline_report()
        if self.profiler is not None:
            report.profile = self.profiler.stage_self_seconds()
        return report.to_dict()

    def recent_events(
        self, n: int | None = None, kind: str | None = None
    ) -> dict[str, Any]:
        """The ``/events`` payload."""
        if self.events is None:
            return {"events": [], "emitted": 0}
        events = self.events.recent(n, kind=kind)
        return {
            "events": [e.to_dict() for e in events],
            "emitted": self.events.emitted,
            "counts": self.events.counts(),
        }

    def trace(self, limit: int = 20) -> dict[str, Any]:
        """The ``/trace`` payload: assembled flow traces, newest last."""
        from repro.trace import trace_summary

        return trace_summary(
            self.telemetry.spans.snapshot(),
            align=getattr(self.telemetry, "trace_align", None),
            limit=limit,
        )


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the owning :class:`ObservabilityServer`."""

    # Tolerate abruptly-closed scrape connections.
    protocol_version = "HTTP/1.1"

    @property
    def obs(self) -> ObservabilityServer:
        return self.server.obs  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Silenced: scrapes at 1 Hz must not spam the pipeline's stderr."""

    def _send(
        self, status: int, payload: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, body: dict[str, Any]) -> None:
        payload = json.dumps(body, default=str).encode("utf-8")
        self._send(status, payload, "application/json; charset=utf-8")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/metrics":
                text = self.obs.telemetry.prometheus_text()
                self._send(200, text.encode("utf-8"), PROM_CONTENT_TYPE)
            elif parsed.path == "/healthz":
                status, body = self.obs.health()
                self._send_json(status, body)
            elif parsed.path == "/report":
                self._send_json(200, self.obs.report())
            elif parsed.path == "/events":
                query = parse_qs(parsed.query)
                n = int(query["n"][0]) if "n" in query else 100
                kind = query.get("kind", [None])[0]
                self._send_json(200, self.obs.recent_events(n, kind))
            elif parsed.path == "/trace":
                query = parse_qs(parsed.query)
                n = int(query["n"][0]) if "n" in query else 20
                self._send_json(200, self.obs.trace(n))
            elif parsed.path == "/":
                self._send_json(
                    200,
                    {"endpoints": ["/metrics", "/healthz", "/report",
                                   "/events", "/trace"]},
                )
            else:
                self._send_json(404, {"error": f"no route {parsed.path!r}"})
        except Exception as exc:  # pragma: no cover - handler must not die
            try:
                self._send_json(500, {"error": str(exc)})
            except OSError:
                pass
