"""A minimal Prometheus text-exposition parser.

Two consumers:

- ``repro-top`` scrapes a live run's ``/metrics`` endpoint and needs
  the sample values back as numbers;
- the exporter-conformance tests round-trip
  :func:`repro.telemetry.export.prometheus_text` through this parser to
  prove the output a real scraper would accept (HELP/TYPE pairing,
  label escaping, monotone cumulative buckets, ``+Inf`` terminals).

It implements the subset of the exposition format the exporter emits —
``# HELP`` / ``# TYPE`` comments and ``name{labels} value`` samples —
and raises :class:`ParseError` on anything malformed rather than
guessing, because a lenient parser would defeat the conformance tests.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class ParseError(ValueError):
    """The exposition text violates the format."""


@dataclass
class Sample:
    """One ``name{labels} value`` line."""

    name: str
    labels: dict[str, str]
    value: float


@dataclass
class Family:
    """One metric family: HELP/TYPE header plus its samples."""

    name: str
    kind: str = "untyped"
    help: str = ""
    samples: list[Sample] = field(default_factory=list)


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 1 >= len(value):
                raise ParseError(f"dangling escape in label value {value!r}")
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                raise ParseError(f"bad escape \\{nxt} in label value {value!r}")
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _unescape_help(text: str) -> str:
    # HELP escapes only \\ and \n; scan left-to-right (a replace chain
    # with a sentinel would corrupt help text containing the sentinel).
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text) and text[i + 1] in ("n", "\\"):
            out.append("\n" if text[i + 1] == "n" else "\\")
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(text):
        m = _LABEL_RE.match(text, pos)
        if m is None:
            raise ParseError(f"malformed label pair at {text[pos:]!r}")
        labels[m.group(1)] = _unescape(m.group(2))
        pos = m.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ParseError(f"expected ',' between labels in {text!r}")
            pos += 1
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError as exc:
        raise ParseError(f"bad sample value {text!r}") from exc


#: Suffixes a histogram family's samples may carry.
_HISTO_SUFFIXES = ("_bucket", "_sum", "_count")


def _base_name(sample_name: str, families: dict[str, Family]) -> str:
    """Map a sample line's name back to its family name."""
    if sample_name in families:
        return sample_name
    for suffix in _HISTO_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base].kind == "histogram":
                return base
    raise ParseError(f"sample {sample_name!r} has no HELP/TYPE header")


def parse_prometheus_text(text: str) -> dict[str, Family]:
    """Parse exposition text into ``{family name: Family}``.

    Enforces what the conformance tests care about: every sample's
    family was announced by a ``# TYPE`` line, HELP and TYPE name the
    same family when both are present, and histogram samples only use
    the blessed ``_bucket``/``_sum``/``_count`` suffixes.
    """
    families: dict[str, Family] = {}
    # The format is '\n'-delimited; str.splitlines would also break on
    # \r / U+2028 etc., which are legal *inside* escaped label values.
    for raw in text.split("\n"):
        line = raw[:-1] if raw.endswith("\r") else raw
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            fam = families.setdefault(name, Family(name))
            fam.help = _unescape_help(help_text)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ParseError(f"unknown TYPE {kind!r} for {name!r}")
            fam = families.setdefault(name, Family(name))
            if fam.samples:
                raise ParseError(
                    f"# TYPE for {name!r} appears after its samples"
                )
            fam.kind = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ParseError(f"malformed sample line {line!r}")
        base = _base_name(m.group("name"), families)
        families[base].samples.append(
            Sample(
                name=m.group("name"),
                labels=_parse_labels(m.group("labels") or ""),
                value=_parse_value(m.group("value")),
            )
        )
    return families


def _family_for_sample(
    families: dict[str, Family], name: str
) -> Family | None:
    """The family holding samples named ``name`` (suffix-aware)."""
    if name in families:
        return families[name]
    for suffix in _HISTO_SUFFIXES:
        if name.endswith(suffix):
            fam = families.get(name[: -len(suffix)])
            if fam is not None:
                return fam
    return None


def sample_value(
    families: dict[str, Family],
    name: str,
    labels: dict[str, str] | None = None,
) -> float:
    """The value of one exact sample, 0.0 when absent (scrape gaps).

    ``name`` may be a histogram sample name (``*_sum``, ``*_count``,
    ``*_bucket``); those resolve into their folded family.
    """
    fam = _family_for_sample(families, name)
    if fam is None:
        return 0.0
    want = labels or {}
    for sample in fam.samples:
        if sample.name == name and sample.labels == want:
            return sample.value
    return 0.0


def label_values(
    families: dict[str, Family], name: str, label: str
) -> dict[str, float]:
    """``{label value: sample value}`` across one family's plain samples."""
    fam = _family_for_sample(families, name)
    if fam is None:
        return {}
    out: dict[str, float] = {}
    for sample in fam.samples:
        if sample.name == name and label in sample.labels:
            out[sample.labels[label]] = sample.value
    return out
