"""Structured events: the pipeline's narrated timeline.

Metrics answer "how much"; spans answer "how long"; events answer
"what happened" — a run started, a connection died and was re-dialed,
a fault fired, the watchdog saw a stage stall.  Every event carries
the same schema on both substrates (wall-clock seconds live, virtual
seconds in the sim), so a chaos run's story reads identically whether
it happened for real or on the discrete-event engine:

``{ts, kind, severity, source, message, ...fields}``

:class:`EventBus` keeps the most recent events in a bounded,
thread-safe ring buffer (the ``/events`` endpoint of
:class:`~repro.obs.server.ObservabilityServer` reads it) and can mirror
every emission to a JSONL file sink for post-hoc analysis
(``--events-out``).  :class:`EventLogHandler` bridges the stdlib
``repro.*`` loggers into the bus, unifying :mod:`repro.util.log`
narration with the typed event stream.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import IO, Any, Iterable, Mapping

#: Blessed severities, least to most urgent.
SEVERITIES: tuple[str, ...] = ("debug", "info", "warning", "error")

#: Well-known event kinds (open set — subsystems may add their own, but
#: these are the ones both substrates emit and tests assert on).
EVENT_KINDS: tuple[str, ...] = (
    "run_start",          # a pipeline/endpoint run began
    "run_end",            # ... and finished (fields: ok, elapsed)
    "transport_retry",    # a reconnect attempt after a dead connection
    "fault_injected",     # the fault layer sabotaged a frame
    "stage_stall",        # watchdog: a worker stopped beating
    "stall_cleared",      # watchdog: the stalled worker resumed
    "worker_restart",     # supervisor: a crashed process worker respawned
    "worker_exit",        # supervisor: a process worker gave up for good
    "backpressure",       # watchdog: a queue pinned at depth
    "bottleneck_shift",   # watchdog: the busiest stage changed
    "replan_proposed",    # controller: a plan delta was proposed
    "replan_applied",     # controller: the delta took effect, no restart
    "replan_rejected",    # controller: the delta failed validation/apply
    "log",                # bridged stdlib log record
)


@dataclass(frozen=True)
class Event:
    """One structured occurrence on the pipeline timeline."""

    ts: float
    kind: str
    severity: str = "info"
    source: str = "live"
    message: str = ""
    fields: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r} (choose from {SEVERITIES})"
            )

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape written to sinks and served by ``/events``."""
        out: dict[str, Any] = {
            "ts": self.ts,
            "kind": self.kind,
            "severity": self.severity,
            "source": self.source,
            "message": self.message,
        }
        out.update(self.fields)
        return out


class EventBus:
    """Thread-safe bounded ring of events with an optional JSONL sink.

    The ring keeps the newest ``capacity`` events; the sink (when
    attached) sees *every* emission, so a bounded in-memory view and a
    complete on-disk record coexist.  ``ts`` defaults to wall epoch
    seconds; pass an explicit ``ts`` to emit on another timebase (the
    :class:`~repro.telemetry.Telemetry` facade forwards its own clock,
    which is virtual in the simulator).
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        source: str = "live",
        jsonl_path: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.source = source
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._counts: Counter[str] = Counter()
        self._emitted = 0
        self._sink: IO[str] | None = None
        self._sink_path: str | None = None
        if jsonl_path is not None:
            self.attach_sink(jsonl_path)

    # -- emission --------------------------------------------------------

    def emit(
        self,
        kind: str,
        message: str = "",
        *,
        severity: str = "info",
        ts: float | None = None,
        source: str | None = None,
        **fields: Any,
    ) -> Event:
        """Record one event; returns it (handy for tests)."""
        event = Event(
            ts=time.time() if ts is None else ts,
            kind=kind,
            severity=severity,
            source=self.source if source is None else source,
            message=message,
            fields=dict(fields),
        )
        line: str | None = None
        with self._lock:
            self._ring.append(event)
            self._counts[kind] += 1
            self._emitted += 1
            if self._sink is not None:
                line = json.dumps(event.to_dict(), default=str)
                self._sink.write(line + "\n")
                self._sink.flush()
        return event

    # -- sinks -----------------------------------------------------------

    def attach_sink(self, path: str) -> None:
        """Mirror every future emission to ``path`` as JSON lines."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
            self._sink = open(path, "w", encoding="utf-8")
            self._sink_path = path

    @property
    def sink_path(self) -> str | None:
        return self._sink_path

    def close(self) -> None:
        """Flush and close the sink (the ring stays readable)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total events ever emitted (ring overflow does not reset it)."""
        with self._lock:
            return self._emitted

    def recent(
        self,
        n: int | None = None,
        *,
        kind: str | None = None,
        min_severity: str = "debug",
    ) -> list[Event]:
        """Newest-last slice of the ring, optionally filtered."""
        floor = SEVERITIES.index(min_severity)
        with self._lock:
            events: Iterable[Event] = list(self._ring)
        out = [
            e
            for e in events
            if (kind is None or e.kind == kind)
            and SEVERITIES.index(e.severity) >= floor
        ]
        return out if n is None else out[-n:]

    def since(self, cursor: int) -> tuple[list[Event], int]:
        """Events emitted after ``cursor``, plus the new cursor.

        A cursor is a lifetime emission count (start from 0, then pass
        back what this returned).  Events that overflowed the ring
        before being read are gone — the returned slice starts at
        ``max(cursor, emitted - capacity)`` — but nothing newer than
        the cursor is ever skipped while the ring keeps up.  This is
        the controller's subscription primitive: poll-based, lock-held
        only for the snapshot, no callbacks into emitters.
        """
        if cursor < 0:
            raise ValueError("cursor must be >= 0")
        with self._lock:
            oldest = self._emitted - len(self._ring)
            start = max(0, cursor - oldest)
            return list(self._ring)[start:], self._emitted

    def counts(self) -> dict[str, int]:
        """Lifetime emission count per kind."""
        with self._lock:
            return dict(self._counts)


#: stdlib levelno -> event severity.
_LEVEL_SEVERITY: tuple[tuple[int, str], ...] = (
    (logging.ERROR, "error"),
    (logging.WARNING, "warning"),
    (logging.INFO, "info"),
)


def severity_for_level(levelno: int) -> str:
    for floor, severity in _LEVEL_SEVERITY:
        if levelno >= floor:
            return severity
    return "debug"


class EventLogHandler(logging.Handler):
    """Routes stdlib log records into an :class:`EventBus`.

    Installed on the ``"repro"`` logger by
    :func:`repro.util.log.attach_event_bus`, it turns the library's
    debug narration (planner placements, scheduler migrations, ...)
    into ``kind="log"`` events so one timeline holds both typed events
    and free-form diagnostics.
    """

    def __init__(self, bus: EventBus, level: int = logging.DEBUG) -> None:
        super().__init__(level)
        self.bus = bus

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.bus.emit(
                "log",
                record.getMessage(),
                severity=severity_for_level(record.levelno),
                logger=record.name,
            )
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)
