"""``repro-top``: a live ANSI dashboard over the observability plane.

Polls a running pipeline's :class:`~repro.obs.server.ObservabilityServer`
(``/metrics`` + ``/report`` + ``/healthz`` + ``/events``) and redraws a
single terminal frame — per-stage throughput (chunks/s from counter
deltas between polls), queue depths, mean batch sizes, worker health
and the current bottleneck verdict.  Curses-free on purpose: plain ANSI
escape codes work over ssh, in CI logs (``--once`` prints one frame and
exits, no cursor tricks), and in the paper-reproduction workflow where
the interesting run is usually on another machine.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.obs.promparse import (
    Family,
    label_values,
    parse_prometheus_text,
    sample_value,
)

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RESET = "\x1b[0m"

#: Pipeline stage display order (families may carry any subset).
_STAGE_ORDER = ("feed", "ingest", "compress", "send", "wire", "recv",
                "decompress", "egest")


def _fetch(url: str, timeout: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return bytes(resp.read())


def fetch_sample(base_url: str, *, timeout: float = 2.0) -> dict[str, Any]:
    """One poll of all five endpoints, as parsed payloads."""
    base = base_url.rstrip("/")
    metrics = parse_prometheus_text(
        _fetch(f"{base}/metrics", timeout).decode("utf-8")
    )
    report = json.loads(_fetch(f"{base}/report", timeout))
    try:
        health = json.loads(_fetch(f"{base}/healthz", timeout))
    except urllib.error.HTTPError as exc:  # 503 still carries the body
        health = json.loads(exc.read())
    events = json.loads(_fetch(f"{base}/events?n=5", timeout))
    try:
        trace = json.loads(_fetch(f"{base}/trace?n=3", timeout))
    except (urllib.error.URLError, OSError, json.JSONDecodeError):
        trace = {}  # older server without the /trace route
    return {
        "metrics": metrics,
        "report": report,
        "health": health,
        "events": events,
        "trace": trace,
    }


def _stage_chunks(families: Mapping[str, Family]) -> dict[str, float]:
    """Total chunks per stage, summed across streams."""
    fam = families.get("pipeline_chunks_total")
    totals: dict[str, float] = {}
    if fam is None:
        return totals
    for s in fam.samples:
        stage = s.labels.get("stage", "")
        totals[stage] = totals.get(stage, 0.0) + s.value
    return totals


def _ordered(stages: Mapping[str, Any]) -> list[str]:
    known = [s for s in _STAGE_ORDER if s in stages]
    return known + sorted(set(stages) - set(known))


class Dashboard:
    """Renders frames and tracks counter deltas between polls."""

    def __init__(self, *, color: bool = True) -> None:
        self.color = color
        self._prev_chunks: dict[str, float] | None = None
        self._prev_when: float | None = None

    def _c(self, code: str, text: str) -> str:
        return f"{code}{text}{_RESET}" if self.color else text

    def frame(self, sample: Mapping[str, Any], *, now: float) -> str:
        """One rendered frame (no cursor control — caller clears)."""
        families: dict[str, Family] = sample["metrics"]
        report: Mapping[str, Any] = sample["report"]
        health: Mapping[str, Any] = sample["health"]
        events: Mapping[str, Any] = sample["events"]

        chunks = _stage_chunks(families)
        rates: dict[str, float] = {}
        if self._prev_chunks is not None and self._prev_when is not None:
            dt = max(now - self._prev_when, 1e-9)
            for stage, total in chunks.items():
                rates[stage] = max(
                    0.0, (total - self._prev_chunks.get(stage, 0.0)) / dt
                )
        self._prev_chunks, self._prev_when = dict(chunks), now

        depths = label_values(families, "pipeline_queue_depth", "queue")
        bottleneck = report.get("bottleneck") or "-"
        util = report.get("stage_utilization", {})
        profile = report.get("profile") or {}

        healthy = bool(health.get("healthy", True))
        status = health.get("status", "?")
        badge = self._c(_GREEN if healthy else _RED, status.upper())
        lines = [
            self._c(_BOLD, "repro-top")
            + f"  health={badge}  bottleneck="
            + self._c(_YELLOW, str(bottleneck))
            + f"  retries={sample_value(families, 'transport_retries_total'):g}"
            + "  watchdog_stalls="
            + f"{_family_total(families, 'repro_watchdog_stalls_total'):g}"
            + "  replans="
            + f"{_family_total(families, 'repro_controller_applied_total'):g}",
            "",
            f"  {'stage':<12} {'chunks':>8} {'rate/s':>8} {'util':>5} "
            f"{'prof(s)':>8}",
        ]
        for stage in _ordered(chunks):
            lines.append(
                f"  {stage:<12} {chunks.get(stage, 0.0):>8g} "
                f"{rates.get(stage, 0.0):>8.1f} "
                f"{util.get(stage, 0.0):>5.2f} "
                f"{profile.get(stage, 0.0):>8.2f}"
            )
        if depths:
            lines.append("")
            lines.append(f"  {'queue':<24} {'depth':>6}")
            for queue in sorted(depths):
                depth = depths[queue]
                mark = self._c(_RED, f"{depth:>6g}") if depth >= 8 \
                    else f"{depth:>6g}"
                lines.append(f"  {queue:<24} {mark}")
        stale = health.get("stale_workers") or []
        if stale:
            lines.append("")
            lines.append(
                self._c(_RED, f"  stalled workers: {', '.join(stale)}")
            )
        recent = events.get("events") or []
        if recent:
            lines.append("")
            lines.append(self._c(_BOLD, "  recent events"))
            for ev in recent[-5:]:
                lines.append(
                    self._c(
                        _DIM,
                        f"  [{ev.get('ts', 0):.2f}] {ev.get('kind')}: "
                        f"{ev.get('message', '')}",
                    )
                )
        trace: Mapping[str, Any] = sample.get("trace") or {}
        lines.extend(self._trace_pane(trace))
        return "\n".join(lines)

    def _trace_pane(self, trace: Mapping[str, Any]) -> list[str]:
        """The flow-trace pane: latest sampled chunks' waterfalls and
        the per-stream critical-path verdicts."""
        traces = trace.get("traces") or []
        verdicts = trace.get("critical_path") or {}
        if not traces and not verdicts:
            return []
        lines = ["", self._c(_BOLD, "  flow traces")
                 + self._c(_DIM, f"  ({trace.get('count', 0)} assembled)")]
        for t in traces[-3:]:
            wf = t.get("waterfall") or {}
            path = "→".join(
                s.get("stage", "?") for s in (t.get("spans") or [])
            )
            lines.append(
                f"  {t.get('stream', '?')}#{t.get('chunk', '?'):<6} "
                f"{path}"
            )
            lines.append(
                self._c(
                    _DIM,
                    f"    total={wf.get('total', 0.0) * 1e3:.2f}ms "
                    f"work={wf.get('stage_work', 0.0) * 1e3:.2f} "
                    f"wire={wf.get('wire', 0.0) * 1e3:.2f} "
                    f"wait={wf.get('queue_wait', 0.0) * 1e3:.2f} "
                    f"defer={wf.get('deferral', 0.0) * 1e3:.2f} "
                    f"critical={t.get('critical_stage', '-')}",
                )
            )
        for stream in sorted(verdicts):
            v = verdicts[stream]
            lines.append(
                "  critical path "
                + self._c(_YELLOW, f"{stream}: {v.get('stage', '-')}")
                + self._c(
                    _DIM,
                    f" ({v.get('seconds', 0.0) * 1e3:.1f}ms, "
                    f"{v.get('share', 0.0) * 100:.0f}% of cost)",
                )
            )
        return lines


def _family_total(families: Mapping[str, Family], name: str) -> float:
    fam = families.get(name)
    if fam is None:
        return 0.0
    return sum(s.value for s in fam.samples)


def top_main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-top`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="live dashboard for a repro pipeline's --obs-port",
    )
    parser.add_argument(
        "url",
        nargs="?",
        default="http://127.0.0.1:9100",
        help="observability server base URL (default %(default)s)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="poll period in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (CI-friendly)",
    )
    parser.add_argument(
        "--no-color", action="store_true", help="disable ANSI colors"
    )
    args = parser.parse_args(argv)

    dash = Dashboard(color=not args.no_color and sys.stdout.isatty())
    while True:
        try:
            sample = fetch_sample(args.url, timeout=max(args.interval, 2.0))
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            print(f"repro-top: cannot poll {args.url}: {exc}",
                  file=sys.stderr)
            return 1
        frame = dash.frame(sample, now=time.monotonic())
        if args.once:
            print(frame)
            return 0
        sys.stdout.write(_CLEAR + frame + "\n")
        sys.stdout.flush()
        time.sleep(args.interval)
