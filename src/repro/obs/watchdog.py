"""The watchdog: heartbeats + queue gauges → stall/backpressure alerts.

A streaming pipeline fails quietly: a worker blocks on a dead socket, a
queue pins at capacity, the bottleneck migrates after a re-placement —
and throughput decays with nothing in the logs.  The watchdog closes
that gap by *consuming telemetry the pipeline already publishes*:

- **stalls** — every worker beats ``worker_heartbeat_seconds{worker}``
  when it finishes a span; a worker whose last beat is older than
  ``stall_after`` is stalled (``stage_stall`` event, cleared by
  ``stall_cleared`` when beats resume);
- **backpressure** — a ``pipeline_queue_depth`` gauge at or above
  ``backpressure_depth`` for ``backpressure_after`` seconds means a
  consumer can't keep up (``backpressure`` event);
- **bottleneck shifts** — every ``bottleneck_every`` polls the span
  report is recomputed and a change of busiest stage is announced
  (``bottleneck_shift`` event), the live signal the paper's
  measure → diagnose → re-place loop (§4.1) needs.

All detections also bump ``repro_watchdog_*`` counters so a scraper
sees them without reading the event stream.

Time comes from the telemetry clock, never from ``time`` directly, so
the same detector runs on wall time in the live runtime and on the
virtual clock inside the simulator (:meth:`Watchdog.sim_process`) with
deterministic thresholds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.obs.events import Event
from repro.obs.profiler import stage_for_thread_name
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim types)
    from repro.sim.engine import Engine
    from repro.sim.engine import Event as SimEvent


@dataclass(frozen=True)
class WatchdogConfig:
    """Detection thresholds, in clock seconds (wall or virtual)."""

    #: seconds between polls.
    interval: float = 0.25
    #: a worker is stalled when its last heartbeat is older than this.
    stall_after: float = 1.0
    #: queue depth that counts as backpressure...
    backpressure_depth: float = 8.0
    #: ...when sustained for at least this long.
    backpressure_after: float = 1.0
    #: an alerted queue re-arms only once depth drops to or below
    #: ``backpressure_clear_ratio * backpressure_depth`` — hysteresis,
    #: so depth oscillating around the threshold can't re-fire the
    #: alert every poll (and flap the autotuning controller).
    backpressure_clear_ratio: float = 0.5
    #: recompute the bottleneck every N polls (0 disables).
    bottleneck_every: int = 4

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be > 0")
        if self.stall_after <= 0:
            raise ValueError("stall_after must be > 0")
        if not 0 < self.backpressure_clear_ratio <= 1:
            raise ValueError(
                "backpressure_clear_ratio must be in (0, 1]"
            )


class Watchdog:
    """Polls one :class:`~repro.telemetry.Telemetry` for trouble.

    Run it as a daemon thread on the live pipeline (:meth:`start` /
    :meth:`stop`), as a simulated process on the virtual clock
    (:meth:`sim_process`), or drive :meth:`poll` by hand in tests.
    Detected conditions are emitted through ``telemetry.emit_event`` —
    a no-op unless an :class:`~repro.obs.events.EventBus` is attached —
    and always counted in the ``repro_watchdog_*`` families.
    """

    def __init__(
        self, telemetry: Telemetry, config: WatchdogConfig | None = None
    ) -> None:
        self.telemetry = telemetry
        self.config = config or WatchdogConfig()
        registry = telemetry.registry
        self._polls = registry.counter(
            "repro_watchdog_polls_total",
            "Watchdog poll cycles completed",
        )
        self._stalls = registry.counter(
            "repro_watchdog_stalls_total",
            "Stalled-worker detections (heartbeat older than stall_after)",
            ("worker",),
        )
        self._backpressure = registry.counter(
            "repro_watchdog_backpressure_total",
            "Sustained-backpressure detections per queue",
            ("queue",),
        )
        self._shifts = registry.counter(
            "repro_watchdog_bottleneck_shifts_total",
            "Times the busiest stage changed between polls",
        )
        #: worker -> heartbeat ts already alerted on (re-alert only
        #: after a fresh beat stalls again).
        self._alerted: dict[str, float] = {}
        #: queue -> first time seen at/above backpressure_depth.
        self._deep_since: dict[str, float] = {}
        self._deep_alerted: set[str] = set()
        self._last_bottleneck: str | None = None
        self._poll_count = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- detection -------------------------------------------------------

    def poll(self) -> list[Event]:
        """Run one detection cycle; returns the events it emitted."""
        now = self.telemetry.clock.now()
        self._polls.inc()
        self._poll_count += 1
        emitted: list[Event] = []
        emitted.extend(self._check_stalls(now))
        emitted.extend(self._check_backpressure(now))
        every = self.config.bottleneck_every
        if every > 0 and self._poll_count % every == 0:
            emitted.extend(self._check_bottleneck())
        return emitted

    def _emit(
        self, kind: str, message: str, *, severity: str = "info",
        **fields: Any,
    ) -> list[Event]:
        event = self.telemetry.emit_event(
            kind, message, severity=severity, **fields
        )
        return [event] if event is not None else []

    def _check_stalls(self, now: float) -> list[Event]:
        out: list[Event] = []
        for worker, beat in self.telemetry.heartbeats().items():
            age = now - beat
            seen = self._alerted.get(worker)
            if age > self.config.stall_after:
                if seen == beat:
                    continue  # already alerted on this silence
                self._alerted[worker] = beat
                self._stalls.labels(worker=worker).inc()
                out += self._emit(
                    "stage_stall",
                    f"worker {worker!r} silent for {age:.2f}s",
                    severity="warning",
                    worker=worker,
                    stage=stage_for_thread_name(worker),
                    age_s=round(age, 3),
                )
            elif seen is not None:
                del self._alerted[worker]
                out += self._emit(
                    "stall_cleared",
                    f"worker {worker!r} resumed",
                    worker=worker,
                    stage=stage_for_thread_name(worker),
                )
        return out

    def _check_backpressure(self, now: float) -> list[Event]:
        out: list[Event] = []
        family = self.telemetry.registry.get("pipeline_queue_depth")
        if family is None:
            return out
        clear = (
            self.config.backpressure_clear_ratio
            * self.config.backpressure_depth
        )
        for series in family.series():
            queue = series.labels[0] if series.labels else ""
            depth = getattr(series, "value", 0.0)
            if depth >= self.config.backpressure_depth:
                since = self._deep_since.setdefault(queue, now)
                if (
                    queue not in self._deep_alerted
                    and now - since >= self.config.backpressure_after
                ):
                    self._deep_alerted.add(queue)
                    self._backpressure.labels(queue=queue).inc()
                    out += self._emit(
                        "backpressure",
                        f"queue {queue!r} pinned at depth {depth:g} for "
                        f"{now - since:.2f}s",
                        severity="warning",
                        queue=queue,
                        depth=depth,
                    )
            elif depth <= clear:
                # A real drain: forget the alert and re-arm.
                self._deep_since.pop(queue, None)
                self._deep_alerted.discard(queue)
            else:
                # The hysteresis band (clear < depth < threshold): the
                # sustain timer resets, but the alert stays latched so
                # oscillation around the threshold can't re-fire it.
                self._deep_since.pop(queue, None)
        return out

    def _check_bottleneck(self) -> list[Event]:
        bottleneck = self.telemetry.pipeline_report().bottleneck
        if bottleneck is None:
            return []
        previous, self._last_bottleneck = self._last_bottleneck, bottleneck
        if previous is None or previous == bottleneck:
            return []
        self._shifts.inc()
        return self._emit(
            "bottleneck_shift",
            f"bottleneck moved {previous} -> {bottleneck}",
            previous=previous,
            bottleneck=bottleneck,
        )

    # -- live driver (daemon thread) -------------------------------------

    def start(self) -> "Watchdog":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval):
            self.poll()

    # -- sim driver (virtual-clock process) ------------------------------

    def sim_process(
        self, engine: "Engine", *, until: float
    ) -> Generator["SimEvent", Any, None]:
        """A generator to register with ``engine.process(...)``.

        Polls every ``config.interval`` virtual seconds and *returns* at
        ``until`` (the scenario horizon).  The bound matters: an
        immortal process would keep the event heap non-empty forever and
        defeat :class:`~repro.core.runtime.SimRuntime`'s deadlock and
        horizon detection.
        """
        while engine.now + self.config.interval <= until:
            yield engine.timeout(self.config.interval)
            self.poll()
