"""Stage-attributed sampling profiler for the live pipeline.

``sys._current_frames()`` snapshots every thread's Python stack without
instrumenting the code under test; sampled at a fixed rate it yields a
statistical profile whose cost is bounded by the rate, not by the
workload.  The twist here is *stage attribution*: live pipeline threads
are named after their Figure-2 stage (``compress-0``, ``send-1``,
``feeder``...), so each sample is charged to a pipeline stage and the
profile answers the paper's question — *where does the time actually
go?* — in the same vocabulary as the telemetry report.

Outputs:

- :meth:`SamplingProfiler.stage_self_seconds` — estimated busy seconds
  per stage, merged into :class:`~repro.telemetry.report.PipelineReport`
  by the observability server (``/report``) and the CLI;
- :meth:`SamplingProfiler.collapsed` — collapsed-stack text
  (``stage;frame;frame count`` per line), the input format of
  ``flamegraph.pl`` and https://www.speedscope.app.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from types import FrameType
from typing import Any

#: thread-name prefix -> canonical pipeline stage.
_STAGE_BY_PREFIX: dict[str, str] = {
    "feeder": "feed",
    "feed": "feed",
    "dispatcher": "feed",
    "compress": "compress",
    "send": "send",
    "sender": "send",
    "recv": "recv",
    "receiver": "recv",
    "decompress": "decompress",
    "wire": "send",
    "collector": "compress",
}


def stage_for_thread_name(name: str) -> str:
    """Map a worker thread name to its pipeline stage (else ``other``).

    ``compress-3`` → ``compress``, ``feeder`` → ``feed``, and composite
    names resolve by token — the simulator's dotted process names
    (``s0.compress.1`` → ``compress``) and the process pipeline's
    prefixed workers (``mp-compress-0`` → ``compress``, ``collector-1``
    → ``compress``) — the controller routes stall signals by this
    stage.  Anything the pipeline didn't spawn (main thread, HTTP
    server threads) lands in ``other`` so the profile still accounts
    for 100% of samples.
    """
    prefix = name.split("-", 1)[0].strip().lower()
    stage = _STAGE_BY_PREFIX.get(prefix)
    if stage is not None:
        return stage
    for token in name.strip().lower().replace("-", ".").split("."):
        if token in _STAGE_BY_PREFIX:
            return _STAGE_BY_PREFIX[token]
    return "other"


def _collapse(frame: FrameType | None, limit: int = 48) -> tuple[str, ...]:
    """Root-to-leaf frame labels, ``file:function`` per frame."""
    parts: list[str] = []
    f = frame
    while f is not None and len(parts) < limit:
        code = f.f_code
        parts.append(f"{os.path.basename(code.co_filename)}:{code.co_name}")
        f = f.f_back
    parts.reverse()
    return tuple(parts)


class SamplingProfiler:
    """Samples every thread's stack at ``hz`` and attributes by stage.

    Start/stop around the run (both are idempotent); query afterwards —
    or live, all accessors are thread-safe.  Self-time estimates scale
    each stage's sample count by the *measured* wall time per sampling
    round, so a sampler that can't keep its nominal rate (GIL pressure)
    still reports honest seconds.
    """

    def __init__(self, hz: float = 100.0) -> None:
        if hz <= 0:
            raise ValueError("hz must be > 0")
        self.hz = hz
        self._interval = 1.0 / hz
        self._lock = threading.Lock()
        self._stacks: Counter[tuple[str, ...]] = Counter()
        self._stage_samples: Counter[str] = Counter()
        self._samples = 0
        self._rounds = 0
        self._elapsed = 0.0
        self._started_at: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self.sample_once()

    # -- sampling --------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sample of every thread; returns threads sampled.

        Public so tests (and the simulator, which has no real worker
        threads to watch) can drive the profiler deterministically.
        """
        me = threading.get_ident()
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        sampled = 0
        with self._lock:
            self._rounds += 1
            for ident, frame in frames.items():
                if ident == me:
                    continue
                name = names.get(ident, f"thread-{ident}")
                if name == "obs-profiler":
                    continue
                stage = stage_for_thread_name(name)
                self._stacks[(stage, *_collapse(frame))] += 1
                self._stage_samples[stage] += 1
                self._samples += 1
                sampled += 1
        return sampled

    # -- results ---------------------------------------------------------

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    @property
    def rounds(self) -> int:
        with self._lock:
            return self._rounds

    @property
    def elapsed(self) -> float:
        """Wall seconds the sampler has been running."""
        extra = 0.0
        if self._started_at is not None:
            extra = time.perf_counter() - self._started_at
        return self._elapsed + extra

    def _seconds_per_sample(self) -> float:
        rounds = self._rounds
        if rounds == 0:
            return 0.0
        return self.elapsed / rounds

    def stage_self_seconds(self) -> dict[str, float]:
        """Estimated busy seconds per stage (sample count × round time)."""
        with self._lock:
            per = self._seconds_per_sample()
            return {
                stage: count * per
                for stage, count in sorted(self._stage_samples.items())
            }

    def collapsed(self, *, limit: int | None = None) -> str:
        """Collapsed-stack text: ``stage;frame;... count`` per line."""
        with self._lock:
            ranked = self._stacks.most_common(limit)
        return "\n".join(f"{';'.join(stack)} {count}" for stack, count in ranked)

    def to_dict(self, *, top: int = 50) -> dict[str, Any]:
        """JSON shape served under ``/report``'s ``profile`` key."""
        with self._lock:
            per = self._seconds_per_sample()
            stages = {
                stage: round(count * per, 6)
                for stage, count in sorted(self._stage_samples.items())
            }
            hottest = [
                {"stack": list(stack), "samples": count}
                for stack, count in self._stacks.most_common(top)
            ]
            return {
                "hz": self.hz,
                "samples": self._samples,
                "rounds": self._rounds,
                "elapsed_s": round(self.elapsed, 6),
                "stage_self_seconds": stages,
                "hottest": hottest,
            }

    def render(self) -> str:
        """Human-readable per-stage self-time table (CLI ``--profile``)."""
        stages = self.stage_self_seconds()
        total = sum(stages.values()) or 1.0
        lines = [
            f"sampling profile: {self.samples} samples over "
            f"{self.elapsed:.2f}s at {self.hz:g} Hz",
            f"  {'stage':<12} {'self(s)':>8} {'share':>6}",
        ]
        for stage, seconds in sorted(
            stages.items(), key=lambda kv: kv[1], reverse=True
        ):
            lines.append(
                f"  {stage:<12} {seconds:>8.2f} {seconds / total:>6.1%}"
            )
        return "\n".join(lines)
