"""repro.obs — the live observability plane.

Layered on :mod:`repro.telemetry` (which *collects*), this package
*serves and watches*: HTTP endpoints for scrapers and supervisors, a
structured event timeline shared by both substrates, a watchdog that
turns heartbeats and queue gauges into alerts, a stage-attributed
sampling profiler, and the ``repro-top`` dashboard.  See
``docs/observability.md``.
"""

from repro.obs.events import (
    EVENT_KINDS,
    SEVERITIES,
    Event,
    EventBus,
    EventLogHandler,
    severity_for_level,
)
from repro.obs.profiler import SamplingProfiler, stage_for_thread_name
from repro.obs.promparse import (
    Family,
    ParseError,
    Sample,
    label_values,
    parse_prometheus_text,
    sample_value,
)
from repro.obs.server import PROM_CONTENT_TYPE, ObservabilityServer
from repro.obs.top import Dashboard, fetch_sample, top_main
from repro.obs.watchdog import Watchdog, WatchdogConfig

__all__ = [
    "EVENT_KINDS",
    "SEVERITIES",
    "Event",
    "EventBus",
    "EventLogHandler",
    "severity_for_level",
    "SamplingProfiler",
    "stage_for_thread_name",
    "Family",
    "ParseError",
    "Sample",
    "label_values",
    "parse_prometheus_text",
    "sample_value",
    "PROM_CONTENT_TYPE",
    "ObservabilityServer",
    "Dashboard",
    "fetch_sample",
    "top_main",
    "Watchdog",
    "WatchdogConfig",
]
