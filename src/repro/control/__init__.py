"""repro.control — the closed-loop autotuning controller.

The paper's configuration generator is static: one placement per run.
Its own scaling figures, though, show the bottleneck stage *moving*
with stream count and data rate — which is why BriskStream iterates
Optimize-then-Execute instead of placing once.  This package closes
the same loop here: the :class:`Controller` subscribes to the event
bus the watchdog already feeds (``stage_stall``, ``backpressure``,
``bottleneck_shift``), diagnoses the binding constraint, proposes a
typed :class:`~repro.plan.delta.PlanDelta`, and applies it to the
*running* pipeline through a :class:`Reconfigurable` executor — no
restart, exactly-once accounting preserved.

The controller is substrate-neutral by the same contract as the
watchdog: time comes from the telemetry clock, signals from the event
bus, actions go through the executor protocol.  Run it as a daemon
thread on the live pipeline or as a simulated process on the virtual
clock — same decisions, and deterministic in sim under a fixed seed.
"""

from repro.control.controller import Controller
from repro.control.executor import Reconfigurable, StageSetExecutor

__all__ = ["Controller", "Reconfigurable", "StageSetExecutor"]
