"""The controller: obs signals in, applied plan deltas out.

One :meth:`Controller.poll` is one control cycle::

    drain new events (bus cursor) -> diagnose the binding constraint
    -> propose a PlanDelta -> validate against the plan -> apply
    through the Reconfigurable executor -> emit replan_* events

Diagnosis priority (most specific signal wins, one action per cycle):

1. ``stage_stall`` — a worker stopped beating: drain-and-respawn its
   stage (exactly-once holds; see docs/autotuning.md).
2. ``backpressure`` — a queue pinned at depth: scale the consuming
   stage up one worker, or — when that stage can't scale — double
   ``batch_frames`` so each handoff moves more per lock round-trip.
3. ``bottleneck_shift`` — the busiest stage changed: scale the new
   bottleneck up one worker.
4. Quiet streak — ``scale_down_after`` consecutive signal-free polls:
   return the most recently grown stage one step toward its baseline.

Applied actions are damped by ``cooldown`` (clock seconds between
*applied* re-plans); every proposal, applied or not, is visible as
``replan_proposed`` / ``replan_applied`` / ``replan_rejected`` events
and ``repro_controller_*`` counters.

Determinism: the controller reads time only from the telemetry clock
and signals only from the event bus, processes them in emission order,
and iterates its own state in sorted order — so inside the simulator
(virtual clock, seeded workload) the full decision trace is a pure
function of the scenario.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from repro.control.executor import Reconfigurable
from repro.obs.events import Event
from repro.plan.delta import (
    PlanDelta,
    ScaleStage,
    SetBatchFrames,
    apply_delta,
    delta_to_dict,
)
from repro.plan.ir import ControlNode
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim types)
    from repro.plan.ir import PipelinePlan
    from repro.sim.engine import Engine
    from repro.sim.engine import Event as SimEvent

#: Stages whose worker sets the controller will try to scale.
SCALABLE_STAGES = ("compress", "decompress")

#: A queue the watchdog flagged stays "pinned" in the controller's
#: books until its gauge drains below this fraction of the alert depth
#: — mirroring the watchdog's own clear hysteresis.  Without this the
#: watchdog's latched alert (one event per episode) would let the
#: controller take exactly one step and stall short of the fix.
PINNED_CLEAR_RATIO = 0.5


@dataclass(frozen=True)
class Action:
    """One decided control action (the executor-facing half)."""

    kind: str  # "respawn" | "scale" | "batch"
    stream: str
    stage: str
    value: int = 0
    delta: PlanDelta = PlanDelta()
    #: scale direction (True = grow) — drives scale-down bookkeeping.
    grow: bool = False

    def describe(self) -> str:
        if self.kind == "respawn":
            return f"respawn {self.stage} workers"
        if self.kind == "scale":
            return f"scale {self.stage} -> x{self.value}"
        return f"batch_frames -> {self.value}"


class Controller:
    """Turns watchdog events into live re-plans, without restart.

    Drive it like the watchdog: a daemon thread on the live pipeline
    (:meth:`start` / :meth:`stop`), a virtual-clock process in the
    simulator (:meth:`sim_process`), or :meth:`poll` by hand in tests.
    ``plan`` is optional — with one, every proposal is validated by
    :func:`repro.plan.delta.apply_delta` (strict=False) before it
    touches the runtime and the plan tracks the applied state; without
    one, proposals go straight to the executor.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        config: ControlNode | None = None,
        *,
        plan: "PipelinePlan | None" = None,
    ) -> None:
        self.telemetry = telemetry
        self.config = config or ControlNode(enabled=True)
        self.plan = plan
        self.executor: Reconfigurable | None = None
        registry = telemetry.registry
        self._polls = registry.counter(
            "repro_controller_polls_total",
            "Controller poll cycles completed",
        )
        self._proposals = registry.counter(
            "repro_controller_proposals_total",
            "Plan deltas proposed, by action kind",
            ("action",),
        )
        self._applied = registry.counter(
            "repro_controller_applied_total",
            "Plan deltas applied without restart, by action kind",
            ("action",),
        )
        self._rejected = registry.counter(
            "repro_controller_rejected_total",
            "Plan deltas rejected (validation or runtime refusal)",
            ("action",),
        )
        self._cursor = 0
        self._last_applied: float | None = None
        self._quiet_polls = 0
        #: (stream, stage) -> count before the controller's first grow,
        #: the floor scale-down returns toward.
        self._baseline: dict[tuple[str, str], int] = {}
        #: (stream, stage) grow order, newest last (scale-down order).
        self._grown: list[tuple[str, str]] = []
        #: queue -> depth at alert time; an episode stays a live signal
        #: until the gauge drains below PINNED_CLEAR_RATIO of it.
        self._pinned: dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Applied actions, oldest first — the decision trace sim
        #: determinism tests compare.
        self.decisions: list[str] = []

    # -- binding -----------------------------------------------------------

    def bind(self, executor: Reconfigurable) -> "Controller":
        """Attach the running pipeline's reconfiguration surface."""
        self.executor = executor
        return self

    # -- one control cycle -------------------------------------------------

    def poll(self) -> list[Event]:
        """Run one control cycle; returns the events it emitted."""
        self._polls.inc()
        now = self.telemetry.clock.now()
        events = self._drain()
        signals = self._gather(events)
        self._refresh_pinned(signals)
        if any(signals.values()):
            self._quiet_polls = 0
        else:
            self._quiet_polls += 1
        if self.executor is None:
            return []
        if (
            self._last_applied is not None
            and now - self._last_applied < self.config.cooldown
        ):
            return []
        action = self._decide(signals)
        if action is None:
            return []
        return self._propose(action, now)

    def _drain(self) -> list[Event]:
        bus = self.telemetry.events
        if bus is None:
            return []
        events, self._cursor = bus.since(self._cursor)
        return events

    def _gather(
        self, events: list[Event]
    ) -> dict[str, list[tuple[str, str]]]:
        """Bucket the new events into the three diagnosis signals."""
        signals: dict[str, list[tuple[str, str]]] = {
            "stall": [],
            "backpressure": [],
            "shift": [],
        }
        for e in events:
            if e.kind == "stage_stall":
                worker = str(e.fields.get("worker", ""))
                stage = str(e.fields.get("stage", "") or "")
                signals["stall"].append((worker, stage))
            elif e.kind == "backpressure":
                queue = str(e.fields.get("queue", ""))
                signals["backpressure"].append((queue, ""))
                depth = float(e.fields.get("depth", 0.0) or 0.0)
                self._pinned[queue] = max(
                    depth, self._pinned.get(queue, 0.0)
                )
            elif e.kind == "bottleneck_shift":
                stage = str(e.fields.get("bottleneck", ""))
                signals["shift"].append((stage, ""))
        return signals

    def _refresh_pinned(
        self, signals: dict[str, list[tuple[str, str]]]
    ) -> None:
        """Keep latched backpressure episodes alive as signals.

        The watchdog emits one ``backpressure`` event per episode and
        then holds the alert (its own hysteresis), so between the alert
        and the queue actually draining the bus goes quiet.  Reading the
        queue gauge directly bridges that gap: a pinned queue stays a
        backpressure signal until its depth falls below
        ``PINNED_CLEAR_RATIO`` of the depth at alert time.
        """
        fresh = {queue for queue, _ in signals["backpressure"]}
        for queue, depth in sorted(self._pinned.items()):
            current = self.telemetry.queue_gauge(queue).value
            if current <= max(1.0, PINNED_CLEAR_RATIO * depth):
                del self._pinned[queue]
            elif queue not in fresh:
                signals["backpressure"].append((queue, ""))

    @staticmethod
    def _stream_of(worker: str) -> str:
        """Stream id from a worker/thread name.

        Sim workers are named ``<stream>.<stage>.<i>``; live threads
        (``compress-0``) have no stream part — single-stream runtimes
        use ``""``.
        """
        return worker.split(".")[0] if "." in worker else ""

    def _decide(
        self, signals: dict[str, list[tuple[str, str]]]
    ) -> Action | None:
        ex = self.executor
        assert ex is not None
        cfg = self.config
        # 1. A stalled worker: respawn its stage behind the queues.
        for worker, stage in sorted(signals["stall"]):
            if not stage:
                continue
            return Action(
                kind="respawn",
                stream=self._stream_of(worker),
                stage=stage,
                delta=PlanDelta(
                    reason=f"stage_stall: worker {worker!r} silent",
                    notes=(f"respawn {stage} workers",),
                ),
            )
        # 2. Backpressure: grow the consumer, or batch up if it can't.
        for queue, _ in sorted(signals["backpressure"]):
            target = ex.queue_consumer(queue)
            if target is None:
                continue
            stream, stage = target
            reason = f"backpressure: queue {queue!r} pinned"
            action = self._grow(stream, stage, reason)
            if action is not None:
                return action
            action = self._batch_up(stream, reason)
            if action is not None:
                return action
        # 3. The bottleneck moved: give the new bottleneck a worker.
        for stage, _ in sorted(signals["shift"]):
            if stage not in SCALABLE_STAGES:
                continue
            action = self._grow(
                "", stage, f"bottleneck_shift: busiest stage now {stage}"
            )
            if action is not None:
                return action
        # 4. A quiet streak: hand back the most recent grow.
        if (
            cfg.scale_down_after > 0
            and self._quiet_polls >= cfg.scale_down_after
            and self._grown
        ):
            stream, stage = self._grown[-1]
            current = ex.stage_count(stream, stage)
            floor = max(
                cfg.min_workers, self._baseline.get((stream, stage), 1)
            )
            if current is not None and current > floor:
                sid = self._plan_stream(stream)
                return Action(
                    kind="scale",
                    stream=stream,
                    stage=stage,
                    value=current - 1,
                    delta=PlanDelta(
                        ops=(ScaleStage(sid, stage, current - 1),),
                        reason=(
                            f"quiet for {self._quiet_polls} polls: "
                            f"return {stage} toward baseline"
                        ),
                    ),
                )
            self._grown.pop()
        return None

    def _grow(self, stream: str, stage: str, reason: str) -> Action | None:
        ex = self.executor
        assert ex is not None
        if stage not in SCALABLE_STAGES or not ex.can_scale(stream, stage):
            return None
        current = ex.stage_count(stream, stage)
        if current is None or current >= self.config.max_workers:
            return None
        return Action(
            kind="scale",
            stream=stream,
            stage=stage,
            value=current + 1,
            grow=True,
            delta=PlanDelta(
                ops=(ScaleStage(self._plan_stream(stream), stage, current + 1),),
                reason=reason,
            ),
        )

    def _batch_up(self, stream: str, reason: str) -> Action | None:
        ex = self.executor
        assert ex is not None
        current = ex.batch_frames(stream)
        if current >= self.config.max_batch_frames:
            return None
        value = min(current * 2, self.config.max_batch_frames)
        return Action(
            kind="batch",
            stream=stream,
            value=value,
            stage="",
            delta=PlanDelta(
                ops=(SetBatchFrames(self._plan_stream(stream), value),),
                reason=reason,
            ),
        )

    def _plan_stream(self, stream: str) -> str:
        """Map a runtime stream id onto the plan's (live runs say "")."""
        if stream:
            return stream
        if self.plan is not None and self.plan.streams:
            return self.plan.streams[0].stream_id
        return stream

    # -- proposal -> validate -> apply ------------------------------------

    def _propose(self, action: Action, now: float) -> list[Event]:
        emitted: list[Event] = []
        self._proposals.labels(action=action.kind).inc()
        doc = delta_to_dict(action.delta)
        emitted += self._emit(
            "replan_proposed",
            f"propose {action.describe()} [{action.delta.reason}]",
            action=action.kind,
            stage=action.stage,
            stream=action.stream,
            delta=doc,
        )
        # Validate against the tracked plan before touching the runtime.
        new_plan = None
        if self.plan is not None and action.delta.ops:
            result = apply_delta(self.plan, action.delta, strict=False)
            if not result.ok:
                problems = [
                    d.message for d in result.diagnostics.errors
                ]
                self._rejected.labels(action=action.kind).inc()
                emitted += self._emit(
                    "replan_rejected",
                    f"delta failed plan validation: {'; '.join(problems)}",
                    severity="warning",
                    action=action.kind,
                    stage=action.stage,
                    delta=doc,
                )
                return emitted
            new_plan = result.plan
        if not self._apply(action):
            self._rejected.labels(action=action.kind).inc()
            emitted += self._emit(
                "replan_rejected",
                f"runtime refused {action.describe()}",
                severity="warning",
                action=action.kind,
                stage=action.stage,
                delta=doc,
            )
            return emitted
        if new_plan is not None:
            self.plan = new_plan
        if action.kind == "scale":
            key = (action.stream, action.stage)
            if action.grow:
                self._baseline.setdefault(key, action.value - 1)
                if key in self._grown:
                    self._grown.remove(key)
                self._grown.append(key)
            else:
                floor = max(
                    self.config.min_workers, self._baseline.get(key, 1)
                )
                if action.value <= floor and key in self._grown:
                    self._grown.remove(key)
        self._last_applied = now
        self._applied.labels(action=action.kind).inc()
        self.decisions.append(action.describe())
        emitted += self._emit(
            "replan_applied",
            f"applied {action.describe()} [{action.delta.reason}]",
            action=action.kind,
            stage=action.stage,
            stream=action.stream,
            delta=doc,
        )
        return emitted

    def _apply(self, action: Action) -> bool:
        ex = self.executor
        assert ex is not None
        if action.kind == "respawn":
            return ex.respawn_stage(action.stream, action.stage)
        if action.kind == "scale":
            return ex.scale_stage(action.stream, action.stage, action.value)
        if action.kind == "batch":
            return ex.set_batch_frames(action.stream, action.value)
        return False  # pragma: no cover - kinds are closed above

    def _emit(
        self, kind: str, message: str, *, severity: str = "info",
        **fields: Any,
    ) -> list[Event]:
        event = self.telemetry.emit_event(
            kind, message, severity=severity, **fields
        )
        return [event] if event is not None else []

    # -- live driver (daemon thread) --------------------------------------

    def start(self) -> "Controller":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="autotune-controller", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    def __enter__(self) -> "Controller":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval):
            self.poll()

    # -- sim driver (virtual-clock process) -------------------------------

    def sim_process(
        self, engine: "Engine", *, until: float
    ) -> Generator["SimEvent", Any, None]:
        """A generator to register with ``engine.process(...)``.

        Polls every ``config.interval`` virtual seconds and returns at
        ``until`` — bounded for the same reason the watchdog's sim
        process is (an immortal process would defeat the engine's
        deadlock and horizon detection).
        """
        while engine.now + self.config.interval <= until:
            yield engine.timeout(self.config.interval)
            self.poll()
