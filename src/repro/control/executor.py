"""The reconfiguration protocol between controller and runtime.

:class:`Reconfigurable` is what a running pipeline must expose for the
controller to act on it — a handful of narrow methods, all safe to
call from another thread (or, in the simulator, from a virtual-clock
process between events).  Every mutator returns a bool: False means
"refused, pipeline unchanged" (stage not scalable, stream already
draining, value out of range), which the controller reports as a
``replan_rejected`` rather than an error.

:class:`StageSetExecutor` is the shared thread-substrate
implementation: a bag of named :class:`~repro.live.stageset.StageSet`
objects plus the shared :class:`~repro.live.stageset.Knobs`, with a
queue-name → consumer-stage map so backpressure signals resolve to the
stage that should absorb them.  Both :class:`~repro.live.runtime.
LivePipeline` and :class:`~repro.mp.pipeline.ProcessPipeline` build
one; the simulator implements the protocol directly on its DES state.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.live.stageset import Knobs, StageSet


@runtime_checkable
class Reconfigurable(Protocol):
    """What a running pipeline exposes to the controller."""

    def queue_consumer(self, queue: str) -> tuple[str, str] | None:
        """``(stream_id, stage)`` consuming ``queue``, or None.

        Single-stream runtimes use ``""`` for the stream id.
        """
        ...

    def stage_count(self, stream: str, stage: str) -> int | None:
        """Current worker count of a stage (None when unknown)."""
        ...

    def can_scale(self, stream: str, stage: str) -> bool:
        """Whether :meth:`scale_stage` could change this stage."""
        ...

    def scale_stage(self, stream: str, stage: str, count: int) -> bool:
        """Set a stage's worker count; False = refused, unchanged."""
        ...

    def respawn_stage(self, stream: str, stage: str) -> bool:
        """Drain-and-respawn a stage's workers; False = refused."""
        ...

    def batch_frames(self, stream: str) -> int:
        """The current ``batch_frames`` knob value."""
        ...

    def set_batch_frames(self, stream: str, value: int) -> bool:
        """Hot-swap ``batch_frames``; False = refused, unchanged."""
        ...


class StageSetExecutor:
    """The thread-substrate :class:`Reconfigurable`: StageSets + Knobs.

    ``queue_map`` routes a backpressured queue name to the stage that
    drains it (``{"rawq": "compress", "wireq": "decompress", ...}``).
    ``respawn_hooks`` lets a pipeline override respawn for stages whose
    workers aren't plain stoppable threads — the process pipeline
    routes ``compress`` respawns to the domain supervisor this way.
    """

    def __init__(
        self,
        stages: dict[str, StageSet],
        knobs: Knobs,
        *,
        queue_map: dict[str, str],
        respawn_hooks: dict[str, Callable[[], bool]] | None = None,
    ) -> None:
        self.stages = stages
        self.knobs = knobs
        self.queue_map = queue_map
        self.respawn_hooks = respawn_hooks or {}

    def queue_consumer(self, queue: str) -> tuple[str, str] | None:
        stage = self.queue_map.get(queue)
        return ("", stage) if stage is not None else None

    def stage_count(self, stream: str, stage: str) -> int | None:
        ss = self.stages.get(stage)
        return ss.count if ss is not None else None

    def can_scale(self, stream: str, stage: str) -> bool:
        ss = self.stages.get(stage)
        return ss is not None and ss.scalable

    def scale_stage(self, stream: str, stage: str, count: int) -> bool:
        ss = self.stages.get(stage)
        return ss is not None and ss.scale_to(count)

    def respawn_stage(self, stream: str, stage: str) -> bool:
        hook = self.respawn_hooks.get(stage)
        if hook is not None:
            return hook()
        ss = self.stages.get(stage)
        return ss is not None and ss.respawn()

    def batch_frames(self, stream: str) -> int:
        return self.knobs.batch_frames

    def set_batch_frames(self, stream: str, value: int) -> bool:
        if value < 1:
            return False
        self.knobs.batch_frames = value
        return True
