"""repro — NUMA-aware runtime system for scientific data streaming.

A from-scratch reproduction of *"Throughput Optimization with a
NUMA-Aware Runtime System for Efficient Scientific Data Streaming"*
(SC 2023, INDIS workshop): a heterogeneous software pipeline
(compress → send → receive → decompress) whose task counts and NUMA
placements are planned from a hardware knowledge base, evaluated on a
fluid discrete-event model of the paper's testbed, with a real LZ4
codec, synthetic tomographic data, and a live (thread + socket) pipeline
for functional end-to-end runs.

Quick start::

    from repro import (
        ConfigGenerator, HardwareKnowledgeBase, Workload, StreamRequest,
        run_scenario, lynxdtn_spec, updraft_spec, APS_LAN_PATH,
    )

    kb = HardwareKnowledgeBase()
    kb.add_machine(updraft_spec())
    kb.add_machine(lynxdtn_spec())
    kb.add_path(APS_LAN_PATH)
    plan = ConfigGenerator(kb).generate(Workload([StreamRequest(
        "s1", "updraft1", "lynxdtn", "aps-lan")]))
    result = run_scenario(plan)
    print(result.total_delivered_gbps)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured audit of every figure and table.
"""

from repro.core import (
    ALCF_APS_PATH,
    APS_LAN_PATH,
    ConfigGenerator,
    CostModel,
    DynamicRebalancer,
    HardwareKnowledgeBase,
    PathSpec,
    PlacementSpec,
    ScenarioConfig,
    ScenarioResult,
    SimRuntime,
    StageConfig,
    StageKind,
    StreamConfig,
    StreamRequest,
    StreamResult,
    TABLE1,
    TABLE2,
    TABLE3,
    Workload,
    run_scenario,
)
from repro.compress import Codec, LZ4Codec, NullCodec, available_codecs, get_codec
from repro.data import Chunk, SpheresDataset, SpheresPhantom
from repro.hw import (
    CoreId,
    Machine,
    MachineSpec,
    NicSpec,
    SocketSpec,
    lynxdtn_spec,
    polaris_spec,
    updraft_spec,
)
from repro.osmodel import AffinityMask, FirstTouchAllocator, OsScheduler

__version__ = "1.0.0"

__all__ = [
    "ALCF_APS_PATH",
    "APS_LAN_PATH",
    "AffinityMask",
    "Chunk",
    "Codec",
    "ConfigGenerator",
    "CoreId",
    "CostModel",
    "DynamicRebalancer",
    "FirstTouchAllocator",
    "HardwareKnowledgeBase",
    "LZ4Codec",
    "Machine",
    "MachineSpec",
    "NicSpec",
    "NullCodec",
    "OsScheduler",
    "PathSpec",
    "PlacementSpec",
    "ScenarioConfig",
    "ScenarioResult",
    "SimRuntime",
    "SocketSpec",
    "SpheresDataset",
    "SpheresPhantom",
    "StageConfig",
    "StageKind",
    "StreamConfig",
    "StreamRequest",
    "StreamResult",
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "Workload",
    "available_codecs",
    "get_codec",
    "lynxdtn_spec",
    "polaris_spec",
    "run_scenario",
    "updraft_spec",
    "__version__",
]
