"""The substrate-neutral pipeline plan IR.

A :class:`PipelinePlan` is the paper's Figure-4 artifact — "the type of
tasks designated to individual sockets, the number of tasks, and the
task execution location" — held in a form neither the simulator nor the
live runtime owns.  The planner (:mod:`repro.plan.passes`) runs
``generate -> validate -> normalize -> lower`` over it; the two
lowerings (:mod:`repro.plan.lower`) emit what each substrate executes:
a :class:`~repro.core.config.ScenarioConfig` for the simulator, a
:class:`~repro.live.runtime.LiveConfig` + affinity map for real
threads.

Structure::

    PipelinePlan
      machines: {name -> MachineSpec}     topology facts
      paths:    {name -> PathSpec}        network facts
      streams:  [StreamNode]              one per detector stream
        stages: (StageNode, ...)          pipeline order, with rationale
        edges:  (QueueEdge, ...)          bounded queues (normalize derives)
        faults: (FaultSpec, ...)          failure testing, both substrates

The IR deliberately reuses the declarative vocabulary types
(:class:`StageKind`, :class:`PlacementSpec`, :class:`FaultSpec`,
:class:`MachineSpec`, :class:`PathSpec`) — those describe *facts and
decisions*, not execution, so they are substrate-neutral already.
Unlike :class:`~repro.core.config.ScenarioConfig`, construction does
not validate: a plan may be inconsistent, and the validation pass
reports every problem at once (:mod:`repro.plan.diagnostics`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from repro.compress.codec import CodecSpec
from repro.core.config import FaultSpec, StageKind
from repro.core.params import CostModel, PathSpec
from repro.core.placement import PlacementSpec
from repro.hw.topology import MachineSpec

#: Canonical pipeline order (Figure 2 plus source ingest / sink egest).
STAGE_ORDER: tuple[StageKind, ...] = (
    StageKind.INGEST,
    StageKind.COMPRESS,
    StageKind.SEND,
    StageKind.RECV,
    StageKind.DECOMPRESS,
    StageKind.EGEST,
)

#: Plan policies: how the placements were decided.
POLICIES = ("numa_aware", "os_baseline", "manual")


@dataclass(frozen=True)
class StageNode:
    """One pipeline stage of one stream: threads, placement, and why."""

    kind: StageKind
    count: int
    placement: PlacementSpec
    #: Human-readable placement rationale (the §3 decision that put it
    #: there); surfaces in ``repro-plan explain`` and plan files.
    rationale: str = ""

    def describe(self) -> str:
        return f"{self.kind.value} x{self.count} @ {self.placement.describe()}"


@dataclass(frozen=True)
class QueueEdge:
    """A bounded queue between two stages (the paper's thread-safe
    queues; small capacities give tight backpressure)."""

    src: str
    dst: str
    capacity: int
    #: True for the send->recv leg, where each S/R pair gets its own
    #: socket/arrival queue pair rather than one shared store.
    per_connection: bool = False

    def describe(self) -> str:
        fan = " (per connection)" if self.per_connection else ""
        return f"{self.src} -> {self.dst} [cap {self.capacity}]{fan}"


@dataclass(frozen=True)
class ExecutionNode:
    """How the live substrate should *execute* the plan — a policy
    node, not a placement one.

    ``thread`` (the default) keeps the single-process pipeline;
    ``process`` runs one compressor process per NUMA domain over
    shared-memory rings (:mod:`repro.mp`), which is the only mode that
    can physically demonstrate multi-core compression scaling from
    CPython.  Serialization is v3-compatible: a default node is simply
    omitted from the document, so plans that never mention execution
    round-trip byte-identically with older readers.
    """

    mode: str = "thread"
    #: Compressor domains in process mode; 0 = one per planned
    #: compress worker.
    domains: int = 0
    #: Records buffered per shared-memory ring (per domain/direction).
    ring_capacity: int = 8
    #: Ring slot size, bytes; must fit one packed chunk record.
    ring_slot_bytes: int = 1 << 20
    #: How the live receiver multiplexes connections: ``eventloop``
    #: (a fixed pool of selector-driven reactor shards) or ``threads``
    #: (the legacy one-handler-thread-per-socket fallback).
    receiver_mode: str = "eventloop"
    #: Reactor shards in eventloop mode; 0 = auto (one per NUMA-domain
    #: core, mirroring the NIC's RSS hash→queue fan-out, Obs 3/4).
    receiver_shards: int = 0

    @property
    def is_default(self) -> bool:
        return self == ExecutionNode()

    def describe(self) -> str:
        recv = ""
        if self.receiver_mode != "eventloop" or self.receiver_shards:
            shards = self.receiver_shards or "auto"
            recv = f" recv={self.receiver_mode} x{shards}"
        if self.mode == "thread":
            return f"thread{recv}" if recv else "thread"
        d = self.domains or "auto"
        return (
            f"process x{d} (ring {self.ring_capacity} x "
            f"{self.ring_slot_bytes}B){recv}"
        )


def stream_shard(stream_id: str, shards: int) -> int:
    """RSS-style stream→shard mapping shared by sim and live.

    Deterministic across processes and runs (CRC-32 of the stream id —
    Python's ``hash`` is salted per process), so the plan's sharding
    policy lowers identically everywhere: the software analogue of the
    NIC hashing a flow onto a fixed RSS queue.
    """
    if shards <= 1:
        return 0
    return zlib.crc32(stream_id.encode()) % shards


@dataclass(frozen=True)
class CodecNode:
    """Which codec compresses payloads — a policy node, not a placement.

    A static policy names one registered codec (plus constructor
    params); the ``adaptive`` policy carries the candidate set and the
    re-probe cadence for per-chunk selection
    (:class:`repro.compress.adaptive.AdaptiveCodec`).  Serialization is
    v3-compatible: the default node (static zlib, no params) is simply
    omitted from the document, so plans that never chose a codec
    round-trip byte-identically with older readers.
    """

    name: str = "zlib"
    #: Static-codec constructor params as sorted ``(key, value)`` pairs
    #: (e.g. ``(("level", 9),)``) — a tuple so the node stays hashable.
    params: tuple[tuple[str, Any], ...] = ()
    #: Adaptive only: candidate codec names; () = the codec's default.
    allowed: tuple[str, ...] = ()
    #: Adaptive only: re-probe cadence in chunks; 0 = the codec default.
    probe_interval: int = 0

    @property
    def is_default(self) -> bool:
        return self == CodecNode()

    @property
    def is_adaptive(self) -> bool:
        return self.name == "adaptive"

    @classmethod
    def from_spec(cls, spec: "CodecSpec | str") -> "CodecNode":
        """Lift a codec spec (or spec string) into the IR node."""
        if isinstance(spec, str):
            spec = CodecSpec.parse(spec)
        params = dict(spec.params)
        allowed: tuple[str, ...] = ()
        probe = 0
        if spec.name == "adaptive":
            raw = params.pop("allowed", ())
            allowed = (raw,) if isinstance(raw, str) else tuple(raw)
            probe = int(params.pop("probe_interval", 0))
        return cls(
            name=spec.name,
            params=tuple(sorted(params.items())),
            allowed=allowed,
            probe_interval=probe,
        )

    def spec(self) -> CodecSpec:
        """The :class:`CodecSpec` this node lowers to."""
        params: dict[str, Any] = dict(self.params)
        if self.is_adaptive:
            if self.allowed:
                params["allowed"] = self.allowed
            if self.probe_interval:
                params["probe_interval"] = self.probe_interval
        return CodecSpec(self.name, params)

    def describe(self) -> str:
        if self.is_adaptive:
            pool = "|".join(self.allowed) if self.allowed else "default set"
            probe = self.probe_interval or "default"
            return f"adaptive over {pool} (probe every {probe})"
        return str(self.spec())


@dataclass(frozen=True)
class ControlNode:
    """Closed-loop autotuning policy — a policy node, not a placement.

    When ``enabled``, the runtime starts a
    :class:`repro.control.Controller` that watches the event bus
    (backpressure, stalls, bottleneck shifts) and applies plan deltas
    to the *running* pipeline: scaling worker sets, retuning
    ``batch_frames``, respawning stalled workers.  The same node drives
    both substrates — a daemon thread on wall time, a simulated process
    on the virtual clock.  Serialization is v3-compatible: the default
    (disabled) node is simply omitted from the document, so plans that
    never opted into autotuning round-trip byte-identically with older
    readers.
    """

    enabled: bool = False
    #: Seconds between controller polls (wall or virtual).
    interval: float = 0.5
    #: Minimum seconds between *applied* re-plans (damping).
    cooldown: float = 2.0
    #: Worker-count bounds for scalable stages (compress/decompress).
    min_workers: int = 1
    max_workers: int = 8
    #: Largest ``batch_frames`` the controller may set.
    max_batch_frames: int = 8
    #: Consecutive quiet polls before scaling a stage back down
    #: (0 disables scale-down).
    scale_down_after: int = 0

    @property
    def is_default(self) -> bool:
        return self == ControlNode()

    def describe(self) -> str:
        if not self.enabled:
            return "disabled"
        down = (
            f", down after {self.scale_down_after} quiet polls"
            if self.scale_down_after
            else ""
        )
        return (
            f"every {self.interval:g}s (cooldown {self.cooldown:g}s, "
            f"workers {self.min_workers}..{self.max_workers}, "
            f"batch <= {self.max_batch_frames}{down})"
        )


@dataclass(frozen=True)
class TraceNode:
    """Flow-tracing policy — head-based sampling of per-chunk traces.

    When ``sample`` is N > 0, the feeder marks every Nth chunk of each
    stream with a trace context; the mark propagates through queue,
    ring, and wire handoffs and both endpoints record per-chunk spans
    that :mod:`repro.trace` reassembles into causal timelines.
    ``per_stream_cap`` bounds traces per stream (0 = unbounded).
    Serialization is v3-compatible: the default (disabled) node is
    omitted from the document, so existing plans round-trip
    byte-identically.
    """

    #: 1-in-N head sampling rate; 0 disables tracing, 1 traces all.
    sample: int = 0
    #: Max traces started per stream (0 = unbounded).
    per_stream_cap: int = 0

    @property
    def enabled(self) -> bool:
        return self.sample > 0

    @property
    def is_default(self) -> bool:
        return self == TraceNode()

    def describe(self) -> str:
        if not self.enabled:
            return "disabled"
        cap = (
            f", cap {self.per_stream_cap}/stream"
            if self.per_stream_cap
            else ""
        )
        return f"1-in-{self.sample} head sampling{cap}"


@dataclass(frozen=True)
class StreamNode:
    """One detector stream: workload, endpoints, stages, and faults."""

    stream_id: str
    sender: str
    receiver: str
    path: str
    num_chunks: int = 200
    chunk_bytes: int = 11_059_200
    ratio_mean: float = 2.0
    ratio_sigma: float = 0.03
    source_socket: int | None = None
    queue_capacity: int = 4
    #: Chunks coalesced per queue handoff / vectored send — a plan
    #: *policy* knob: lowered to ``LiveConfig.batch_frames`` and
    #: ``StreamConfig.batch_frames`` so both substrates batch alike.
    batch_frames: int = 1
    micro: bool = False
    faults: tuple[FaultSpec, ...] = ()
    stages: tuple[StageNode, ...] = ()
    #: Derived by the normalize pass; () until then.
    edges: tuple[QueueEdge, ...] = ()

    # -- accessors -------------------------------------------------------

    def stage(self, kind: StageKind) -> StageNode | None:
        """The stage node of one kind, or None when absent."""
        for node in self.stages:
            if node.kind == kind:
                return node
        return None

    def stages_in_order(self) -> tuple[StageNode, ...]:
        """Present stages, canonical pipeline order."""
        by_kind = {node.kind: node for node in self.stages}
        return tuple(by_kind[k] for k in STAGE_ORDER if k in by_kind)

    @property
    def has_hop(self) -> bool:
        """True when the stream crosses the network (send+recv present)."""
        return self.stage(StageKind.SEND) is not None

    def stage_counts(self) -> dict[str, int]:
        """``{stage name: thread count}`` for present stages, in order."""
        return {n.kind.value: n.count for n in self.stages_in_order()}


@dataclass
class PipelinePlan:
    """A complete, substrate-neutral plan for one run."""

    name: str
    machines: dict[str, MachineSpec]
    paths: dict[str, PathSpec]
    streams: list[StreamNode]
    cost: CostModel = field(default_factory=CostModel)
    seed: int = 7
    warmup_chunks: int = 20
    csw_penalty: float = 0.04
    wake_affinity: float = 0.85
    migrate_prob: float = 0.005
    spill_threshold: int = 1
    max_sim_time: float = 600.0
    #: How placements were decided: "numa_aware" (the paper's runtime),
    #: "os_baseline" (§4.2 comparison), or "manual" (hand-built).
    policy: str = "manual"
    #: How the live substrate executes the plan (thread vs process).
    execution: ExecutionNode = field(default_factory=ExecutionNode)
    #: Which codec compresses payloads (static name or adaptive policy).
    codec: CodecNode = field(default_factory=CodecNode)
    #: Closed-loop autotuning policy (disabled unless opted into).
    control: ControlNode = field(default_factory=ControlNode)
    #: Flow-tracing sampling policy (disabled unless opted into).
    trace: TraceNode = field(default_factory=TraceNode)
    #: Free-form provenance (workload name, generator inputs, ...).
    metadata: dict[str, str] = field(default_factory=dict)

    # -- accessors -------------------------------------------------------

    def stream(self, stream_id: str) -> StreamNode:
        for s in self.streams:
            if s.stream_id == stream_id:
                return s
        raise KeyError(f"no stream {stream_id!r} in plan {self.name!r}")

    def stream_ids(self) -> list[str]:
        return [s.stream_id for s in self.streams]

    def __iter__(self) -> Iterator[StreamNode]:
        return iter(self.streams)

    def with_streams(self, streams: list[StreamNode]) -> "PipelinePlan":
        """Copy with different streams (passes rewrite immutably)."""
        return replace(self, streams=streams)

    def describe(self) -> str:
        """Terse one-plan summary for logs and CLI output."""
        lines = [
            f"plan {self.name!r} [{self.policy}]: "
            f"{len(self.machines)} machines, {len(self.streams)} streams"
        ]
        if not self.execution.is_default:
            lines.append(f"  execution: {self.execution.describe()}")
        if not self.codec.is_default:
            lines.append(f"  codec: {self.codec.describe()}")
        if not self.control.is_default:
            lines.append(f"  control: {self.control.describe()}")
        if not self.trace.is_default:
            lines.append(f"  trace: {self.trace.describe()}")
        for s in self.streams:
            stages = ", ".join(n.describe() for n in s.stages_in_order())
            lines.append(f"  {s.stream_id}: {s.sender} -> {s.receiver}: {stages}")
        return "\n".join(lines)
