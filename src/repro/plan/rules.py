"""The paper's §3 placement decision logic, as shared data and helpers.

Every layer that reasons about *where threads belong* — the generator's
planning passes, ``repro-plan explain``, and the §6 online rebalancer
(:mod:`repro.core.dynamic`) — used to restate Observations 1–4 in its
own words.  This module is the single statement: which sockets each
stage targets on a given machine, and the one-line rationale the paper
gives for it.
"""

from __future__ import annotations

from repro.core.config import StageKind
from repro.hw.topology import MachineSpec

#: Observation rationale per stage kind, the §3 decision logic verbatim
#: enough to annotate plans and explain placements.
RATIONALE: dict[StageKind, str] = {
    StageKind.INGEST: (
        "dedicated reader cores sized to the target rate - a starved "
        "reader throttles the whole pipeline (sender sizing rule)"
    ),
    StageKind.COMPRESS: (
        "all remaining sender cores; data/execution domain does not "
        "matter, never oversubscribe past ~2 threads/core (Obs 2)"
    ),
    StageKind.SEND: (
        "placement is irrelevant on the sender (Obs 4); co-located "
        "with compression cores on the NIC socket for free locality"
    ),
    StageKind.RECV: (
        "receive threads on cores of the NIC's NUMA domain, the "
        "socket's cores divided evenly between streams (Obs 1 / Obs 4)"
    ),
    StageKind.DECOMPRESS: (
        "decompression on the non-NIC socket(s), spread evenly, off "
        "the receive cores to dodge LLC/MC contention (Obs 3)"
    ),
    StageKind.EGEST: (
        "sink writers ride with decompression output; placement is "
        "not throughput-critical (Figure 2 delivery)"
    ),
}

#: Rationale used for OS-baseline plans (the §4.2 comparison).
OS_BASELINE_RATIONALE = (
    "OS-managed: same task counts, placement left to the (modelled) "
    "kernel scheduler - the paper's baseline"
)

#: Reason strings the online rebalancer reports; kept here so dynamic
#: reconfiguration and static planning quote the same decision logic.
REBALANCE_REASONS = {
    "recv": "recv belongs on NIC socket (Obs 1/4)",
    "decompress": "decompress off the NIC socket (Obs 3)",
    "imbalance": "load imbalance",
}


def rationale_for(kind: StageKind, *, numa_aware: bool = True) -> str:
    """The one-line placement rationale for one stage kind."""
    if not numa_aware:
        return OS_BASELINE_RATIONALE
    return RATIONALE[kind]


def recv_sockets(machine: MachineSpec) -> list[int]:
    """Sockets receive threads belong on: the streaming NIC's domain."""
    return [machine.nic_socket()]


def decompress_sockets(machine: MachineSpec) -> list[int]:
    """Sockets decompression belongs on: every non-NIC domain, or the
    NIC domain itself on single-socket machines (no choice)."""
    nic = machine.nic_socket()
    other = [s for s in range(machine.num_sockets) if s != nic]
    return other or [nic]
