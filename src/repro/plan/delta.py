"""Typed plan deltas: the grammar of a re-plan.

A :class:`PlanDelta` is a small, serializable edit script over a
:class:`~repro.plan.ir.PipelinePlan` — the representation shared by the
autotuning controller (:mod:`repro.control`), which *proposes* deltas
from observed signals, and ``repro-plan diff --format json``, which
*derives* them by comparing two plan files.  One grammar both ways
means a controller decision can be replayed offline by applying the
emitted delta to the static plan, and a human diff can be fed back to
a runtime verbatim.

The grammar covers the knobs a running pipeline can absorb without a
restart:

- :class:`ScaleStage` — change a stage's worker count;
- :class:`MoveStage` — re-home a stage onto different NUMA domains;
- :class:`SetBatchFrames` — retune the chunks-per-handoff batch knob;
- :class:`SetCodec` — swap the codec policy node.

Drift the grammar cannot express (workload shape, machine sets, fault
specs, ...) is carried as free-form ``notes`` — informational for
diffs, never applicable.  :func:`apply_delta` applies the ops
immutably, then re-runs the standard ``validate -> normalize`` passes
so a bad delta surfaces diagnostics exactly like a bad plan file.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.core.config import StageKind
from repro.core.placement import PlacementSpec
from repro.plan.ir import CodecNode, PipelinePlan, StageNode, StreamNode
from repro.plan.passes import PlanResult, run_passes
from repro.util.errors import ValidationError

__all__ = [
    "DeltaOp",
    "MoveStage",
    "PlanDelta",
    "ScaleStage",
    "SetBatchFrames",
    "SetCodec",
    "apply_delta",
    "delta_from_dict",
    "delta_to_dict",
    "plan_delta",
]


# ---------------------------------------------------------------------------
# the ops
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScaleStage:
    """Set stage ``stage`` of stream ``stream`` to ``count`` workers."""

    stream: str
    stage: str
    count: int

    op = "scale_stage"

    def describe(self) -> str:
        return f"scale {self.stream}/{self.stage} -> x{self.count}"


@dataclass(frozen=True)
class MoveStage:
    """Re-home stage ``stage`` of stream ``stream`` onto ``sockets``."""

    stream: str
    stage: str
    sockets: tuple[int, ...]

    op = "move_stage"

    def describe(self) -> str:
        socks = "&".join(map(str, self.sockets))
        return f"move {self.stream}/{self.stage} -> N{socks}"


@dataclass(frozen=True)
class SetBatchFrames:
    """Set stream ``stream``'s ``batch_frames`` knob."""

    stream: str
    batch_frames: int

    op = "set_batch_frames"

    def describe(self) -> str:
        return f"batch_frames {self.stream} -> {self.batch_frames}"


@dataclass(frozen=True)
class SetCodec:
    """Swap the plan's codec policy node (spec-string form)."""

    codec: str

    op = "set_codec"

    def describe(self) -> str:
        return f"codec -> {self.codec}"


DeltaOp = ScaleStage | MoveStage | SetBatchFrames | SetCodec

_OP_TYPES: dict[str, type] = {
    t.op: t for t in (ScaleStage, MoveStage, SetBatchFrames, SetCodec)
}


@dataclass(frozen=True)
class PlanDelta:
    """An ordered edit script plus the reasoning that produced it."""

    ops: tuple[DeltaOp, ...] = ()
    #: Why the delta was proposed (controller diagnosis or "plan diff").
    reason: str = ""
    #: Drift the op grammar can't express — informational only.
    notes: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.ops or self.notes)

    def describe(self) -> str:
        parts = [op.describe() for op in self.ops]
        parts.extend(f"note: {n}" for n in self.notes)
        body = "; ".join(parts) if parts else "empty"
        why = f" [{self.reason}]" if self.reason else ""
        return f"delta({body}){why}"


# ---------------------------------------------------------------------------
# applying
# ---------------------------------------------------------------------------


def _edit_stage(
    plan: PipelinePlan,
    stream: str,
    stage: str,
    edit: "Any",
) -> PipelinePlan:
    """Rewrite one stage node of one stream immutably."""
    try:
        kind = StageKind(stage)
    except ValueError:
        raise ValidationError(f"unknown stage kind {stage!r}") from None
    snode = plan.stream(stream)  # KeyError -> caller converts
    node = snode.stage(kind)
    if node is None:
        raise ValidationError(
            f"stream {stream!r} has no {stage} stage to edit"
        )
    stages = tuple(
        edit(n) if n.kind == kind else n for n in snode.stages
    )
    streams = [
        replace(s, stages=stages) if s.stream_id == stream else s
        for s in plan.streams
    ]
    return plan.with_streams(streams)


def _apply_op(plan: PipelinePlan, op: DeltaOp) -> PipelinePlan:
    if isinstance(op, ScaleStage):
        return _edit_stage(
            plan,
            op.stream,
            op.stage,
            lambda n: replace(n, count=op.count),
        )
    if isinstance(op, MoveStage):
        if not op.sockets:
            raise ValidationError("move_stage needs >= 1 socket")
        spec = (
            PlacementSpec.socket(op.sockets[0])
            if len(op.sockets) == 1
            else PlacementSpec.split(op.sockets)
        )
        return _edit_stage(
            plan,
            op.stream,
            op.stage,
            lambda n: replace(n, placement=spec, rationale="controller move"),
        )
    if isinstance(op, SetBatchFrames):
        if op.stream not in plan.stream_ids():
            raise KeyError(f"no stream {op.stream!r} in plan {plan.name!r}")
        streams = [
            replace(s, batch_frames=op.batch_frames)
            if s.stream_id == op.stream
            else s
            for s in plan.streams
        ]
        return plan.with_streams(streams)
    if isinstance(op, SetCodec):
        return replace(plan, codec=CodecNode.from_spec(op.codec))
    raise ValidationError(f"unknown delta op {op!r}")  # pragma: no cover


def apply_delta(
    plan: PipelinePlan,
    delta: PlanDelta,
    *,
    strict: bool = True,
    telemetry: "Any | None" = None,
) -> PlanResult:
    """Apply ``delta`` to ``plan`` and re-run the standard passes.

    Ops apply in order, immutably; the result goes through the same
    ``validate -> normalize`` pipeline a freshly loaded plan file does,
    so an out-of-range count or an unknown socket surfaces as plan
    diagnostics.  ``strict=True`` raises on errors (the CLI path);
    ``strict=False`` returns the diagnostics for the caller — the
    controller uses this to turn a bad proposal into a
    ``replan_rejected`` event instead of a crash.  Notes never apply;
    they ride along for reporting.
    """
    out = plan
    try:
        for op in delta.ops:
            out = _apply_op(out, op)
    except KeyError as exc:
        raise ValidationError(f"delta references {exc.args[0]}") from exc
    return run_passes(out, telemetry=telemetry, strict=strict)


# ---------------------------------------------------------------------------
# (de)serialization — the schema `repro-plan diff --format json` emits
# ---------------------------------------------------------------------------


def _op_to_dict(op: DeltaOp) -> dict[str, Any]:
    out: dict[str, Any] = {"op": op.op}
    if isinstance(op, ScaleStage):
        out.update(stream=op.stream, stage=op.stage, count=op.count)
    elif isinstance(op, MoveStage):
        out.update(
            stream=op.stream, stage=op.stage, sockets=list(op.sockets)
        )
    elif isinstance(op, SetBatchFrames):
        out.update(stream=op.stream, batch_frames=op.batch_frames)
    elif isinstance(op, SetCodec):
        out.update(codec=op.codec)
    return out


def delta_to_dict(delta: PlanDelta) -> dict[str, Any]:
    """Encode a delta as the shared JSON schema."""
    doc: dict[str, Any] = {"ops": [_op_to_dict(op) for op in delta.ops]}
    if delta.reason:
        doc["reason"] = delta.reason
    if delta.notes:
        doc["notes"] = list(delta.notes)
    return doc


def _op_from_dict(d: dict[str, Any]) -> DeltaOp:
    kind = d.get("op")
    cls = _OP_TYPES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ValidationError(f"unknown delta op {kind!r}")
    fields = {k: v for k, v in d.items() if k != "op"}
    if cls is MoveStage:
        fields["sockets"] = tuple(fields.get("sockets", ()))
    try:
        return cls(**fields)
    except TypeError as exc:
        raise ValidationError(f"bad {kind} op: {exc}") from exc


def delta_from_dict(doc: dict[str, Any]) -> PlanDelta:
    """Decode a delta from the shared JSON schema."""
    unknown = set(doc) - {"ops", "reason", "notes"}
    if unknown:
        raise ValidationError(f"unknown delta keys: {sorted(unknown)}")
    return PlanDelta(
        ops=tuple(_op_from_dict(d) for d in doc.get("ops", [])),
        reason=str(doc.get("reason", "")),
        notes=tuple(str(n) for n in doc.get("notes", ())),
    )


# ---------------------------------------------------------------------------
# structured diff — plan_delta(a, b) such that apply(a, delta) ~ b
# ---------------------------------------------------------------------------


def _placement_sockets(node: StageNode) -> tuple[int, ...] | None:
    """The socket set a placement pins to, or None when not socket-kind."""
    if node.placement.kind in ("socket", "sockets"):
        return node.placement.sockets
    return None


def _stream_ops(
    a: StreamNode, b: StreamNode
) -> tuple[list[DeltaOp], list[str]]:
    ops: list[DeltaOp] = []
    notes: list[str] = []
    sid = a.stream_id
    if a.batch_frames != b.batch_frames:
        ops.append(SetBatchFrames(sid, b.batch_frames))
    a_stages = {n.kind: n for n in a.stages}
    b_stages = {n.kind: n for n in b.stages}
    for kind in sorted(set(a_stages) | set(b_stages), key=lambda k: k.value):
        an, bn = a_stages.get(kind), b_stages.get(kind)
        if an is None or bn is None:
            which = "first" if bn is None else "second"
            notes.append(
                f"stream {sid!r} stage {kind.value}: only in {which} plan"
            )
            continue
        if an.count != bn.count:
            ops.append(ScaleStage(sid, kind.value, bn.count))
        if an.placement != bn.placement:
            target = _placement_sockets(bn)
            if target is not None:
                ops.append(MoveStage(sid, kind.value, target))
            else:
                notes.append(
                    f"stream {sid!r} stage {kind.value}: placement "
                    f"{an.placement.describe()} != "
                    f"{bn.placement.describe()} (not socket-addressable)"
                )
    for attr in (
        "sender",
        "receiver",
        "path",
        "num_chunks",
        "chunk_bytes",
        "ratio_mean",
        "ratio_sigma",
        "source_socket",
        "queue_capacity",
        "micro",
    ):
        av, bv = getattr(a, attr), getattr(b, attr)
        if av != bv:
            notes.append(f"stream {sid!r} {attr}: {av!r} != {bv!r}")
    if tuple(a.faults) != tuple(b.faults):
        notes.append(f"stream {sid!r}: fault specs differ")
    return ops, notes


def plan_delta(
    a: PipelinePlan, b: PipelinePlan, *, reason: str = "plan diff"
) -> PlanDelta:
    """The structured delta taking plan ``a`` toward plan ``b``.

    Expressible drift (stage counts, socket placements, batch_frames,
    codec node) becomes ops; everything else becomes notes.  An empty
    delta (no ops, no notes) means the plans agree on every compared
    axis.
    """
    ops: list[DeltaOp] = []
    notes: list[str] = []
    if a.codec != b.codec:
        ops.append(SetCodec(str(b.codec.spec())))
    a_ids, b_ids = set(a.stream_ids()), set(b.stream_ids())
    for sid in sorted(a_ids - b_ids):
        notes.append(f"stream {sid!r}: only in first plan")
    for sid in sorted(b_ids - a_ids):
        notes.append(f"stream {sid!r}: only in second plan")
    for sid in sorted(a_ids & b_ids):
        s_ops, s_notes = _stream_ops(a.stream(sid), b.stream(sid))
        ops.extend(s_ops)
        notes.extend(s_notes)
    for attr, label in (
        ("name", "name"),
        ("policy", "policy"),
        ("seed", "seed"),
        ("warmup_chunks", "warmup_chunks"),
        ("csw_penalty", "csw_penalty"),
        ("wake_affinity", "wake_affinity"),
        ("migrate_prob", "migrate_prob"),
        ("spill_threshold", "spill_threshold"),
        ("max_sim_time", "max_sim_time"),
    ):
        av, bv = getattr(a, attr), getattr(b, attr)
        if av != bv:
            notes.append(f"{label}: {av!r} != {bv!r}")
    if a.cost != b.cost:
        notes.append("cost model differs")
    if set(a.machines) != set(b.machines):
        notes.append(
            f"machines: {sorted(a.machines)} != {sorted(b.machines)}"
        )
    if set(a.paths) != set(b.paths):
        notes.append(f"paths: {sorted(a.paths)} != {sorted(b.paths)}")
    if a.execution != b.execution:
        notes.append(
            f"execution: {a.execution.describe()} != "
            f"{b.execution.describe()}"
        )
    if a.control != b.control:
        notes.append(
            f"control: {a.control.describe()} != {b.control.describe()}"
        )
    return PlanDelta(ops=tuple(ops), reason=reason, notes=tuple(notes))
