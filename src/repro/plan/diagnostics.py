"""Structured plan diagnostics: every violation, not just the first.

The paper's configuration generator is a compiler for placements, and a
compiler that stops at the first error is miserable to use: fixing one
unknown machine only to discover the next placement is off-socket costs
a full regenerate-and-rerun cycle per mistake.  :class:`Diagnostics`
is the collector every validation pass writes into — each entry carries
the stream and stage it refers to, so a 4-stream plan with three bad
placements reports all three, located.

:meth:`Diagnostics.raise_if_errors` preserves the historical raising
contract (``ScenarioConfig.validate()`` and the planner both use it):
the raised :class:`~repro.util.errors.ConfigurationError` message lists
every error, one per line, so ``pytest.raises(match=...)`` checks
against any single message keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.errors import ConfigurationError

#: Severity levels, in increasing order of badness.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding, located in the plan."""

    severity: str
    #: Stable machine-readable code, e.g. ``"unknown-machine"``.
    code: str
    #: Human-readable message (the historical exception text).
    message: str
    #: Stream the finding refers to ("" for plan-level findings).
    stream: str = ""
    #: Stage within the stream ("" when not stage-specific).
    stage: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def location(self) -> str:
        """Dotted ``stream.stage`` locator ("plan" for global findings)."""
        if not self.stream:
            return "plan"
        return f"{self.stream}.{self.stage}" if self.stage else self.stream

    def render(self) -> str:
        return f"[{self.severity}] {self.location()}: {self.message} ({self.code})"


class Diagnostics:
    """Ordered collection of :class:`Diagnostic` findings."""

    def __init__(self) -> None:
        self._items: list[Diagnostic] = []

    # -- collection ------------------------------------------------------

    def add(self, diag: Diagnostic) -> None:
        self._items.append(diag)

    def error(
        self, code: str, message: str, *, stream: str = "", stage: str = ""
    ) -> None:
        self.add(Diagnostic("error", code, message, stream, stage))

    def warning(
        self, code: str, message: str, *, stream: str = "", stage: str = ""
    ) -> None:
        self.add(Diagnostic("warning", code, message, stream, stage))

    def info(
        self, code: str, message: str, *, stream: str = "", stage: str = ""
    ) -> None:
        self.add(Diagnostic("info", code, message, stream, stage))

    def extend(self, other: "Diagnostics") -> None:
        self._items.extend(other._items)

    # -- inspection ------------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *errors* were collected (warnings are fine)."""
        return not self.errors

    def counts(self) -> dict[str, int]:
        """``{severity: count}`` over all findings."""
        out = {s: 0 for s in SEVERITIES}
        for d in self._items:
            out[d.severity] += 1
        return out

    def render(self) -> str:
        """All findings, one per line (empty string when clean)."""
        return "\n".join(d.render() for d in self._items)

    # -- compatibility bridge --------------------------------------------

    def raise_if_errors(self) -> None:
        """Raise one :class:`ConfigurationError` listing every error.

        The message is each error's historical text joined by newlines,
        so single-error callers see exactly the message they always did
        and multi-error callers finally see the whole list.
        """
        errs = self.errors
        if not errs:
            return
        raise ConfigurationError("\n".join(e.message for e in errs))
