"""``repro-plan diff``: plan-vs-plan drift and sim-vs-live parity.

Two comparisons live here:

- :func:`diff_plans` reports where two plans disagree (placements,
  counts, workload shape, faults) — the tool for "what changed between
  these two generated configs?".
- :func:`substrate_drift` holds the two lowerings to each other: lower
  one plan to the simulator's scenario, lift that back, and check its
  affinity map, stage counts, and fault specs against what the live
  lowering produced.  An empty report is the acceptance bar — the two
  substrates executing one plan must agree on every placement.
"""

from __future__ import annotations

from repro.plan.ir import PipelinePlan, StreamNode


def diff_plans(a: PipelinePlan, b: PipelinePlan) -> list[str]:
    """Human-readable drift between two plans (empty when identical)."""
    out: list[str] = []
    if a.name != b.name:
        out.append(f"name: {a.name!r} != {b.name!r}")
    if a.policy != b.policy:
        out.append(f"policy: {a.policy} != {b.policy}")
    for attr in (
        "seed",
        "warmup_chunks",
        "csw_penalty",
        "wake_affinity",
        "migrate_prob",
        "spill_threshold",
        "max_sim_time",
    ):
        av, bv = getattr(a, attr), getattr(b, attr)
        if av != bv:
            out.append(f"{attr}: {av} != {bv}")
    if a.cost != b.cost:
        out.append("cost model differs")
    if set(a.machines) != set(b.machines):
        out.append(
            f"machines: {sorted(a.machines)} != {sorted(b.machines)}"
        )
    if set(a.paths) != set(b.paths):
        out.append(f"paths: {sorted(a.paths)} != {sorted(b.paths)}")
    if a.execution != b.execution:
        out.append(
            f"execution: {a.execution.describe()} != "
            f"{b.execution.describe()}"
        )
    if a.codec != b.codec:
        out.append(f"codec: {a.codec.describe()} != {b.codec.describe()}")
    if a.control != b.control:
        out.append(
            f"control: {a.control.describe()} != {b.control.describe()}"
        )

    a_ids, b_ids = set(a.stream_ids()), set(b.stream_ids())
    for sid in sorted(a_ids - b_ids):
        out.append(f"stream {sid!r}: only in first plan")
    for sid in sorted(b_ids - a_ids):
        out.append(f"stream {sid!r}: only in second plan")
    for sid in sorted(a_ids & b_ids):
        out.extend(_diff_streams(a.stream(sid), b.stream(sid)))
    return out


def _diff_streams(a: StreamNode, b: StreamNode) -> list[str]:
    out: list[str] = []
    sid = a.stream_id
    for attr in (
        "sender",
        "receiver",
        "path",
        "num_chunks",
        "chunk_bytes",
        "ratio_mean",
        "ratio_sigma",
        "source_socket",
        "queue_capacity",
        "batch_frames",
        "micro",
    ):
        av, bv = getattr(a, attr), getattr(b, attr)
        if av != bv:
            out.append(f"stream {sid!r} {attr}: {av!r} != {bv!r}")
    a_stages = {n.kind: n for n in a.stages}
    b_stages = {n.kind: n for n in b.stages}
    for kind in sorted(
        set(a_stages) | set(b_stages), key=lambda k: k.value
    ):
        an, bn = a_stages.get(kind), b_stages.get(kind)
        if an is None or bn is None:
            which = "first" if bn is None else "second"
            out.append(
                f"stream {sid!r} stage {kind.value}: only in {which} plan"
            )
            continue
        if an.count != bn.count:
            out.append(
                f"stream {sid!r} stage {kind.value}: "
                f"count {an.count} != {bn.count}"
            )
        if an.placement != bn.placement:
            out.append(
                f"stream {sid!r} stage {kind.value}: placement "
                f"{an.placement.describe()} != {bn.placement.describe()}"
            )
    if tuple(a.faults) != tuple(b.faults):
        out.append(f"stream {sid!r}: fault specs differ")
    return out


def substrate_drift(
    plan: PipelinePlan, *, host_cpus: int | None = None
) -> list[str]:
    """Placement drift between the sim and live lowerings of one plan.

    Lowers the plan to the simulator's scenario, lifts each lowered
    stream back into the IR, and maps its placements through the same
    host-CPU folding the live lowering uses; any disagreement with the
    live lowering's affinity map, stage counts, or fault specs is a
    lowering bug and gets reported.  Empty list == perfect parity.
    """
    from repro.plan.ingest import stream_from_config
    from repro.plan.lower import lower_live, lower_sim, stream_affinity

    scenario = lower_sim(plan)
    out: list[str] = []
    for sim_cfg in scenario.streams:
        sid = sim_cfg.stream_id
        live = lower_live(plan, sid, host_cpus=host_cpus)
        lifted = stream_from_config(sim_cfg)
        sender = scenario.machines[sim_cfg.sender]
        receiver = scenario.machines[sim_cfg.receiver]
        sim_affinity = stream_affinity(
            lifted, sender, receiver, host_cpus=host_cpus
        )
        for stage in sorted(set(sim_affinity) | set(live.affinity)):
            sim_cpus = sim_affinity.get(stage)
            live_cpus = live.affinity.get(stage)
            if sim_cpus != live_cpus:
                out.append(
                    f"stream {sid!r} stage {stage}: sim cpus "
                    f"{sim_cpus} != live cpus {live_cpus}"
                )
        sim_counts = {
            n.kind.value: n.count for n in lifted.stages_in_order()
        }
        if sim_counts != live.stage_counts:
            out.append(
                f"stream {sid!r}: stage counts {sim_counts} != "
                f"{live.stage_counts}"
            )
        if tuple(sim_cfg.faults) != live.faults:
            out.append(f"stream {sid!r}: fault specs differ across substrates")
    return out
