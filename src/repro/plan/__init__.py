"""repro.plan — the substrate-neutral pipeline plan IR and planner.

One :class:`PipelinePlan` describes a run; a pass pipeline
(``generate -> validate -> normalize -> lower``) turns it into what
either substrate executes — the simulator's
:class:`~repro.core.config.ScenarioConfig` via :func:`lower_sim`, or
the live pipeline's :class:`~repro.live.runtime.LiveConfig` plus CPU
affinity via :func:`lower_live`.  Validation collects *every*
violation as located diagnostics instead of raising at the first.

Exports resolve lazily: :mod:`repro.core.config` calls into this
package for diagnostics, so eager imports here would cycle.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    # ir
    "PipelinePlan": "repro.plan.ir",
    "StreamNode": "repro.plan.ir",
    "StageNode": "repro.plan.ir",
    "QueueEdge": "repro.plan.ir",
    "ExecutionNode": "repro.plan.ir",
    "CodecNode": "repro.plan.ir",
    "ControlNode": "repro.plan.ir",
    "TraceNode": "repro.plan.ir",
    "STAGE_ORDER": "repro.plan.ir",
    "POLICIES": "repro.plan.ir",
    # diagnostics
    "Diagnostic": "repro.plan.diagnostics",
    "Diagnostics": "repro.plan.diagnostics",
    # ingest
    "plan_from_scenario": "repro.plan.ingest",
    "stream_from_config": "repro.plan.ingest",
    # passes
    "Planner": "repro.plan.passes",
    "PlanPass": "repro.plan.passes",
    "PlanResult": "repro.plan.passes",
    "run_passes": "repro.plan.passes",
    "build_scenario": "repro.plan.passes",
    "build_live": "repro.plan.passes",
    "through_plan": "repro.plan.passes",
    # individual passes
    "validate_plan": "repro.plan.validate",
    "normalize_plan": "repro.plan.normalize",
    "derive_edges": "repro.plan.normalize",
    # lowering
    "lower_sim": "repro.plan.lower",
    "lower_live": "repro.plan.lower",
    "stream_affinity": "repro.plan.lower",
    "LiveLowering": "repro.plan.lower",
    "LIVE_STAGES": "repro.plan.lower",
    # explain / diff
    "explain_plan": "repro.plan.explain",
    "diff_plans": "repro.plan.diff",
    "substrate_drift": "repro.plan.diff",
    # delta (the re-plan grammar)
    "PlanDelta": "repro.plan.delta",
    "ScaleStage": "repro.plan.delta",
    "MoveStage": "repro.plan.delta",
    "SetBatchFrames": "repro.plan.delta",
    "SetCodec": "repro.plan.delta",
    "apply_delta": "repro.plan.delta",
    "plan_delta": "repro.plan.delta",
    "delta_to_dict": "repro.plan.delta",
    "delta_from_dict": "repro.plan.delta",
    # serialization (scenario format v3)
    "plan_to_dict": "repro.plan.serialize",
    "plan_from_dict": "repro.plan.serialize",
    "plan_to_json": "repro.plan.serialize",
    "plan_from_json": "repro.plan.serialize",
    "save_plan": "repro.plan.serialize",
    "load_plan": "repro.plan.serialize",
    "PLAN_VERSION": "repro.plan.serialize",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return __all__
