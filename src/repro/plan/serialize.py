"""Plan (de)serialization — scenario format v3.

A v3 document is a superset of the v2 scenario document: the same
machine/path/cost/stream encoding (reused from
:mod:`repro.core.serialize`), plus plan-level provenance (``policy``,
``metadata``) and per-stage ``rationale`` strings.  Older documents
stay loadable — :func:`plan_from_dict` accepts v1 and v2 by decoding
the scenario and lifting it, and :func:`repro.core.serialize.load_scenario`
accepts v3 by delegating here and lowering.  One file format, either
direction.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.config import StageKind
from repro.core.params import CostModel
from repro.core.serialize import (
    FORMAT,
    _cost_to_dict,
    _fault_from_dict,
    _fault_to_dict,
    _machine_from_dict,
    _machine_to_dict,
    _path_from_dict,
    _path_to_dict,
    _placement_from_dict,
    _placement_to_dict,
)
from repro.plan.ir import (
    STAGE_ORDER,
    CodecNode,
    ControlNode,
    TraceNode,
    ExecutionNode,
    PipelinePlan,
    QueueEdge,
    StageNode,
    StreamNode,
)
from repro.util.errors import ValidationError

#: v3 adds plan-level policy/metadata and per-stage rationale.
PLAN_VERSION = 3


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def plan_to_dict(plan: PipelinePlan) -> dict[str, Any]:
    """Encode a plan as a JSON-serializable v3 document.

    The ``execution`` and ``codec`` policy nodes are emitted only when
    they differ from the defaults — a plan that never opted into
    process mode or a non-default codec encodes byte-identically to
    one written before the nodes existed, keeping v3 files stable in
    both directions.
    """
    doc = {
        "format": FORMAT,
        "version": PLAN_VERSION,
        "name": plan.name,
        "policy": plan.policy,
        "metadata": dict(plan.metadata),
        "machines": {
            n: _machine_to_dict(m) for n, m in plan.machines.items()
        },
        "paths": {n: _path_to_dict(p) for n, p in plan.paths.items()},
        "streams": [_stream_to_dict(s) for s in plan.streams],
        "cost": _cost_to_dict(plan.cost),
        "seed": plan.seed,
        "warmup_chunks": plan.warmup_chunks,
        "csw_penalty": plan.csw_penalty,
        "wake_affinity": plan.wake_affinity,
        "migrate_prob": plan.migrate_prob,
        "spill_threshold": plan.spill_threshold,
        "max_sim_time": plan.max_sim_time,
    }
    if not plan.execution.is_default:
        doc["execution"] = _execution_to_dict(plan.execution)
    if not plan.codec.is_default:
        doc["codec"] = _codec_to_dict(plan.codec)
    if not plan.control.is_default:
        doc["control"] = _control_to_dict(plan.control)
    if not plan.trace.is_default:
        doc["trace"] = _trace_to_dict(plan.trace)
    return doc


def _codec_to_dict(node: CodecNode) -> dict[str, Any]:
    out: dict[str, Any] = {"name": node.name}
    if node.params:
        out["params"] = {
            k: list(v) if isinstance(v, tuple) else v for k, v in node.params
        }
    if node.allowed:
        out["allowed"] = list(node.allowed)
    if node.probe_interval:
        out["probe_interval"] = node.probe_interval
    return out


_CONTROL_FIELDS = (
    "enabled",
    "interval",
    "cooldown",
    "min_workers",
    "max_workers",
    "max_batch_frames",
    "scale_down_after",
)


def _control_to_dict(node: ControlNode) -> dict[str, Any]:
    default = ControlNode()
    return {
        name: getattr(node, name)
        for name in _CONTROL_FIELDS
        if getattr(node, name) != getattr(default, name)
    }


_TRACE_FIELDS = (
    "sample",
    "per_stream_cap",
)


def _trace_to_dict(node: TraceNode) -> dict[str, Any]:
    default = TraceNode()
    return {
        name: getattr(node, name)
        for name in _TRACE_FIELDS
        if getattr(node, name) != getattr(default, name)
    }


def _execution_to_dict(node: ExecutionNode) -> dict[str, Any]:
    out: dict[str, Any] = {"mode": node.mode}
    default = ExecutionNode()
    if node.domains != default.domains:
        out["domains"] = node.domains
    if node.ring_capacity != default.ring_capacity:
        out["ring_capacity"] = node.ring_capacity
    if node.ring_slot_bytes != default.ring_slot_bytes:
        out["ring_slot_bytes"] = node.ring_slot_bytes
    if node.receiver_mode != default.receiver_mode:
        out["receiver_mode"] = node.receiver_mode
    if node.receiver_shards != default.receiver_shards:
        out["receiver_shards"] = node.receiver_shards
    return out


def _stage_node_to_dict(node: StageNode) -> dict[str, Any]:
    out: dict[str, Any] = {
        "count": node.count,
        "placement": _placement_to_dict(node.placement),
    }
    if node.rationale:
        out["rationale"] = node.rationale
    return out


def _edge_to_dict(edge: QueueEdge) -> dict[str, Any]:
    out: dict[str, Any] = {
        "src": edge.src,
        "dst": edge.dst,
        "capacity": edge.capacity,
    }
    if edge.per_connection:
        out["per_connection"] = True
    return out


def _stream_to_dict(s: StreamNode) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "stream_id": s.stream_id,
        "sender": s.sender,
        "receiver": s.receiver,
        "path": s.path,
        "num_chunks": s.num_chunks,
        "chunk_bytes": s.chunk_bytes,
        "ratio_mean": s.ratio_mean,
        "ratio_sigma": s.ratio_sigma,
        "source_socket": s.source_socket,
        "queue_capacity": s.queue_capacity,
        "batch_frames": s.batch_frames,
        "micro": s.micro,
        "faults": [_fault_to_dict(f) for f in s.faults],
        "stages": {
            kind.value: (
                _stage_node_to_dict(node)
                if (node := s.stage(kind)) is not None
                else None
            )
            for kind in STAGE_ORDER
        },
    }
    if s.edges:
        doc["edges"] = [_edge_to_dict(e) for e in s.edges]
    return doc


def plan_to_json(plan: PipelinePlan, *, indent: int = 2) -> str:
    """Encode a plan as a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def save_plan(plan: PipelinePlan, path: str) -> None:
    """Write a plan file (scenario format v3)."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(plan_to_json(plan))
        f.write("\n")


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------

_KNOWN_KEYS = {
    "format", "version", "name", "policy", "metadata", "machines", "paths",
    "streams", "cost", "seed", "warmup_chunks", "csw_penalty",
    "wake_affinity", "migrate_prob", "spill_threshold", "max_sim_time",
    "execution", "codec", "control", "trace",
}


def plan_from_dict(doc: dict[str, Any]) -> PipelinePlan:
    """Decode a plan from any accepted document version.

    v3 documents decode natively; v1/v2 scenario documents are decoded
    by the scenario reader and lifted into the IR, so every historical
    file keeps loading through the plan layer.
    """
    if doc.get("format") != FORMAT:
        raise ValidationError(
            f"not a {FORMAT} document (format={doc.get('format')!r})"
        )
    version = doc.get("version")
    if version in (1, 2):
        from repro.core.serialize import scenario_from_dict
        from repro.plan.ingest import plan_from_scenario

        return plan_from_scenario(scenario_from_dict(doc))
    if version != PLAN_VERSION:
        raise ValidationError(
            f"unsupported scenario version {version!r}"
        )
    unknown = set(doc) - _KNOWN_KEYS
    if unknown:
        raise ValidationError(f"unknown plan keys: {sorted(unknown)}")
    policy = doc.get("policy", "manual")
    return PipelinePlan(
        name=doc["name"],
        machines={
            n: _machine_from_dict(d) for n, d in doc["machines"].items()
        },
        paths={n: _path_from_dict(d) for n, d in doc["paths"].items()},
        streams=[_stream_from_dict(d) for d in doc["streams"]],
        cost=CostModel(**doc["cost"]),
        seed=doc["seed"],
        warmup_chunks=doc["warmup_chunks"],
        csw_penalty=doc["csw_penalty"],
        wake_affinity=doc["wake_affinity"],
        migrate_prob=doc["migrate_prob"],
        spill_threshold=doc["spill_threshold"],
        max_sim_time=doc["max_sim_time"],
        policy=policy,
        metadata={str(k): str(v) for k, v in doc.get("metadata", {}).items()},
        execution=_execution_from_dict(doc.get("execution")),
        codec=_codec_from_dict(doc.get("codec")),
        control=_control_from_dict(doc.get("control")),
        trace=_trace_from_dict(doc.get("trace")),
    )


def _codec_from_dict(d: dict[str, Any] | None) -> CodecNode:
    if d is None:
        return CodecNode()
    unknown = set(d) - {"name", "params", "allowed", "probe_interval"}
    if unknown:
        raise ValidationError(f"unknown codec keys: {sorted(unknown)}")
    params = {
        str(k): tuple(v) if isinstance(v, list) else v
        for k, v in d.get("params", {}).items()
    }
    return CodecNode(
        name=d.get("name", "zlib"),
        params=tuple(sorted(params.items())),
        allowed=tuple(d.get("allowed", ())),
        probe_interval=d.get("probe_interval", 0),
    )


def _control_from_dict(d: dict[str, Any] | None) -> ControlNode:
    if d is None:
        return ControlNode()
    unknown = set(d) - set(_CONTROL_FIELDS)
    if unknown:
        raise ValidationError(f"unknown control keys: {sorted(unknown)}")
    default = ControlNode()
    return ControlNode(
        **{
            name: d.get(name, getattr(default, name))
            for name in _CONTROL_FIELDS
        }
    )


def _trace_from_dict(d: dict[str, Any] | None) -> TraceNode:
    if d is None:
        return TraceNode()
    unknown = set(d) - set(_TRACE_FIELDS)
    if unknown:
        raise ValidationError(f"unknown trace keys: {sorted(unknown)}")
    default = TraceNode()
    return TraceNode(
        **{
            name: d.get(name, getattr(default, name))
            for name in _TRACE_FIELDS
        }
    )


def _execution_from_dict(d: dict[str, Any] | None) -> ExecutionNode:
    if d is None:
        return ExecutionNode()
    default = ExecutionNode()
    return ExecutionNode(
        mode=d.get("mode", default.mode),
        domains=d.get("domains", default.domains),
        ring_capacity=d.get("ring_capacity", default.ring_capacity),
        ring_slot_bytes=d.get("ring_slot_bytes", default.ring_slot_bytes),
        receiver_mode=d.get("receiver_mode", default.receiver_mode),
        receiver_shards=d.get("receiver_shards", default.receiver_shards),
    )


def _stage_node_from_dict(
    kind: StageKind, d: dict[str, Any]
) -> StageNode:
    return StageNode(
        kind=kind,
        count=d["count"],
        placement=_placement_from_dict(d["placement"]),
        rationale=d.get("rationale", ""),
    )


def _edge_from_dict(d: dict[str, Any]) -> QueueEdge:
    return QueueEdge(
        src=d["src"],
        dst=d["dst"],
        capacity=d["capacity"],
        per_connection=d.get("per_connection", False),
    )


def _stream_from_dict(d: dict[str, Any]) -> StreamNode:
    stages_doc = d.get("stages", {})
    nodes = tuple(
        _stage_node_from_dict(kind, stage_doc)
        for kind in STAGE_ORDER
        if (stage_doc := stages_doc.get(kind.value)) is not None
    )
    return StreamNode(
        stream_id=d["stream_id"],
        sender=d["sender"],
        receiver=d["receiver"],
        path=d["path"],
        num_chunks=d["num_chunks"],
        chunk_bytes=d["chunk_bytes"],
        ratio_mean=d["ratio_mean"],
        ratio_sigma=d["ratio_sigma"],
        source_socket=d.get("source_socket"),
        queue_capacity=d["queue_capacity"],
        batch_frames=d.get("batch_frames", 1),
        micro=d.get("micro", False),
        faults=tuple(_fault_from_dict(f) for f in d.get("faults", [])),
        stages=nodes,
        edges=tuple(_edge_from_dict(e) for e in d.get("edges", [])),
    )


def plan_from_json(text: str) -> PipelinePlan:
    """Decode a plan from a JSON string (any accepted version)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"malformed plan JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ValidationError("plan JSON must be an object")
    return plan_from_dict(doc)


def load_plan(path: str) -> PipelinePlan:
    """Read a plan file (v1/v2 scenario files lift transparently)."""
    with open(path, encoding="utf-8") as f:
        return plan_from_json(f.read())
