"""``repro-plan explain``: render a plan with its placement rationale.

The paper presents placement as a chain of observations (§3, Obs 1-4);
a plan file presents it as bare core lists.  ``explain`` reconnects the
two: for every stage of every stream it prints the placement *and* the
decision that produced it, plus the derived queue edges, so a reader
can audit a plan against the paper without reverse-engineering socket
numbers.
"""

from __future__ import annotations

from repro.hw.topology import MachineSpec
from repro.plan.ir import PipelinePlan, StreamNode
from repro.util.errors import ValidationError


def _machine_line(name: str, m: MachineSpec) -> str:
    cores = "+".join(str(s.cores) for s in m.sockets)
    try:
        nic = m.primary_nic()
        nic_txt = (
            f"NIC {nic.name} ({nic.rate_gbps:g} Gb/s) "
            f"on socket {nic.attached_socket}"
        )
    except ValidationError:
        nic_txt = "no usable NIC"
    return f"  {name}: {m.num_sockets} sockets x {cores} cores, {nic_txt}"


def explain_stream(stream: StreamNode) -> list[str]:
    """The per-stage story of one stream, as report lines."""
    lines = [
        f"stream {stream.stream_id!r}: {stream.sender} -> {stream.receiver}"
        + (f" via {stream.path!r}" if stream.has_hop else " (local)")
    ]
    lines.append(
        f"  workload: {stream.num_chunks} chunks x "
        f"{stream.chunk_bytes / 1e6:.1f} MB, ratio {stream.ratio_mean:g}"
        + (" [micro]" if stream.micro else "")
    )
    for node in stream.stages_in_order():
        lines.append(f"  {node.describe()}")
        if node.rationale:
            lines.append(f"      why: {node.rationale}")
    if stream.edges:
        lines.append("  queues:")
        for edge in stream.edges:
            lines.append(f"    {edge.describe()}")
    for fault in stream.faults:
        lines.append(
            f"  fault: {fault.kind} {fault.stage}[{fault.thread_index}] "
            f"at chunk {fault.at_chunk} for {fault.duration:g}s"
        )
    return lines


def explain_plan(plan: PipelinePlan) -> str:
    """The full plan, annotated with the §3 decision logic."""
    lines = [
        f"plan {plan.name!r}  policy={plan.policy}  seed={plan.seed}",
    ]
    if plan.metadata:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(plan.metadata.items()))
        lines.append(f"  provenance: {meta}")
    lines.append("machines:")
    for name, machine in plan.machines.items():
        lines.append(_machine_line(name, machine))
    for stream in plan.streams:
        lines.append("")
        lines.extend(explain_stream(stream))
    return "\n".join(lines)
