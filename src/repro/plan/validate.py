"""The validation pass: cross-check a plan, collecting every violation.

Replaces the first-error-wins semantics of the historical
``ScenarioConfig.validate()`` (which now routes here): each finding is
a located :class:`~repro.plan.diagnostics.Diagnostic` carrying the
stream and stage it refers to, so a plan with three bad placements
reports all three in one pass.

Error message texts are kept byte-compatible with the exceptions the
config layer used to raise — callers that matched on them keep working.
"""

from __future__ import annotations

from repro.core.config import StageKind
from repro.hw.topology import MachineSpec
from repro.plan.diagnostics import Diagnostics
from repro.plan.ir import PipelinePlan, StageNode, StreamNode
from repro.util.errors import ValidationError


def validate_plan(plan: PipelinePlan) -> Diagnostics:
    """Cross-check stream references and placements against machines."""
    diags = Diagnostics()
    if not plan.streams:
        diags.error(
            "no-streams", f"scenario {plan.name!r} has no streams"
        )
    ids = [s.stream_id for s in plan.streams]
    if len(set(ids)) != len(ids):
        diags.error(
            "duplicate-streams", f"duplicate stream ids in {plan.name!r}"
        )
    _validate_execution(plan, diags)
    _validate_codec(plan, diags)
    _validate_control(plan, diags)
    _validate_trace(plan, diags)
    for stream in plan.streams:
        _validate_stream(plan, stream, diags)
    return diags


def _validate_execution(plan: PipelinePlan, diags: Diagnostics) -> None:
    """The execution policy node (permissive IR, checked here)."""
    ex = plan.execution
    if ex.mode not in ("thread", "process"):
        diags.error(
            "bad-execution",
            f"execution mode must be 'thread' or 'process', not {ex.mode!r}",
        )
    if ex.domains < 0:
        diags.error("bad-execution", "execution domains must be >= 0")
    if ex.ring_capacity < 1:
        diags.error("bad-execution", "ring_capacity must be >= 1")
    if ex.ring_slot_bytes < 64:
        diags.error(
            "bad-execution", "ring_slot_bytes must be >= 64 bytes"
        )
    if ex.receiver_mode not in ("eventloop", "threads"):
        diags.error(
            "bad-execution",
            "receiver_mode must be 'eventloop' or 'threads', "
            f"not {ex.receiver_mode!r}",
        )
    if ex.receiver_shards < 0:
        diags.error("bad-execution", "receiver_shards must be >= 0")


def _validate_codec(plan: PipelinePlan, diags: Diagnostics) -> None:
    """The codec policy node: name, params, and adaptive knobs must
    resolve to a constructible codec (the IR itself is permissive)."""
    node = plan.codec
    if not node.is_adaptive and (node.allowed or node.probe_interval):
        diags.error(
            "bad-codec",
            "allowed/probe_interval only apply to the adaptive codec, "
            f"not {node.name!r}",
        )
        return
    try:
        node.spec().create()
    except ValidationError as exc:
        diags.error("bad-codec", f"codec policy: {exc}")


def _validate_control(plan: PipelinePlan, diags: Diagnostics) -> None:
    """The autotuning policy node (permissive IR, checked here)."""
    c = plan.control
    if c.interval <= 0:
        diags.error("bad-control", "control interval must be > 0")
    if c.cooldown < 0:
        diags.error("bad-control", "control cooldown must be >= 0")
    if c.min_workers < 1:
        diags.error("bad-control", "control min_workers must be >= 1")
    if c.max_workers < c.min_workers:
        diags.error(
            "bad-control",
            "control max_workers must be >= min_workers",
        )
    if c.max_batch_frames < 1:
        diags.error("bad-control", "control max_batch_frames must be >= 1")
    if c.scale_down_after < 0:
        diags.error("bad-control", "control scale_down_after must be >= 0")


def _validate_trace(plan: PipelinePlan, diags: Diagnostics) -> None:
    """The flow-tracing policy node (permissive IR, checked here)."""
    t = plan.trace
    if t.sample < 0:
        diags.error("bad-trace", "trace sample must be >= 0")
    if t.per_stream_cap < 0:
        diags.error("bad-trace", "trace per_stream_cap must be >= 0")
    if t.per_stream_cap and not t.sample:
        diags.error(
            "bad-trace",
            "trace per_stream_cap without a sample rate has no effect",
        )


def _validate_stream(
    plan: PipelinePlan, s: StreamNode, diags: Diagnostics
) -> None:
    sid = s.stream_id
    if not s.stages:
        diags.error("no-stages", f"stream {sid!r} has no stages", stream=sid)

    _validate_workload(s, diags)

    machines: dict[str, MachineSpec | None] = {}
    for role, mname in (("sender", s.sender), ("receiver", s.receiver)):
        machine = plan.machines.get(mname)
        machines[role] = machine
        if machine is None:
            diags.error(
                "unknown-machine",
                f"stream {sid!r}: unknown {role} machine {mname!r}",
                stream=sid,
            )

    send = s.stage(StageKind.SEND)
    recv = s.stage(StageKind.RECV)
    if (send is None) != (recv is None):
        diags.error(
            "unpaired-hop",
            f"stream {sid!r}: send and recv stages must both "
            "be present (a network hop) or both absent (local pipeline)",
            stream=sid,
        )
    if send is not None and s.path not in plan.paths:
        diags.error(
            "unknown-path",
            f"stream {sid!r}: unknown path {s.path!r}",
            stream=sid,
        )
    if send is not None and recv is not None and send.count != recv.count:
        diags.error(
            "unpaired-connections",
            f"stream {sid!r}: send count {send.count} != "
            f"recv count {recv.count} (threads pair into TCP "
            "connections, §3.4)",
            stream=sid,
        )

    for node in s.stages:
        machine = machines["sender" if node.kind.sender_side else "receiver"]
        if machine is not None:
            _validate_placement(sid, node, machine, diags)

    sender = machines["sender"]
    if s.source_socket is not None and sender is not None:
        try:
            sender._check_socket(s.source_socket)
        except ValidationError as exc:
            diags.error(
                "bad-source-socket",
                f"stream {sid!r}: source_socket: {exc}",
                stream=sid,
            )


def _validate_workload(s: StreamNode, diags: Diagnostics) -> None:
    """Workload-shape constraints (the StreamConfig construction rules,
    re-checked here because the IR is permissive by design)."""
    sid = s.stream_id
    if s.num_chunks < 1:
        diags.error("bad-workload", "num_chunks must be >= 1", stream=sid)
    if s.chunk_bytes < 1:
        diags.error("bad-workload", "chunk_bytes must be >= 1", stream=sid)
    if s.ratio_mean <= 0:
        diags.error("bad-workload", "ratio_mean must be > 0", stream=sid)
    if s.queue_capacity < 1:
        diags.error(
            "bad-workload", "queue_capacity must be >= 1", stream=sid
        )
    if s.batch_frames < 1:
        diags.error(
            "bad-workload", "batch_frames must be >= 1", stream=sid
        )


def _validate_placement(
    sid: str, node: StageNode, machine: MachineSpec, diags: Diagnostics
) -> None:
    stage_name = node.kind.value
    if node.count < 1:
        diags.error(
            "bad-stage-count",
            f"stream {sid!r} stage {stage_name}: stage count must be >= 1",
            stream=sid,
            stage=stage_name,
        )
    p = node.placement
    try:
        for sock in p.sockets:
            machine._check_socket(sock)
        for core in p.cores:
            machine._check_socket(core.socket)
            if core.index >= machine.sockets[core.socket].cores:
                raise ValidationError(
                    f"core {core} does not exist on {machine.name!r}"
                )
        if p.hint_socket is not None:
            machine._check_socket(p.hint_socket)
    except ValidationError as exc:
        diags.error(
            "bad-placement",
            f"stream {sid!r} stage {stage_name}: {exc}",
            stream=sid,
            stage=stage_name,
        )
        return

    # Obs 2's context-switch cliff: more than ~2 threads per distinct
    # core only adds switching overhead.  Advisory, not fatal.
    if p.kind == "cores" and p.cores:
        distinct = len(set(p.cores))
        if node.count > 2 * distinct:
            diags.warning(
                "oversubscribed",
                f"stream {sid!r} stage {stage_name}: {node.count} threads "
                f"on {distinct} cores exceeds ~2 threads/core (Obs 2)",
                stream=sid,
                stage=stage_name,
            )
