"""The normalization pass: canonical stage order and derived edges.

Normalization never changes *what* a plan means — placements and counts
pass through untouched (thread i still lands on ``cores[i % len]``) —
it only makes the plan self-describing:

- stages are reordered into canonical pipeline order (Figure 2), so
  hand-built and generated plans serialize identically;
- the bounded queue edges between consecutive stages are derived and
  attached (``source -> first`` plus one edge per adjacent pair; the
  send->recv leg is flagged per-connection, matching the runtime's
  socket/arrival stores of capacity 2);
- stages missing a rationale get the stock §3 one, so ``explain`` and
  plan files always have a story to tell.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import StageKind
from repro.plan.ir import PipelinePlan, QueueEdge, StageNode, StreamNode
from repro.plan.rules import rationale_for

#: Capacity of the per-connection send->recv stores (see SimRuntime:
#: ``sockq``/``arrq`` are built with capacity 2).
WIRE_QUEUE_CAPACITY = 2


def derive_edges(stream: StreamNode) -> tuple[QueueEdge, ...]:
    """The bounded queues a runtime will build for this stream."""
    order = [n.kind for n in stream.stages_in_order()]
    if not order:
        return ()
    edges = [QueueEdge("source", order[0].value, stream.queue_capacity)]
    for prev, nxt in zip(order, order[1:]):
        if prev == StageKind.SEND and nxt == StageKind.RECV:
            edges.append(
                QueueEdge(
                    prev.value,
                    nxt.value,
                    WIRE_QUEUE_CAPACITY,
                    per_connection=True,
                )
            )
        else:
            edges.append(
                QueueEdge(prev.value, nxt.value, stream.queue_capacity)
            )
    return tuple(edges)


def _normalize_stage(node: StageNode, *, numa_aware: bool) -> StageNode:
    if node.rationale:
        return node
    numa = numa_aware and node.placement.kind != "os"
    return replace(node, rationale=rationale_for(node.kind, numa_aware=numa))


def normalize_plan(plan: PipelinePlan) -> PipelinePlan:
    """Return the canonical form of ``plan`` (input left untouched)."""
    numa_aware = plan.policy != "os_baseline"
    streams: list[StreamNode] = []
    for s in plan.streams:
        stages = tuple(
            _normalize_stage(n, numa_aware=numa_aware)
            for n in s.stages_in_order()
        )
        streams.append(replace(s, stages=stages, edges=derive_edges(s)))
    return plan.with_streams(streams)
