"""The lowering passes: one plan, two substrates.

``lower_sim`` emits the :class:`~repro.core.config.ScenarioConfig` the
discrete-event runtime executes; ``lower_live`` emits a
:class:`~repro.live.runtime.LiveConfig` plus per-stage CPU affinity for
the real-thread pipeline.  Both read the same
:class:`~repro.plan.ir.PipelinePlan`, which is what keeps the two
substrates from drifting: ``repro-plan diff --substrates`` holds them
to placement parity.

The live lowering owns the modulo host-mapping: modelled cores map
onto host CPUs by global
index modulo the host's CPU count, preserving the *grouping* (which
stages share cores, which are apart) even when the modelled machine is
bigger than this host.  Placement stays advisory on the live path
(DESIGN.md §2), but the grouping is the plan's signature.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import (
    FaultSpec,
    ScenarioConfig,
    StageConfig,
    StageKind,
    StreamConfig,
)
from repro.hw.topology import CoreId, MachineSpec
from repro.plan.ir import PipelinePlan, StreamNode
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.runtime import LiveConfig

#: live-pipeline stage names -> plan stage kinds.
LIVE_STAGES: dict[str, StageKind] = {
    "feed": StageKind.INGEST,
    "compress": StageKind.COMPRESS,
    "send": StageKind.SEND,
    "recv": StageKind.RECV,
    "decompress": StageKind.DECOMPRESS,
}


# ---------------------------------------------------------------------------
# sim lowering
# ---------------------------------------------------------------------------


def lower_sim(plan: PipelinePlan) -> ScenarioConfig:
    """Lower a plan to the simulator's executable scenario form.

    A non-default codec policy scales the cost model's compress and
    decompress rates (:meth:`CostModel.for_codec`) so the simulator
    prices the same codec the live substrate would run.  The default
    node keeps the calibrated rates untouched — they are tied to the
    paper's own microbenchmarks and stay the baseline.
    """
    cost = (
        plan.cost
        if plan.codec.is_default
        else plan.cost.for_codec(plan.codec.name)
    )
    return ScenarioConfig(
        name=plan.name,
        machines=dict(plan.machines),
        paths=dict(plan.paths),
        streams=[_lower_stream(s) for s in plan.streams],
        cost=cost,
        seed=plan.seed,
        warmup_chunks=plan.warmup_chunks,
        csw_penalty=plan.csw_penalty,
        wake_affinity=plan.wake_affinity,
        migrate_prob=plan.migrate_prob,
        spill_threshold=plan.spill_threshold,
        max_sim_time=plan.max_sim_time,
    )


def _lower_stream(s: StreamNode) -> StreamConfig:
    stages: dict[str, StageConfig] = {
        node.kind.value: StageConfig(node.count, node.placement)
        for node in s.stages_in_order()
    }
    return StreamConfig(
        stream_id=s.stream_id,
        sender=s.sender,
        receiver=s.receiver,
        path=s.path,
        num_chunks=s.num_chunks,
        chunk_bytes=s.chunk_bytes,
        ratio_mean=s.ratio_mean,
        ratio_sigma=s.ratio_sigma,
        source_socket=s.source_socket,
        queue_capacity=s.queue_capacity,
        batch_frames=s.batch_frames,
        micro=s.micro,
        faults=tuple(s.faults),
        **stages,
    )


# ---------------------------------------------------------------------------
# live lowering
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LiveLowering:
    """What the live substrate needs to execute one stream of a plan."""

    stream_id: str
    config: "LiveConfig"
    #: live stage name -> host CPU list (only pinnable stages present).
    affinity: dict[str, list[int]]
    #: The plan's fault specs, verbatim — same objects ``lower_sim``
    #: hands the simulator, so chaos scenarios read identically.
    faults: tuple[FaultSpec, ...]
    #: Plan-side thread counts per present stage (includes stages the
    #: live pipeline folds away, e.g. egest).
    stage_counts: dict[str, int]


def lower_live(
    plan: PipelinePlan,
    stream_id: str | None = None,
    *,
    codec: str | None = None,
    host_cpus: int | None = None,
) -> LiveLowering:
    """Lower one stream of a plan to the live pipeline's config.

    The live pipeline runs one stream per process; multi-stream plans
    must name which stream with ``stream_id``.  ``codec=None`` (the
    default) routes the plan's own codec policy node into the config
    as a spec string; an explicit spec string overrides the plan.
    """
    from repro.live.runtime import LiveConfig

    if stream_id is None:
        if len(plan.streams) != 1:
            raise ConfigurationError(
                f"plan {plan.name!r} has {len(plan.streams)} streams; "
                "pass stream_id to choose one for the live lowering"
            )
        stream = plan.streams[0]
    else:
        stream = plan.stream(stream_id)

    sender = plan.machines.get(stream.sender)
    receiver = plan.machines.get(stream.receiver)
    if sender is None or receiver is None:
        raise ConfigurationError(
            f"stream {stream.stream_id!r}: machines {stream.sender!r}/"
            f"{stream.receiver!r} must be in the plan to lower placements"
        )
    affinity = stream_affinity(
        stream, sender, receiver, host_cpus=host_cpus
    )

    def count(kind: StageKind, default: int = 1) -> int:
        node = stream.stage(kind)
        return node.count if node is not None else default

    execution = plan.execution
    config = LiveConfig(
        codec=codec if codec is not None else str(plan.codec.spec()),
        compress_threads=count(StageKind.COMPRESS),
        decompress_threads=count(StageKind.DECOMPRESS),
        connections=count(StageKind.SEND),
        queue_capacity=stream.queue_capacity,
        batch_frames=stream.batch_frames,
        affinity=affinity,
        execution_mode=execution.mode,
        process_domains=execution.domains,
        ring_capacity=execution.ring_capacity,
        ring_slot_bytes=execution.ring_slot_bytes,
        receiver_mode=execution.receiver_mode,
        receiver_shards=execution.receiver_shards,
        trace_sample=plan.trace.sample,
        trace_per_stream_cap=plan.trace.per_stream_cap,
    )
    return LiveLowering(
        stream_id=stream.stream_id,
        config=config,
        affinity=affinity,
        faults=tuple(stream.faults),
        stage_counts=stream.stage_counts(),
    )


def stream_affinity(
    stream: StreamNode,
    sender: MachineSpec,
    receiver: MachineSpec,
    *,
    host_cpus: int | None = None,
) -> dict[str, list[int]]:
    """Map one stream's placements to live-stage CPU hints.

    Only pinned/socket/split placements translate (OS-managed stages
    are left unpinned, which is exactly what they mean).  Modelled
    cores fold onto host CPUs by global index modulo the CPU count.
    """
    ncpu = host_cpus if host_cpus is not None else (os.cpu_count() or 1)
    if ncpu < 1:
        raise ConfigurationError("host reports no CPUs")
    out: dict[str, list[int]] = {}
    for live_name, kind in LIVE_STAGES.items():
        node = stream.stage(kind)
        if node is None or node.placement.kind == "os":
            continue
        machine = sender if kind.sender_side else receiver
        p = node.placement
        if p.kind == "cores":
            cores: list[CoreId] = list(p.cores)
        else:
            cores = [c for s in p.sockets for c in machine.cores_of(s)]
        cps = machine.sockets[0].cores
        cpus = sorted({c.global_index(cps) % ncpu for c in cores})
        if cpus:
            out[live_name] = cpus
    return out
