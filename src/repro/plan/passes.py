"""The pass-based planner: ``generate -> validate -> normalize -> lower``.

A pass is a named function ``(PipelinePlan, PassContext) -> PipelinePlan``.
The :class:`Planner` runs a pipeline of them, collecting diagnostics,
and — when a :class:`~repro.telemetry.Telemetry` is attached — times
each pass as a span named ``plan.<pass>`` and counts runs in the
``plan_passes_total`` metric family, so planning shows up in the same
traces and dashboards as the pipelines it plans.

Generation is a front-end, not a pass: the generator
(:class:`repro.core.generator.ConfigGenerator`) and the scenario lift
(:func:`repro.plan.ingest.plan_from_scenario`) both *produce* the plan
the planner then runs over.  Lowering is the exit:
:func:`build_scenario` / :func:`build_live` bolt the matching lowering
onto the standard pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.plan.diagnostics import Diagnostics
from repro.plan.ir import PipelinePlan
from repro.plan.lower import LiveLowering, lower_live, lower_sim
from repro.plan.normalize import normalize_plan
from repro.plan.validate import validate_plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import ScenarioConfig
    from repro.telemetry.facade import Telemetry


@dataclass
class PassContext:
    """Shared state the passes read and write."""

    diagnostics: Diagnostics = field(default_factory=Diagnostics)
    telemetry: "Telemetry | None" = None


PassFn = Callable[[PipelinePlan, PassContext], PipelinePlan]


@dataclass(frozen=True)
class PlanPass:
    """One named transformation over the IR."""

    name: str
    fn: PassFn

    def run(self, plan: PipelinePlan, ctx: PassContext) -> PipelinePlan:
        return self.fn(plan, ctx)


def _validate(plan: PipelinePlan, ctx: PassContext) -> PipelinePlan:
    ctx.diagnostics.extend(validate_plan(plan))
    return plan


def _normalize(plan: PipelinePlan, ctx: PassContext) -> PipelinePlan:
    return normalize_plan(plan)


VALIDATE = PlanPass("validate", _validate)
NORMALIZE = PlanPass("normalize", _normalize)

#: The standard pipeline every entry point runs.
DEFAULT_PASSES: tuple[PlanPass, ...] = (VALIDATE, NORMALIZE)


@dataclass
class PlanResult:
    """A planner run: the transformed plan plus everything it found."""

    plan: PipelinePlan
    diagnostics: Diagnostics

    @property
    def ok(self) -> bool:
        return self.diagnostics.ok


class Planner:
    """Runs a pass pipeline over a plan.

    ``strict=True`` (default) raises one
    :class:`~repro.util.errors.ConfigurationError` listing *all*
    collected errors after the passes ran; ``strict=False`` returns the
    diagnostics for the caller to inspect (``repro-plan`` prints them).
    """

    def __init__(
        self,
        passes: tuple[PlanPass, ...] = DEFAULT_PASSES,
        *,
        telemetry: "Telemetry | None" = None,
        strict: bool = True,
    ) -> None:
        self.passes = passes
        self.telemetry = telemetry
        self.strict = strict

    def run(self, plan: PipelinePlan) -> PlanResult:
        ctx = PassContext(telemetry=self.telemetry)
        tel = self.telemetry
        counter = (
            tel.registry.counter(
                "plan_passes_total",
                "Planner passes executed",
                ("pass", "plan"),
            )
            if tel is not None
            else None
        )
        for p in self.passes:
            if tel is not None:
                with tel.span(f"plan.{p.name}", track="plan"):
                    plan = p.run(plan, ctx)
            else:
                plan = p.run(plan, ctx)
            if counter is not None:
                counter.labels(**{"pass": p.name, "plan": plan.name}).inc()
        if tel is not None and ctx.diagnostics:
            diag_counter = tel.registry.counter(
                "plan_diagnostics_total",
                "Validation findings by severity",
                ("severity",),
            )
            for severity, n in ctx.diagnostics.counts().items():
                if n:
                    diag_counter.labels(severity=severity).inc(n)
        if self.strict:
            ctx.diagnostics.raise_if_errors()
        return PlanResult(plan=plan, diagnostics=ctx.diagnostics)


# ---------------------------------------------------------------------------
# blessed entry points
# ---------------------------------------------------------------------------


def run_passes(
    plan: PipelinePlan,
    *,
    telemetry: "Telemetry | None" = None,
    strict: bool = True,
) -> PlanResult:
    """Run the standard ``validate -> normalize`` pipeline."""
    return Planner(telemetry=telemetry, strict=strict).run(plan)


def build_scenario(
    plan: PipelinePlan, *, telemetry: "Telemetry | None" = None
) -> "ScenarioConfig":
    """Standard passes, then the sim lowering."""
    result = run_passes(plan, telemetry=telemetry)
    if telemetry is not None:
        with telemetry.span("plan.lower_sim", track="plan"):
            return lower_sim(result.plan)
    return lower_sim(result.plan)


def build_live(
    plan: PipelinePlan,
    stream_id: str | None = None,
    *,
    codec: str | None = None,
    host_cpus: int | None = None,
    telemetry: "Telemetry | None" = None,
) -> LiveLowering:
    """Standard passes, then the live lowering."""
    result = run_passes(plan, telemetry=telemetry)
    if telemetry is not None:
        with telemetry.span("plan.lower_live", track="plan"):
            return lower_live(
                result.plan, stream_id, codec=codec, host_cpus=host_cpus
            )
    return lower_live(result.plan, stream_id, codec=codec, host_cpus=host_cpus)


def through_plan(
    scenario: "ScenarioConfig",
    *,
    policy: str = "manual",
    telemetry: "Telemetry | None" = None,
) -> "ScenarioConfig":
    """Round a hand-built scenario through the plan layer.

    The experiment drivers' path to the IR: lift, run the standard
    passes, lower back to an equivalent (validated, normalized)
    scenario.  Guarantees hand-built exhibits exercise the same
    pipeline the generator does.
    """
    from repro.plan.ingest import plan_from_scenario

    plan = plan_from_scenario(scenario, policy=policy)
    return build_scenario(plan, telemetry=telemetry)
