"""Front-ends that build a :class:`~repro.plan.ir.PipelinePlan`.

Two ways into the IR:

- :func:`plan_from_scenario` ingests a hand-built
  :class:`~repro.core.config.ScenarioConfig` (the experiment drivers'
  native dialect) so legacy builders ride the same pass pipeline;
- the generator (:class:`repro.core.generator.ConfigGenerator`) builds
  plans natively via :meth:`generate_plan` / :meth:`os_baseline_plan`.

Both produce the same IR, which is the point: one plan, many backends.
"""

from __future__ import annotations

from repro.core.config import ScenarioConfig, StageConfig, StreamConfig
from repro.plan.ir import STAGE_ORDER, PipelinePlan, StageNode, StreamNode
from repro.plan.rules import rationale_for


def stream_from_config(
    cfg: StreamConfig, *, numa_aware: bool = True
) -> StreamNode:
    """Lift one :class:`StreamConfig` into the IR.

    Reads the stage attributes directly rather than ``cfg.stages()``:
    ingestion must stay permissive (a stream with no stages becomes an
    empty node) so the validation pass can report the problem as a
    diagnostic instead of raising mid-lift.
    """
    nodes: list[StageNode] = []
    for kind in STAGE_ORDER:
        stage: StageConfig | None = getattr(cfg, kind.value)
        if stage is None:
            continue
        numa = numa_aware and stage.placement.kind != "os"
        nodes.append(
            StageNode(
                kind=kind,
                count=stage.count,
                placement=stage.placement,
                rationale=rationale_for(kind, numa_aware=numa),
            )
        )
    return StreamNode(
        stream_id=cfg.stream_id,
        sender=cfg.sender,
        receiver=cfg.receiver,
        path=cfg.path,
        num_chunks=cfg.num_chunks,
        chunk_bytes=cfg.chunk_bytes,
        ratio_mean=cfg.ratio_mean,
        ratio_sigma=cfg.ratio_sigma,
        source_socket=cfg.source_socket,
        queue_capacity=cfg.queue_capacity,
        batch_frames=cfg.batch_frames,
        micro=cfg.micro,
        faults=tuple(cfg.faults),
        stages=tuple(nodes),
    )


def plan_from_scenario(
    scenario: ScenarioConfig, *, policy: str = "manual"
) -> PipelinePlan:
    """Lift a full scenario into the IR (placements kept verbatim)."""
    numa_aware = policy != "os_baseline"
    return PipelinePlan(
        name=scenario.name,
        machines=dict(scenario.machines),
        paths=dict(scenario.paths),
        streams=[
            stream_from_config(s, numa_aware=numa_aware)
            for s in scenario.streams
        ],
        cost=scenario.cost,
        seed=scenario.seed,
        warmup_chunks=scenario.warmup_chunks,
        csw_penalty=scenario.csw_penalty,
        wake_affinity=scenario.wake_affinity,
        migrate_prob=scenario.migrate_prob,
        spill_threshold=scenario.spill_threshold,
        max_sim_time=scenario.max_sim_time,
        policy=policy,
    )
