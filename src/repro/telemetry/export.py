"""Exporters: Prometheus text, JSON snapshot, Chrome trace_event.

Three consumers, three formats:

- ``prometheus_text`` — the text exposition format scrapers expect
  (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count`` for
  histograms) so a live run can be scraped or diffed with ``promtool``;
- ``json_snapshot`` — a structured dump for programmatic comparison
  (the sim-vs-live parity tests consume this);
- ``chrome_trace`` — the Trace Event Format understood by
  ``chrome://tracing`` and https://ui.perfetto.dev: complete ("X")
  events per span plus thread-name metadata so each core/worker gets
  its own row.
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable

from repro.telemetry.registry import (
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricRegistry,
)
from repro.telemetry.spans import Span


def _fmt_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(v: str) -> str:
    # HELP text escapes only backslash and newline (quotes stay literal).
    return v.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(names: tuple[str, ...], values: tuple[str, ...],
               extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_text(registry: MetricRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for series in family.series():
            labels = _label_str(family.label_names, series.labels)
            if isinstance(series, HistogramSeries):
                cumulative = 0
                for bound, n in zip(
                    (*series.bounds, math.inf), series.bucket_counts
                ):
                    cumulative += n
                    le = _label_str(
                        family.label_names,
                        series.labels,
                        (("le", _fmt_value(bound)),),
                    )
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                lines.append(
                    f"{family.name}_sum{labels} {_fmt_value(series.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {series.count}")
            else:
                lines.append(
                    f"{family.name}{labels} {_fmt_value(series.value)}"
                )
    return "\n".join(lines) + "\n"


def json_snapshot(registry: MetricRegistry) -> dict[str, Any]:
    """Structured dump of every family and series."""
    out: dict[str, Any] = {}
    for family in registry.families():
        series_out = []
        for series in family.series():
            labels = dict(zip(family.label_names, series.labels))
            if isinstance(series, HistogramSeries):
                series_out.append(
                    {
                        "labels": labels,
                        "count": series.count,
                        "sum": series.sum,
                        "buckets": {
                            _fmt_value(b): n
                            for b, n in zip(
                                (*series.bounds, math.inf),
                                series.bucket_counts,
                            )
                        },
                    }
                )
            elif isinstance(series, GaugeSeries):
                series_out.append(
                    {
                        "labels": labels,
                        "value": series.value,
                        "high_water": series.high_water,
                    }
                )
            elif isinstance(series, CounterSeries):
                series_out.append({"labels": labels, "value": series.value})
        out[family.name] = {
            "type": family.kind,
            "help": family.help,
            "series": series_out,
        }
    return out


def chrome_trace(
    spans: Iterable[Span],
    *,
    time_origin: float | None = None,
    flows: Iterable[tuple[Span, Span]] | None = None,
) -> dict[str, Any]:
    """Spans as a Chrome/Perfetto ``trace_event`` document.

    Each distinct (stream, track) pair becomes a synthetic thread so
    the viewer lays spans out per core / per worker; timestamps are
    microseconds relative to the earliest span (or ``time_origin``).

    ``flows`` is an optional sequence of (source, destination) span
    pairs; each pair becomes a flow-event arrow ("s"/"f") from the
    source span's end to the destination span's start, which is how a
    traced chunk renders as one connected chain across process tracks
    (:mod:`repro.trace` supplies the pairs).
    """
    all_spans = sorted(spans, key=lambda s: (s.start, s.end))
    events: list[dict[str, Any]] = []
    if not all_spans:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = time_origin if time_origin is not None else all_spans[0].start
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    locate: dict[Span, tuple[int, int]] = {}
    for span in all_spans:
        stream = span.stream_id or "pipeline"
        pid = pids.setdefault(stream, len(pids) + 1)
        track = span.track or span.stage
        tid_key = (stream, track)
        tid = tids.get(tid_key)
        if tid is None:
            tid = tids[tid_key] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        locate[span] = (pid, tid)
        events.append(
            {
                "name": span.stage,
                "cat": stream,
                "ph": "X",
                "ts": (span.start - t0) * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {"stream": stream, "chunk": span.chunk_id},
            }
        )
    for flow_id, (src, dst) in enumerate(flows or (), start=1):
        src_loc = locate.get(src)
        dst_loc = locate.get(dst)
        if src_loc is None or dst_loc is None:
            continue  # flow endpoints must be among the exported spans
        name = f"{src.stream_id or 'pipeline'}#{src.chunk_id}"
        events.append(
            {
                "name": name,
                "cat": "flow",
                "ph": "s",
                "id": flow_id,
                "ts": (src.end - t0) * 1e6,
                "pid": src_loc[0],
                "tid": src_loc[1],
            }
        )
        events.append(
            {
                "name": name,
                "cat": "flow",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "ts": (dst.start - t0) * 1e6,
                "pid": dst_loc[0],
                "tid": dst_loc[1],
            }
        )
    for stream, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"stream {stream}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Serialize :func:`chrome_trace` to ``path``; returns event count."""
    doc = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
