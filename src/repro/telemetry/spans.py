"""Span recording: one timed interval of one pipeline stage's work.

A :class:`Span` is the unit both execution substrates emit — the live
pipeline wraps codec/socket calls in the :func:`stage_span` context
manager on the wall clock, the simulator records explicit begin/end
pairs on its virtual clock.  :class:`SpanStore` collects them
thread-safely; :mod:`repro.telemetry.report` turns them into per-stage
service/queue-wait statistics and :mod:`repro.telemetry.export` into a
Chrome ``trace_event`` file.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.telemetry.clock import Clock, WallClock

_WALL = WallClock()


@dataclass(frozen=True)
class Span:
    """One stage's work interval for one chunk."""

    stream_id: str
    chunk_id: int
    stage: str
    start: float
    end: float
    #: Where the work ran: a core name (sim) or thread name (live).
    track: str | None = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"span for {self.stream_id}#{self.chunk_id}/{self.stage} "
                "ends before it starts"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    # Aliases matching the original ``sim.trace.StageSpan`` field names,
    # so trace-era call sites keep reading.

    @property
    def chunk_index(self) -> int:
        return self.chunk_id

    @property
    def core(self) -> str | None:
        return self.track


class ActiveSpan:
    """Handle yielded by :func:`stage_span` / :meth:`SpanStore.span`.

    ``duration`` is valid after the ``with`` block exits, whether or not
    a store is attached — live workers use it to feed their legacy
    per-stage stats without a second clock read.
    """

    __slots__ = ("stage", "stream_id", "chunk_id", "track", "start", "end",
                 "discard")

    def __init__(
        self, stage: str, stream_id: str, chunk_id: int, track: str | None,
        start: float,
    ) -> None:
        self.stage = stage
        self.stream_id = stream_id
        self.chunk_id = chunk_id
        self.track = track
        self.start = start
        self.end: float | None = None
        #: Set True inside the block to drop the span at exit (e.g. a
        #: receive that turned out to be the end-of-stream marker).
        self.discard = False

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError("span still open; duration known after exit")
        return self.end - self.start


#: Default retention bound.  Generous — a loopback bench run records a
#: handful of spans per chunk — but finite: a 1k-stream live run left
#: up for days must not grow an unbounded list (satellite of PR 10).
DEFAULT_MAX_SPANS = 1 << 20


class SpanStore:
    """Thread-safe span collection with bounded, drop-oldest retention.

    ``max_spans`` caps the store (0 = unbounded); once full, each new
    span evicts the oldest and bumps :attr:`dropped`.  ``on_drop`` is
    called (outside any hot loop, once per eviction) so the telemetry
    facade can surface drops as ``repro_spans_dropped_total``.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        max_spans: int = DEFAULT_MAX_SPANS,
        on_drop=None,
    ) -> None:
        if max_spans < 0:
            raise ValueError(f"max_spans must be >= 0, got {max_spans}")
        self.clock: Clock = clock or WallClock()
        self.max_spans = max_spans
        self.on_drop = on_drop
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(
            maxlen=max_spans if max_spans > 0 else None
        )
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Spans evicted by the retention ring since construction."""
        return self._dropped

    # -- recording -------------------------------------------------------

    def add(self, span: Span) -> Span:
        with self._lock:
            evicting = (
                self._spans.maxlen is not None
                and len(self._spans) == self._spans.maxlen
            )
            self._spans.append(span)
            if evicting:
                self._dropped += 1
        if evicting and self.on_drop is not None:
            self.on_drop()
        return span

    def record(
        self,
        stage: str,
        start: float,
        end: float,
        *,
        stream_id: str = "",
        chunk_id: int = -1,
        track: str | None = None,
    ) -> Span:
        """Explicit begin/end recording (the simulator's virtual clock)."""
        return self.add(Span(stream_id, chunk_id, stage, start, end, track))

    @contextmanager
    def span(
        self,
        stage: str,
        *,
        stream_id: str = "",
        chunk_id: int = -1,
        track: str | None = None,
    ) -> Iterator[ActiveSpan]:
        """Time a block on this store's clock and record the span.

        The span is recorded even when the block raises — a failing
        stage still occupied its thread, and traces of failures are the
        ones worth reading.  Identity fields are read off the handle at
        exit, so a block may fill in ``stream_id``/``chunk_id`` once it
        learns them (e.g. a receiver that discovers the chunk id inside
        the frame it just read).
        """
        handle = ActiveSpan(stage, stream_id, chunk_id, track, self.clock.now())
        try:
            yield handle
        finally:
            handle.end = self.clock.now()
            if not handle.discard:
                self.add(
                    Span(
                        handle.stream_id, handle.chunk_id, handle.stage,
                        handle.start, handle.end, handle.track,
                    )
                )

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.snapshot())

    def snapshot(self) -> list[Span]:
        """A consistent copy of all spans recorded so far."""
        with self._lock:
            return list(self._spans)

    def for_stream(self, stream_id: str) -> list[Span]:
        return [s for s in self.snapshot() if s.stream_id == stream_id]

    def for_chunk(self, stream_id: str, chunk_id: int) -> list[Span]:
        """Spans of one chunk, ordered by start time."""
        spans = [
            s
            for s in self.snapshot()
            if s.stream_id == stream_id and s.chunk_id == chunk_id
        ]
        return sorted(spans, key=lambda s: (s.start, s.end))

    def stages(self) -> set[str]:
        return {s.stage for s in self.snapshot()}

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


@contextmanager
def stage_span(
    telemetry,
    stage: str,
    *,
    stream_id: str = "",
    chunk_id: int = -1,
    track: str | None = None,
) -> Iterator[ActiveSpan]:
    """The shared timing idiom for live workers.

    Works with ``telemetry=None`` (timing only, nothing recorded) so
    worker bodies need no conditional: the handle's ``duration`` always
    becomes valid when the block exits, and when a
    :class:`~repro.telemetry.Telemetry` is attached the span lands in
    its store and its stage-seconds histogram.
    """
    if telemetry is None:
        handle = ActiveSpan(stage, stream_id, chunk_id, track, _WALL.now())
        try:
            yield handle
        finally:
            handle.end = _WALL.now()
        return
    with telemetry.span(
        stage, stream_id=stream_id, chunk_id=chunk_id, track=track
    ) as handle:
        yield handle
