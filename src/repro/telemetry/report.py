"""Derive pipeline diagnostics from spans: service, queue wait, bottleneck.

This is the paper's *measure → diagnose → re-place* loop's "diagnose"
step (§4.1), computed identically for both substrates: group spans per
chunk, read per-stage service time directly and *queue wait* as the gap
between the previous stage finishing a chunk and the next one starting
it, then pick the bottleneck as the stage whose threads are busiest
(busy_seconds / (threads × makespan)).  ``sim/trace.py``'s
:class:`~repro.sim.trace.ChunkTracer` delegates here, so a simulated
trace and a live trace answer the bottleneck question through one code
path.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.telemetry.spans import Span
from repro.util.timeseries import WindowStats


@dataclass
class StageAggregate:
    """Aggregated timing for one pipeline stage."""

    service: WindowStats = field(default_factory=WindowStats)
    queue_wait: WindowStats = field(default_factory=WindowStats)
    busy_seconds: float = 0.0
    chunks: int = 0


@dataclass
class PipelineReport:
    """Per-stage statistics and the bottleneck verdict for one stream."""

    stream_id: str
    stages: dict[str, StageAggregate]
    #: stage -> thread count used for per-thread utilization (default 1).
    thread_counts: dict[str, int]
    #: first-start to last-end across every span considered.
    makespan: float
    #: stage -> sampled self-time seconds, merged in by the observability
    #: plane when a :class:`~repro.obs.profiler.SamplingProfiler` ran.
    profile: dict[str, float] | None = None

    @classmethod
    def from_spans(
        cls,
        spans: Iterable[Span],
        *,
        stream_id: str | None = None,
        thread_counts: Mapping[str, int] | None = None,
    ) -> "PipelineReport":
        """Build a report from raw spans.

        With ``stream_id`` given only that stream's spans are used;
        otherwise all spans are pooled (useful for single-stream live
        runs where every chunk shares one stream id anyway).
        """
        selected = [
            s for s in spans if stream_id is None or s.stream_id == stream_id
        ]
        stages: dict[str, StageAggregate] = defaultdict(StageAggregate)
        by_chunk: dict[tuple[str, int], list[Span]] = defaultdict(list)
        for s in selected:
            by_chunk[(s.stream_id, s.chunk_id)].append(s)
        for key in sorted(by_chunk):
            timeline = sorted(by_chunk[key], key=lambda s: (s.start, s.end))
            prev_end: float | None = None
            for span in timeline:
                agg = stages[span.stage]
                agg.service.add(span.duration)
                agg.busy_seconds += span.duration
                agg.chunks += 1
                if prev_end is not None:
                    agg.queue_wait.add(max(0.0, span.start - prev_end))
                prev_end = span.end
        makespan = 0.0
        if selected:
            t0 = min(s.start for s in selected)
            t1 = max(s.end for s in selected)
            makespan = max(t1 - t0, 0.0)
        return cls(
            stream_id=stream_id or "",
            stages=dict(stages),
            thread_counts=dict(thread_counts or {}),
            makespan=makespan,
        )

    # -- diagnosis -------------------------------------------------------

    def stage_utilization(self) -> dict[str, float]:
        """Busy fraction per stage: busy_seconds / (threads × makespan)."""
        span = max(self.makespan, 1e-12)
        return {
            stage: agg.busy_seconds / (self.thread_counts.get(stage, 1) * span)
            for stage, agg in self.stages.items()
        }

    @property
    def bottleneck(self) -> str | None:
        """The stage whose threads are busiest, or None without spans."""
        util = self.stage_utilization()
        if not util:
            return None
        return max(util.items(), key=lambda kv: kv[1])[0]

    def to_dict(self) -> dict[str, object]:
        """JSON shape served by the observability plane's ``/report``."""
        util = self.stage_utilization()
        stages: dict[str, object] = {}
        for stage, agg in self.stages.items():
            stages[stage] = {
                "threads": self.thread_counts.get(stage, 1),
                "chunks": agg.chunks,
                "service_mean_s": agg.service.mean if agg.chunks else 0.0,
                "queue_wait_mean_s": (
                    agg.queue_wait.mean if agg.queue_wait.n else 0.0
                ),
                "busy_seconds": agg.busy_seconds,
                "utilization": util.get(stage, 0.0),
            }
        out: dict[str, object] = {
            "stream_id": self.stream_id,
            "makespan_s": self.makespan,
            "stages": stages,
            "stage_utilization": util,
            "bottleneck": self.bottleneck,
        }
        if self.profile is not None:
            out["profile"] = dict(self.profile)
        return out

    def render(self) -> str:
        """Human-readable per-stage table (the ``repro telemetry`` view)."""
        title = f"stream {self.stream_id!r}" if self.stream_id else "pipeline"
        lines = [f"telemetry report for {title}:"]
        lines.append(
            f"  {'stage':<12} {'thr':>4} {'chunks':>6} {'service(ms)':>12} "
            f"{'q-wait(ms)':>11} {'busy(s)':>8} {'util':>5}"
        )
        util = self.stage_utilization()
        for stage, agg in self.stages.items():
            service_ms = agg.service.mean * 1e3 if agg.chunks else 0.0
            wait_ms = agg.queue_wait.mean * 1e3 if agg.queue_wait.n else 0.0
            lines.append(
                f"  {stage:<12} {self.thread_counts.get(stage, 1):>4} "
                f"{agg.chunks:>6} {service_ms:>12.2f} {wait_ms:>11.2f} "
                f"{agg.busy_seconds:>8.2f} {util.get(stage, 0.0):>5.2f}"
            )
        bn = self.bottleneck
        if bn:
            lines.append(f"  bottleneck stage: {bn}")
        if self.profile:
            ranked = sorted(
                self.profile.items(), key=lambda kv: kv[1], reverse=True
            )
            lines.append(
                "  sampled self-time: "
                + ", ".join(f"{s}={v:.2f}s" for s, v in ranked)
            )
        return "\n".join(lines)
