"""The `Telemetry` facade: one object both substrates write into.

It bundles a :class:`~repro.telemetry.registry.MetricRegistry`, a
:class:`~repro.telemetry.spans.SpanStore` and a pluggable clock, and
pre-registers the *canonical pipeline metric families* so the simulator
and the live runtime report through identical names:

====================================  =========  ==========================
family                                type       labels
====================================  =========  ==========================
``pipeline_chunks_total``             counter    stage, stream
``pipeline_bytes_total``              counter    stage, stream
``pipeline_stage_seconds``            histogram  stage
``pipeline_queue_depth``              gauge      queue
``pipeline_batch_size``               histogram  site
``pipeline_codec_chunks_total``       counter    stage, stream, codec
``transport_frames_total``            counter    direction
``transport_bytes_total``             counter    direction
``transport_retries_total``           counter    —
``transport_redeliveries_total``      counter    —
``transport_frames_rejected_total``   counter    —
``transport_frames_deduped_total``    counter    —
``transport_faults_injected_total``   counter    kind
``repro_receiver_deferred_total``     counter    stream
``repro_spans_dropped_total``         counter    —
====================================  =========  ==========================

The two per-stream families that grow with tenant count
(``repro_receiver_deferred_total`` and
``pipeline_codec_chunks_total``) are cardinality-capped: after
``stream_label_top_k`` distinct streams, further streams fold onto
``stream="_other"``.  The span store is likewise bounded (drop-oldest)
with evictions counted in ``repro_spans_dropped_total``.

The ``transport_retries/redeliveries/rejected/deduped`` family is the
resilience ledger (``repro.faults`` + the resilient live endpoints);
the simulator bumps the same counters for ``crash``/``reconnect``
faults so sim and live chaos runs read identically.

The sim-vs-live parity test in ``tests/integration`` holds the two
substrates to this contract.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.telemetry.clock import Clock, WallClock

if TYPE_CHECKING:  # pragma: no cover - avoid a runtime telemetry->obs cycle
    from repro.obs.events import Event, EventBus
from repro.telemetry.export import (
    chrome_trace,
    json_snapshot,
    prometheus_text,
    write_chrome_trace,
)
from repro.telemetry.registry import GaugeSeries, MetricRegistry
from repro.telemetry.report import PipelineReport
from repro.telemetry.spans import ActiveSpan, Span, SpanStore


#: Default per-stream label budget for high-cardinality families.
#: Generous for benchmarks and typical runs; a 1k-tenant deployment
#: folds the tail onto ``stream="_other"`` instead of growing the
#: registry without bound.
DEFAULT_STREAM_LABEL_TOP_K = 256


class Telemetry:
    """Metrics + spans for one pipeline run (sim or live)."""

    def __init__(
        self,
        clock: Clock | None = None,
        *,
        max_spans: int | None = None,
        stream_label_top_k: int = DEFAULT_STREAM_LABEL_TOP_K,
    ) -> None:
        self.clock: Clock = clock or WallClock()
        self.registry = MetricRegistry()
        self._spans_dropped = self.registry.counter(
            "repro_spans_dropped_total",
            "Spans evicted from the bounded span store (drop-oldest)",
        )
        span_kwargs: dict[str, Any] = {"on_drop": self._spans_dropped.inc}
        if max_spans is not None:
            span_kwargs["max_spans"] = max_spans
        self.spans = SpanStore(clock=self.clock, **span_kwargs)
        #: Sender/receiver clock alignment fed by traced frames
        #: (:mod:`repro.trace`); always present, costs nothing unused.
        self.trace_align = _clock_align()
        #: stage -> thread count, for per-thread bottleneck utilization.
        self.thread_counts: dict[str, int] = {}
        #: Optional structured-event bus (see :mod:`repro.obs.events`);
        #: attached by the observability plane, never required.
        self.events: "EventBus | None" = None
        self._chunks = self.registry.counter(
            "pipeline_chunks_total",
            "Chunks completed per pipeline stage",
            ("stage", "stream"),
        )
        self._bytes = self.registry.counter(
            "pipeline_bytes_total",
            "Uncompressed payload bytes processed per pipeline stage",
            ("stage", "stream"),
        )
        self._stage_seconds = self.registry.histogram(
            "pipeline_stage_seconds",
            "Per-chunk service time per pipeline stage",
            ("stage",),
        )
        self._queue_depth = self.registry.gauge(
            "pipeline_queue_depth",
            "Inter-stage queue occupancy",
            ("queue",),
        )
        self._batch_size = self.registry.histogram(
            "pipeline_batch_size",
            "Items moved per batched queue drain / vectored send",
            ("site",),
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self._codec_chunks = self.registry.counter(
            "pipeline_codec_chunks_total",
            "Chunks processed per codec choice (adaptive selection ledger)",
            ("stage", "stream", "codec"),
        )
        self._frames = self.registry.counter(
            "transport_frames_total",
            "Frames moved over the transport",
            ("direction",),
        )
        self._tbytes = self.registry.counter(
            "transport_bytes_total",
            "Wire bytes moved over the transport",
            ("direction",),
        )
        self._retries = self.registry.counter(
            "transport_retries_total",
            "Reconnect attempts made after a transport failure",
        )
        self._redeliveries = self.registry.counter(
            "transport_redeliveries_total",
            "Frames re-sent after a reconnect (unacknowledged replay)",
        )
        self._rejected = self.registry.counter(
            "transport_frames_rejected_total",
            "Frames the receiver rejected for integrity failures",
        )
        self._deduped = self.registry.counter(
            "transport_frames_deduped_total",
            "Duplicate frames the receiver dropped after a retransmit",
        )
        self._faults = self.registry.counter(
            "transport_faults_injected_total",
            "Faults fired by the attached FaultInjector",
            ("kind",),
        )
        self._deferred = self.registry.counter(
            "repro_receiver_deferred_total",
            "Read deferrals by the event-loop receiver (per-stream "
            "in-flight budget exceeded, or the decompress queue full)",
            ("stream",),
        )
        # The two per-stream families that scale with tenant count are
        # capped: past top-K distinct streams, increments fold onto
        # stream="_other" (see MetricFamily.limit_cardinality).
        if stream_label_top_k > 0:
            self._deferred.limit_cardinality("stream", stream_label_top_k)
            self._codec_chunks.limit_cardinality(
                "stream", stream_label_top_k
            )
        self._heartbeats = self.registry.gauge(
            "worker_heartbeat_seconds",
            "Per-worker liveness: clock time of the last completed span",
            ("worker",),
        )
        self._affinity = self.registry.gauge(
            "repro_affinity_cpus",
            "CPUs actually applied to a pinned worker (0 = unpinned)",
            ("role",),
        )

    def set_clock(self, clock: Clock) -> None:
        """Rebind the time source (the sim engine exists after __init__)."""
        self.clock = clock
        self.spans.clock = clock

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(
        self,
        stage: str,
        *,
        stream_id: str = "",
        chunk_id: int = -1,
        track: str | None = None,
    ) -> Iterator[ActiveSpan]:
        """Time a block; records the span and the stage-seconds sample."""
        with self.spans.span(
            stage, stream_id=stream_id, chunk_id=chunk_id, track=track
        ) as handle:
            yield handle
        # A discarded span (end-of-stream marker) still proves liveness.
        if handle.track is not None and handle.end is not None:
            self.heartbeat(handle.track, ts=handle.end)
        if not handle.discard:
            self._stage_seconds.labels(stage=stage).observe(handle.duration)

    def record_span(
        self,
        stage: str,
        start: float,
        end: float,
        *,
        stream_id: str = "",
        chunk_id: int = -1,
        track: str | None = None,
    ) -> Span:
        """Explicit begin/end recording (the simulator's virtual clock)."""
        span = self.spans.record(
            stage, start, end, stream_id=stream_id, chunk_id=chunk_id,
            track=track,
        )
        if track is not None:
            self.heartbeat(track, ts=end)
        self._stage_seconds.labels(stage=stage).observe(span.duration)
        return span

    # -- liveness --------------------------------------------------------

    def heartbeat(self, worker: str, *, ts: float | None = None) -> None:
        """Record that ``worker`` was alive at ``ts`` (default: now).

        Workers beat implicitly on every span exit; long-blocking code
        paths that produce no spans (e.g. a reconnect backoff loop) may
        beat explicitly.  The watchdog and ``/healthz`` read these.
        """
        self._heartbeats.labels(worker=worker).set(
            self.clock.now() if ts is None else ts
        )

    def record_affinity(self, role: str, ncpus: int) -> None:
        """Record the CPU-set size *actually applied* to ``role``.

        Thread workers report through :func:`repro.live.affinity.
        pin_current_thread`; process workers report via their shared
        stats slot.  A value smaller than the plan asked for means
        placement drift (out-of-range CPUs were dropped); 0 means the
        worker runs unpinned.
        """
        self._affinity.labels(role=role).set(ncpus)

    def affinity_cpus(self) -> dict[str, float]:
        """Applied CPU-set size per role seen so far."""
        return {
            series.labels[0]: series.value
            for series in self._affinity.series()
        }

    def heartbeats(self) -> dict[str, float]:
        """Last-beat clock time per worker seen so far."""
        return {
            series.labels[0]: series.value
            for series in self._heartbeats.series()
        }

    # -- structured events -----------------------------------------------

    def attach_events(self, bus: "EventBus") -> None:
        """Attach an event bus; :meth:`emit_event` becomes live."""
        self.events = bus

    def emit_event(
        self,
        kind: str,
        message: str = "",
        *,
        severity: str = "info",
        **fields: Any,
    ) -> "Event | None":
        """Emit a structured event on this run's timebase, if a bus is
        attached (no-op returning None otherwise).

        On the live wall clock events carry epoch timestamps (the bus
        default); on any other clock — the simulator's virtual one —
        they carry ``clock.now()`` so a sim chaos story is deterministic.
        """
        if self.events is None:
            return None
        ts = None if isinstance(self.clock, WallClock) else self.clock.now()
        return self.events.emit(
            kind, message, severity=severity, ts=ts, **fields
        )

    # -- canonical pipeline metrics --------------------------------------

    def record_chunk(self, stage: str, stream_id: str, nbytes: int) -> None:
        """One chunk left ``stage``: bump the chunk and byte counters."""
        self._chunks.labels(stage=stage, stream=stream_id).inc()
        self._bytes.labels(stage=stage, stream=stream_id).inc(nbytes)

    def record_frame(self, direction: str, nbytes: int) -> None:
        """One transport frame moved (``direction`` is ``tx`` or ``rx``)."""
        self._frames.labels(direction=direction).inc()
        self._tbytes.labels(direction=direction).inc(nbytes)

    def record_batch(self, site: str, size: int) -> None:
        """One batched operation moved ``size`` items at ``site``
        (e.g. ``sendq.get``, ``wire.tx``)."""
        self._batch_size.labels(site=site).observe(size)

    def record_codec(self, stage: str, stream_id: str, codec: str) -> None:
        """One chunk went through ``codec`` at ``stage`` — the ledger
        that makes per-chunk adaptive selection observable."""
        self._codec_chunks.labels(
            stage=stage, stream=stream_id, codec=codec
        ).inc()

    def queue_gauge(self, queue: str) -> GaugeSeries:
        """The occupancy gauge series for one named queue."""
        return self._queue_depth.labels(queue=queue)

    # -- resilience ledger -----------------------------------------------

    def record_retry(self) -> None:
        """One reconnect attempt after a transport failure."""
        self._retries.inc()

    def record_redelivery(self) -> None:
        """One unacknowledged frame replayed after a reconnect."""
        self._redeliveries.inc()

    def record_rejected(self) -> None:
        """One frame rejected by the receiver for an integrity failure."""
        self._rejected.inc()

    def record_dedup(self) -> None:
        """One duplicate frame dropped by the receiver."""
        self._deduped.inc()

    def record_fault(self, kind: str) -> None:
        """One injected fault fired (``kind`` names the sabotage)."""
        self._faults.labels(kind=kind).inc()

    def record_deferred(self, stream_id: str) -> None:
        """One read deferral (fair-share backpressure) for a stream."""
        self._deferred.labels(stream=stream_id).inc()

    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter series (0.0 when never touched)."""
        family = self.registry.get(name)
        if family is None:
            return 0.0
        return family.labels(**labels).value

    # -- derived views ---------------------------------------------------

    def pipeline_report(
        self,
        stream_id: str | None = None,
        *,
        thread_counts: Mapping[str, int] | None = None,
    ) -> PipelineReport:
        """Service/queue-wait/bottleneck analysis over collected spans."""
        counts = thread_counts if thread_counts is not None else self.thread_counts
        return PipelineReport.from_spans(
            self.spans.snapshot(), stream_id=stream_id, thread_counts=counts
        )

    def prometheus_text(self) -> str:
        return prometheus_text(self.registry)

    def json_snapshot(self) -> dict[str, Any]:
        return json_snapshot(self.registry)

    def chrome_trace(self) -> dict[str, Any]:
        return chrome_trace(self.spans.snapshot())

    def write_chrome_trace(self, path: str) -> int:
        return write_chrome_trace(self.spans.snapshot(), path)


def _clock_align():
    # Deferred import: repro.trace sits above repro.telemetry in the
    # layering (it imports spans/export), so a module-level import here
    # would be a cycle.
    from repro.trace.assemble import ClockAlign

    return ClockAlign()


def as_telemetry(value: "bool | Telemetry | None") -> "Telemetry | None":
    """Normalize the blessed ``telemetry=`` keyword shape.

    Every run entry point (``run_scenario``, ``SimRuntime``,
    ``LivePipeline``, ``ReceiverServer``, ``SenderClient``) accepts the
    same three spellings: ``False``/``None`` → telemetry off, ``True``
    → build a fresh :class:`Telemetry`, an instance → share it.
    """
    if value is None or value is False:
        return None
    if value is True:
        return Telemetry()
    return value
