"""repro.telemetry — unified metrics + span tracing for sim and live runs.

The observability layer the paper's workflow needs (measure → diagnose
the bottleneck stage → re-place threads, §4.1), shared by both execution
substrates:

- :class:`MetricRegistry` — labeled :class:`Counter
  <repro.telemetry.registry.CounterSeries>` / gauge / histogram series
  with thread-safe updates;
- :class:`SpanStore` / :func:`stage_span` — per-chunk stage spans on a
  pluggable :class:`Clock` (wall time live, virtual time in the sim);
- exporters — Prometheus text, JSON snapshot, Chrome ``trace_event``
  (open in ``chrome://tracing`` or Perfetto);
- :class:`PipelineReport` — per-stage service time, queue wait and the
  bottleneck stage, derived identically for sim and live traces.

Most call sites only need :class:`Telemetry`, the facade bundling all
of the above.  See ``docs/telemetry.md``.
"""

from repro.telemetry.clock import Clock, ManualClock, SimClock, WallClock
from repro.telemetry.export import (
    chrome_trace,
    json_snapshot,
    prometheus_text,
    write_chrome_trace,
)
from repro.telemetry.facade import Telemetry, as_telemetry
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    CounterSeries,
    GaugeSeries,
    HistogramSeries,
    MetricFamily,
    MetricRegistry,
)
from repro.telemetry.report import PipelineReport, StageAggregate
from repro.telemetry.spans import ActiveSpan, Span, SpanStore, stage_span

__all__ = [
    "ActiveSpan",
    "Clock",
    "CounterSeries",
    "DEFAULT_BUCKETS",
    "GaugeSeries",
    "HistogramSeries",
    "ManualClock",
    "MetricFamily",
    "MetricRegistry",
    "PipelineReport",
    "SimClock",
    "Span",
    "SpanStore",
    "StageAggregate",
    "Telemetry",
    "WallClock",
    "as_telemetry",
    "chrome_trace",
    "json_snapshot",
    "prometheus_text",
    "stage_span",
    "write_chrome_trace",
]
