"""Backend-agnostic metric registry: counters, gauges, histograms.

The model follows the Prometheus data model — named *families* with a
fixed label schema, each holding one *series* (child) per distinct label
value tuple — but stays dependency-free and export-format-neutral:
:mod:`repro.telemetry.export` renders a registry as Prometheus text or a
JSON snapshot.

Thread safety: every series guards its hot update with one short-held
``threading.Lock`` (a float add / compare under the GIL), and families
guard child creation.  That is "lock-free enough" for pipeline threads
that do milliseconds of compression work per update; the overhead guard
in ``benchmarks/bench_telemetry.py`` keeps it honest.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Iterator, Mapping, Sequence

from repro.util.errors import ValidationError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: exponential, microseconds to ~minute.
#: Tuned for per-chunk stage service times (sub-ms codec calls on the
#: live path, seconds on the simulated clock).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5,
    1.0, 5.0, 10.0, 60.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValidationError(f"invalid metric name {name!r}")
    return name


def _check_labels(label_names: Sequence[str]) -> tuple[str, ...]:
    out = tuple(label_names)
    for label in out:
        if not _LABEL_RE.match(label):
            raise ValidationError(f"invalid label name {label!r}")
    if len(set(out)) != len(out):
        raise ValidationError(f"duplicate label names in {out!r}")
    return out


class _Series:
    """Base for one labeled series of a family."""

    __slots__ = ("labels", "_lock")

    def __init__(self, labels: tuple[str, ...]) -> None:
        self.labels = labels
        self._lock = threading.Lock()


class CounterSeries(_Series):
    """Monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self, labels: tuple[str, ...]) -> None:
        super().__init__(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class GaugeSeries(_Series):
    """Value that can go up and down (queue depth, occupancy)."""

    __slots__ = ("_value", "_max")

    def __init__(self, labels: tuple[str, ...]) -> None:
        super().__init__(labels)
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if value > self._max:
                self._max = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def high_water(self) -> float:
        """Largest value ever set — occupancy peaks survive sampling."""
        return self._max


class HistogramSeries(_Series):
    """Bucketed distribution with sum/count and quantile estimates."""

    __slots__ = ("bounds", "bucket_counts", "_sum", "_count", "_min", "_max")

    def __init__(self, labels: tuple[str, ...], bounds: tuple[float, ...]) -> None:
        super().__init__(labels)
        self.bounds = bounds
        #: one slot per finite bound plus the +inf overflow bucket
        self.bucket_counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated q-quantile via linear interpolation within buckets.

        Exact at the observed extremes (min/max are tracked); elsewhere
        accurate to the bucket width, which is the standard trade of a
        fixed-bucket histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return math.nan
            if q <= 0.0:
                return self._min
            if q >= 1.0:
                return self._max
            target = q * total
            cumulative = 0
            for idx, n in enumerate(self.bucket_counts):
                if n == 0:
                    continue
                if cumulative + n >= target:
                    lo = self.bounds[idx - 1] if idx > 0 else min(self._min, self.bounds[0])
                    hi = self.bounds[idx] if idx < len(self.bounds) else self._max
                    lo = max(lo, self._min)
                    hi = min(hi, self._max)
                    if hi <= lo:
                        return hi
                    frac = (target - cumulative) / n
                    return lo + (hi - lo) * frac
                cumulative += n
            return self._max  # pragma: no cover - unreachable


#: Label value a capped label collapses onto once its budget is spent.
OVERFLOW_LABEL = "_other"


class MetricFamily:
    """A named metric with a fixed label schema and many series."""

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        *,
        kind: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = _check_labels(label_names)
        self.kind = kind
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], _Series] = {}
        self._cap_idx: int | None = None
        self._cap: int = 0
        self._cap_values: set[str] = set()

    def limit_cardinality(self, label: str, top_k: int) -> None:
        """Bound the distinct values of ``label`` to ``top_k``.

        The first ``top_k`` distinct values observed keep their own
        series; every later value is folded onto
        ``{label}="_other"`` so a multi-tenant run with thousands of
        streams cannot grow this family without bound.  Admission is
        first-come — in a streaming pipeline the early streams *are*
        the long-lived ones, and a stable mapping keeps counters
        monotonic (re-ranking by traffic would move increments between
        series mid-run).
        """
        if label not in self.label_names:
            raise ValidationError(
                f"{self.name} has no label {label!r} "
                f"(labels: {self.label_names!r})"
            )
        if top_k < 1:
            raise ValidationError(f"top_k must be >= 1, got {top_k}")
        self._cap_idx = self.label_names.index(label)
        self._cap = top_k

    def _capped(self, key: tuple[str, ...]) -> tuple[str, ...]:
        idx = self._cap_idx
        if idx is None:
            return key
        value = key[idx]
        if value == OVERFLOW_LABEL or value in self._cap_values:
            return key
        with self._lock:
            if value in self._cap_values:
                return key
            if len(self._cap_values) < self._cap:
                self._cap_values.add(value)
                return key
        return key[:idx] + (OVERFLOW_LABEL,) + key[idx + 1 :]

    def _make(self, labels: tuple[str, ...]) -> _Series:
        if self.kind == "counter":
            return CounterSeries(labels)
        if self.kind == "gauge":
            return GaugeSeries(labels)
        return HistogramSeries(labels, self.buckets)

    def labels(self, *values: str, **kv: str):
        """The series for one label-value combination (created on demand)."""
        if values and kv:
            raise ValidationError("pass label values positionally or by name, not both")
        if kv:
            try:
                key = tuple(str(kv[name]) for name in self.label_names)
            except KeyError as exc:
                raise ValidationError(
                    f"{self.name}: missing label {exc.args[0]!r}"
                ) from None
            if len(kv) != len(self.label_names):
                extra = set(kv) - set(self.label_names)
                raise ValidationError(f"{self.name}: unknown labels {sorted(extra)}")
        else:
            key = tuple(str(v) for v in values)
            if len(key) != len(self.label_names):
                raise ValidationError(
                    f"{self.name}: expected {len(self.label_names)} label "
                    f"values {self.label_names!r}, got {len(key)}"
                )
        key = self._capped(key)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, self._make(key))
        return series

    # Unlabeled convenience: family acts as its own single series.

    def _default(self):
        if self.label_names:
            raise ValidationError(
                f"{self.name} has labels {self.label_names!r}; use .labels(...)"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def series(self) -> list[_Series]:
        """Snapshot of this family's series, creation-ordered."""
        with self._lock:
            return list(self._series.values())


class MetricRegistry:
    """Create-or-get store of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        kind: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValidationError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.label_names != _check_labels(label_names):
                    raise ValidationError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names!r}"
                    )
                return existing
            family = MetricFamily(
                name, help, label_names, kind=kind, buckets=buckets
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, help, label_names, "counter")

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, help, label_names, "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, help, label_names, "histogram", tuple(buckets))

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> Iterator[MetricFamily]:
        with self._lock:
            return iter(list(self._families.values()))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def as_dict(self) -> Mapping[str, MetricFamily]:
        with self._lock:
            return dict(self._families)
