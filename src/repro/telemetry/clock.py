"""Pluggable time sources for telemetry.

The same span/metric machinery must serve two execution substrates:

- the **live** pipeline, where real threads do real work and spans are
  measured with ``time.perf_counter``;
- the **simulator**, where a discrete-event engine owns a virtual clock
  and spans must carry *simulated* seconds.

A :class:`Clock` is anything with a ``now() -> float`` method returning
monotonically non-decreasing seconds.  Exporters treat the values as an
opaque timebase; only differences and orderings matter.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Monotonic seconds source."""

    def now(self) -> float: ...


class WallClock:
    """Real time via ``time.perf_counter`` (the live pipeline's clock)."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class SimClock:
    """The simulator engine's virtual clock.

    Holds any object exposing a ``now`` attribute/property in simulated
    seconds (:class:`repro.sim.engine.Engine` in practice) — kept duck
    typed so telemetry never imports the simulator.
    """

    __slots__ = ("engine",)

    def __init__(self, engine) -> None:
        self.engine = engine

    def now(self) -> float:
        return self.engine.now


class ManualClock:
    """An explicitly-advanced clock for tests and replayed traces."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"clock cannot go backwards (dt={dt})")
        self._now += dt
        return self._now
