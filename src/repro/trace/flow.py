"""Chrome-trace flow export: a chunk as one connected arrow chain.

:func:`~repro.telemetry.export.chrome_trace` already lays spans out on
per-(stream, track) rows; this module derives the (source,
destination) span pairs from assembled traces so each sampled chunk
renders as a connected flow — feeder row, compress-worker row
(possibly another process), wire, receiver shard, decompressor — with
arrows following the handoffs.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.telemetry.export import chrome_trace
from repro.telemetry.spans import Span
from repro.trace.assemble import DEFER_STAGE, ChunkTrace, assemble, canonical_stage


def trace_flows(traces: Iterable[ChunkTrace]) -> list[tuple[Span, Span]]:
    """Consecutive-span pairs of each trace (the arrows to draw)."""
    pairs: list[tuple[Span, Span]] = []
    for trace in traces:
        prev: Span | None = None
        for span in trace.spans:
            if canonical_stage(span.stage) == DEFER_STAGE:
                continue
            if prev is not None:
                pairs.append((prev, span))
            prev = span
    return pairs


def chrome_flow_trace(
    spans: Iterable[Span], *, time_origin: float | None = None
) -> dict[str, Any]:
    """A ``trace_event`` document with flow arrows for traced chunks.

    All spans are exported as usual; chunks that assemble into a
    multi-span trace additionally get "s"/"f" flow events linking their
    stages, so the sampled flows stand out as arrow chains on top of
    the full span timeline.
    """
    all_spans = list(spans)
    flows = trace_flows(
        t for t in assemble(all_spans) if len(t.spans) > 1
    )
    return chrome_trace(all_spans, time_origin=time_origin, flows=flows)


def write_flow_trace(spans: Iterable[Span], path: str) -> int:
    """Serialize :func:`chrome_flow_trace` to ``path``; returns event count."""
    doc = chrome_flow_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
