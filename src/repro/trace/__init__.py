"""End-to-end flow tracing: per-chunk causal traces across threads,
NUMA-domain processes, and the wire.

PR 5 gave each *process* a span store; this package stitches those
spans into per-chunk **flow traces**.  A :class:`TraceContext` is
assigned at the feeder by a head-based :class:`HeadSampler` (rate and
per-stream cap come from the plan's ``TraceNode``), rides the chunk
through ``ClosableQueue`` handoffs, crosses ``SharedRing`` records via
a flag bit + timestamp trailer, and crosses the wire via the
transport's ``FLAG_TRACED`` bit + trailer — untraced chunks stay
byte-identical everywhere.  :func:`assemble` then folds the spans both
sides recorded into :class:`ChunkTrace` objects: an ordered causal
span chain with handoff edges, a latency waterfall (queue-wait vs
stage-work vs wire-time vs deferral), and a critical-path verdict
naming the binding stage per stream.  :func:`chrome_flow_trace`
renders a trace as connected flow arrows in Chrome/Perfetto.

The simulator runs the identical assembly on its virtual clock — a
traced sim run is deterministic and parity-testable against live.
"""

from repro.trace.assemble import (
    CANONICAL_STAGES,
    ChunkTrace,
    ClockAlign,
    Handoff,
    assemble,
    canonical_stage,
    critical_path,
    trace_summary,
)
from repro.trace.context import HeadSampler, TraceContext
from repro.trace.flow import chrome_flow_trace, trace_flows, write_flow_trace

__all__ = [
    "CANONICAL_STAGES",
    "ChunkTrace",
    "ClockAlign",
    "Handoff",
    "HeadSampler",
    "TraceContext",
    "assemble",
    "canonical_stage",
    "chrome_flow_trace",
    "critical_path",
    "trace_flows",
    "trace_summary",
    "write_flow_trace",
]
