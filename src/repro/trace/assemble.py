"""Reassembling per-chunk spans into causal flow traces.

Both substrates record the same :class:`~repro.telemetry.spans.Span`
shape — the live pipeline on the wall clock, the simulator on its
virtual clock — so one assembler serves both: group a chunk's spans,
order them causally, and derive the handoff edges, the latency
waterfall, and the critical path.  The only cross-substrate wrinkle is
naming (the sim calls its first stage ``ingest``, live calls it
``feed``); :func:`canonical_stage` folds that so sim and live traces
are schema-comparable (the parity test relies on it).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable

from repro.telemetry.spans import Span

#: Pipeline stages in causal order, canonical (live) naming.  The
#: primary sort key when assembling a chunk's spans — live stage spans
#: *start* when a worker begins waiting for input, so start times alone
#: are not causal — and the stable order for critical-path reporting.
CANONICAL_STAGES: tuple[str, ...] = (
    "feed", "compress", "send", "wire", "recv", "decompress", "egest",
)

#: Sim stage names → live stage names.
_STAGE_ALIASES = {"ingest": "feed"}

#: Receiver-plane deferral marker; bookkeeping, not pipeline work.
DEFER_STAGE = "defer"


def canonical_stage(stage: str) -> str:
    """Fold substrate-specific stage names onto the live naming."""
    return _STAGE_ALIASES.get(stage, stage)


def _stage_rank(stage: str) -> int:
    try:
        return CANONICAL_STAGES.index(canonical_stage(stage))
    except ValueError:
        return len(CANONICAL_STAGES)


@dataclass(frozen=True)
class Handoff:
    """One queue/ring/wire edge between consecutive stages of a chunk.

    ``wait`` is the gap between the source span's end and the
    destination span's start — time the chunk sat in a queue, a ring
    slot, or a socket buffer, clamped at zero when stages overlap
    (the wire span overlaps the send syscall by construction).
    """

    src: str
    dst: str
    wait: float


@dataclass(frozen=True)
class ChunkTrace:
    """One chunk's assembled end-to-end journey."""

    stream_id: str
    chunk_id: int
    spans: tuple[Span, ...]
    handoffs: tuple[Handoff, ...]

    @property
    def start(self) -> float:
        return self.spans[0].start

    @property
    def end(self) -> float:
        return max(s.end for s in self.spans)

    @property
    def total(self) -> float:
        """End-to-end residence time of the chunk in the pipeline."""
        return self.end - self.start

    def stage_order(self) -> tuple[str, ...]:
        """Canonical stage names in causal order, duplicates collapsed,
        deferral markers dropped — the trace's *topology* signature."""
        order: list[str] = []
        for span in self.spans:
            stage = canonical_stage(span.stage)
            if stage == DEFER_STAGE:
                continue
            if not order or order[-1] != stage:
                order.append(stage)
        return tuple(order)

    def edges(self) -> tuple[tuple[str, str], ...]:
        """The handoff edges as (src, dst) canonical stage pairs."""
        return tuple((h.src, h.dst) for h in self.handoffs)

    def stage_work(self) -> dict[str, float]:
        """Seconds of stage work per canonical stage (wire included)."""
        work: dict[str, float] = {}
        for span in self.spans:
            stage = canonical_stage(span.stage)
            if stage == DEFER_STAGE:
                continue
            work[stage] = work.get(stage, 0.0) + span.duration
        return work

    def waterfall(self) -> dict[str, float]:
        """The latency decomposition of this chunk's journey.

        Four categories: ``stage_work`` (CPU stages), ``wire`` (frame
        in flight, sender stamp to receiver arrival), ``queue_wait``
        (handoff gaps), ``deferral`` (receiver-plane budget/backlog
        deferrals).  Categories may overlap in wall time — the wire
        span starts inside the send syscall — so they decompose the
        journey by *cause*, not into disjoint intervals.
        """
        work = 0.0
        wire = 0.0
        deferral = 0.0
        for span in self.spans:
            stage = canonical_stage(span.stage)
            if stage == "wire":
                wire += span.duration
            elif stage == DEFER_STAGE:
                deferral += span.duration
            else:
                work += span.duration
        queue_wait = sum(h.wait for h in self.handoffs)
        return {
            "stage_work": work,
            "wire": wire,
            "queue_wait": queue_wait,
            "deferral": deferral,
            "total": self.total,
        }

    def stage_costs(self) -> dict[str, float]:
        """Work plus incoming handoff wait, attributed per stage — the
        quantity the critical-path analyzer ranks."""
        costs = self.stage_work()
        for handoff in self.handoffs:
            costs[handoff.dst] = costs.get(handoff.dst, 0.0) + handoff.wait
        return costs

    def critical_stage(self) -> str:
        """The stage this chunk spent the most time in (work + wait)."""
        costs = self.stage_costs()
        return max(costs, key=lambda s: (costs[s], -_stage_rank(s)))

    def to_dict(self) -> dict[str, Any]:
        return {
            "stream": self.stream_id,
            "chunk": self.chunk_id,
            "start": self.start,
            "end": self.end,
            "total": self.total,
            "spans": [
                {
                    "stage": canonical_stage(s.stage),
                    "track": s.track,
                    "start": s.start,
                    "end": s.end,
                    "duration": s.duration,
                }
                for s in self.spans
            ],
            "handoffs": [
                {"src": h.src, "dst": h.dst, "wait": h.wait}
                for h in self.handoffs
            ],
            "waterfall": self.waterfall(),
            "critical_stage": self.critical_stage(),
        }


def assemble(spans: Iterable[Span]) -> list[ChunkTrace]:
    """Group per-chunk spans into :class:`ChunkTrace` objects.

    Only spans with a concrete chunk identity participate (anonymous
    spans — heartbeats, batch flushes — have ``chunk_id == -1``).
    Spans are ordered by canonical stage rank with start time as the
    tie-break: live stage spans begin when a worker starts *waiting*
    (a receiver's span can open before the chunk was even compressed),
    so the pipeline topology, not the start stamp, is the causal order.
    The start tie-break sequences repeated spans of one stage, and the
    sim's zero-width virtual-clock ties come out in pipeline order too.
    """
    groups: dict[tuple[str, int], list[Span]] = {}
    for span in spans:
        if not span.stream_id or span.chunk_id < 0:
            continue
        groups.setdefault((span.stream_id, span.chunk_id), []).append(span)
    traces: list[ChunkTrace] = []
    for (stream_id, chunk_id), group in sorted(groups.items()):
        group.sort(key=lambda s: (_stage_rank(s.stage), s.start, s.end))
        handoffs: list[Handoff] = []
        prev: Span | None = None
        for span in group:
            if canonical_stage(span.stage) == DEFER_STAGE:
                continue
            if prev is not None:
                handoffs.append(
                    Handoff(
                        src=canonical_stage(prev.stage),
                        dst=canonical_stage(span.stage),
                        wait=max(0.0, span.start - prev.end),
                    )
                )
            prev = span
        traces.append(
            ChunkTrace(stream_id, chunk_id, tuple(group), tuple(handoffs))
        )
    return traces


@dataclass(frozen=True)
class CriticalPath:
    """Per-stream verdict: the binding stage and its share of cost."""

    stream_id: str
    stage: str
    seconds: float
    #: Fraction of the stream's total attributed cost in the binding
    #: stage — 1/len(stages) means flat, ~1.0 means one hot stage.
    share: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "stream": self.stream_id,
            "stage": self.stage,
            "seconds": self.seconds,
            "share": self.share,
        }


def critical_path(traces: Iterable[ChunkTrace]) -> dict[str, CriticalPath]:
    """Name the binding stage per stream across assembled traces.

    This is the direct per-chunk signal the controller previously
    inferred from queue-depth gauges: the stage where sampled chunks
    actually spend their time, waits attributed to the stage they
    precede.
    """
    costs: dict[str, dict[str, float]] = {}
    for trace in traces:
        per_stream = costs.setdefault(trace.stream_id, {})
        for stage, cost in trace.stage_costs().items():
            per_stream[stage] = per_stream.get(stage, 0.0) + cost
    verdicts: dict[str, CriticalPath] = {}
    for stream_id, per_stage in costs.items():
        total = sum(per_stage.values())
        stage = max(per_stage, key=lambda s: (per_stage[s], -_stage_rank(s)))
        verdicts[stream_id] = CriticalPath(
            stream_id=stream_id,
            stage=stage,
            seconds=per_stage[stage],
            share=(per_stage[stage] / total) if total > 0 else 0.0,
        )
    return verdicts


class ClockAlign:
    """Sender/receiver clock alignment from traced-frame timestamps.

    Every traced frame carries the sender's wall clock in its trailer;
    the receiver stamps arrival on its own clock.  The minimum observed
    delta ``received - sent`` bounds *clock offset + minimum one-way
    latency* from above — the standard one-way estimate when clocks
    are independent.  On a loopback pipeline both stamps come from one
    clock, so the bound collapses to the genuine minimum wire latency.
    Thread-safe: receiver shards share one instance.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._min_delta: float | None = None
        self._samples = 0

    def observe(self, sent_at: float, received_at: float) -> None:
        delta = received_at - sent_at
        with self._lock:
            self._samples += 1
            if self._min_delta is None or delta < self._min_delta:
                self._min_delta = delta

    @property
    def samples(self) -> int:
        return self._samples

    @property
    def offset_bound(self) -> float:
        """Upper bound on the sender→receiver clock offset (seconds)."""
        with self._lock:
            return self._min_delta if self._min_delta is not None else 0.0

    def align(self, sender_ts: float) -> float:
        """Map a sender-clock stamp onto the receiver's timeline."""
        return sender_ts + self.offset_bound


def trace_summary(
    spans: Iterable[Span],
    *,
    align: ClockAlign | None = None,
    limit: int = 0,
) -> dict[str, Any]:
    """The ``/trace`` endpoint document: assembled traces + verdicts."""
    traces = assemble(spans)
    verdicts = critical_path(traces)
    shown = traces if limit <= 0 else traces[-limit:]
    return {
        "count": len(traces),
        "traces": [t.to_dict() for t in shown],
        "critical_path": {
            stream: v.to_dict() for stream, v in sorted(verdicts.items())
        },
        "clock": {
            "offset_bound": align.offset_bound if align is not None else 0.0,
            "samples": align.samples if align is not None else 0,
        },
    }
