"""Trace contexts and the head-based sampling decision.

Sampling is decided **once**, at the feeder, before a chunk enters the
pipeline (head-based): every downstream hop merely forwards the mark.
That keeps the hot path to a single attribute test per chunk and makes
a trace all-or-nothing — a sampled chunk is observed at every stage or
not at all, so assembled traces never have tail-sampling holes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceContext:
    """Membership mark for one sampled chunk.

    The identity *is* the (stream, chunk) pair the pipeline already
    carries in every queue item, ring record, and wire frame — no
    separate trace id travels with the data, only one flag bit.
    """

    stream_id: str
    chunk_id: int

    @property
    def key(self) -> tuple[str, int]:
        return (self.stream_id, self.chunk_id)


class HeadSampler:
    """1-in-N head sampling with an optional per-stream trace cap.

    ``sample == 0`` disables tracing entirely (:attr:`enabled` is then
    False and :meth:`sample_chunk` always returns None — callers can
    keep a single unconditional call).  ``sample == 1`` traces every
    chunk.  ``per_stream_cap`` bounds how many traces one stream may
    start, so a 1k-stream run cannot flood the span store no matter
    how long it runs.

    Thread-safe: feeders in different threads may share one sampler.
    """

    def __init__(self, sample: int = 0, per_stream_cap: int = 0) -> None:
        if sample < 0:
            raise ValueError(f"trace sample must be >= 0, got {sample}")
        if per_stream_cap < 0:
            raise ValueError(
                f"per-stream trace cap must be >= 0, got {per_stream_cap}"
            )
        self.sample = sample
        self.per_stream_cap = per_stream_cap
        self._lock = threading.Lock()
        self._seen: dict[str, int] = {}
        self._taken: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.sample > 0

    def sample_chunk(self, stream_id: str, chunk_id: int) -> TraceContext | None:
        """The feeder's per-chunk decision: a context, or None.

        The first chunk of every stream is always eligible (offset 0 of
        the 1-in-N pattern), so even a short stream yields a trace.
        """
        if self.sample <= 0:
            return None
        with self._lock:
            seen = self._seen.get(stream_id, 0)
            self._seen[stream_id] = seen + 1
            if seen % self.sample:
                return None
            taken = self._taken.get(stream_id, 0)
            if self.per_stream_cap and taken >= self.per_stream_cap:
                return None
            self._taken[stream_id] = taken + 1
        return TraceContext(stream_id, chunk_id)

    def traces_started(self, stream_id: str | None = None) -> int:
        """Traces begun so far (for one stream, or in total)."""
        with self._lock:
            if stream_id is not None:
                return self._taken.get(stream_id, 0)
            return sum(self._taken.values())
