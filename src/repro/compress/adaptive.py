"""Per-chunk adaptive codec selection.

The compressor is the dominant stage cost in both substrates, and the
best codec depends on the payload: RNG noise is incompressible (any
cycle spent on it is wasted), smooth uint16 projections reward the
filter stacks, and the answer drifts as the instrument scans.  The
:class:`CodecSelector` treats the choice as a tiny contextual bandit:

- **context** — a byte-entropy estimate of the chunk quantized into
  bands: a Hartley (log2-of-distinct-bytes) estimate over a tiny
  middle sample (:func:`hartley_band`, a couple of microseconds), with
  the exact Shannon estimator (:func:`byte_entropy`) kept for
  analysis;
- **arms** — the allowed codec set;
- **feedback** — an exponentially-weighted moving average of measured
  compress throughput (and ratio) per ``(band, codec)``, updated from
  small-sample probes of *every* arm plus timed real compress calls on
  probe visits, so a codec that fell behind gets re-tried after the
  payload distribution shifts.

Between probe visits the selector serves a cached per-band choice with
no lock and no timing — the steady-state tax must be near zero or the
selector penalizes exactly the fast codecs it exists to pick.  When
every band agrees on one winner (the common converged state, and the
whole story for a single-arm pool) the selector collapses further to a
*uniform* fast path that skips even the per-chunk entropy band: one
attribute read and a counter decrement per chunk, with a full banded
probe visit every ``probe_interval`` chunks to notice drift.

:class:`AdaptiveCodec` wraps a selector behind the ordinary
:class:`~repro.compress.codec.Codec` interface.  Its
:meth:`~AdaptiveCodec.compress_with_id` returns the *chosen* codec's
wire id, which the frame header carries to the receiver — so the
decompressor auto-selects and nothing adaptive ever crosses the wire.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.compress.codec import (
    Codec,
    CodecSpec,
    register_codec,
    resolve_codec,
)
from repro.util.errors import CodecError, ValidationError

#: Default codec set: covers both ends of the frontier without the
#: pure-Python LZ4 stack (opt in via ``allowed=``).
DEFAULT_ALLOWED: tuple[str, ...] = ("zlib", "null")

#: Entropy bands: bits/byte in [0, 8] quantized to integers.
_BANDS = 8


def byte_entropy(data: bytes, sample_bytes: int = 65536) -> float:
    """Shannon entropy estimate in bits/byte over a bounded prefix.

    A numpy ``bincount`` over at most ``sample_bytes`` bytes — cheap
    enough to run on every chunk (microseconds at the default sample).
    """
    if not data:
        return 0.0
    sample = np.frombuffer(data, dtype=np.uint8, count=min(len(data), sample_bytes))
    counts = np.bincount(sample, minlength=256)
    probs = counts[counts > 0] / sample.size
    return float(-(probs * np.log2(probs)).sum())


def entropy_band(entropy: float) -> int:
    """Quantize an entropy estimate into one of the selector's bands."""
    return min(_BANDS - 1, max(0, int(entropy)))


#: Bytes sampled from the middle of a payload for the per-chunk band.
_BAND_SAMPLE = 64


def hartley_band(data: bytes, sample_bytes: int = _BAND_SAMPLE) -> int:
    """Entropy band from a Hartley (log2-of-distinct-bytes) estimate.

    ``len(set(...))`` over a small middle slice is one pure-C pass
    (~2us) where the exact Shannon estimate costs ~20us of numpy fixed
    overhead — and the selector computes a band on *every* chunk, so
    its context has to be nearly free.  Distinct-byte count maps
    monotonically onto the same 0..7 band scale ``entropy_band`` uses:
    constant payloads land in band 0, RNG noise in the top bands.
    """
    if not data:
        return 0
    off = (len(data) - sample_bytes) // 2 if len(data) > sample_bytes else 0
    distinct = len(set(data[off:off + sample_bytes]))
    return min(_BANDS - 1, (distinct - 1).bit_length())


#: Construction-time round-trip probe: varied bytes, length divisible
#: by every filter itemsize (1/2/4/8), so an allowed codec whose
#: *decompression* depends on non-default constructor parameters (e.g.
#: a shuffle itemsize) fails the check instead of corrupting data.
_ROUND_TRIP_PROBE = bytes(range(256)) * 4


class _Uniform:
    """The all-bands-agree fast path: one codec, a probe countdown.

    ``left`` is decremented without the lock; a lost decrement under
    races only means one slightly-late probe visit.
    """

    __slots__ = ("codec", "left")

    def __init__(self, codec: Codec, left: int) -> None:
        self.codec = codec
        self.left = left


@dataclass
class _ArmStats:
    """EWMA throughput/ratio for one (band, codec) arm."""

    throughput: float = 0.0
    ratio: float = 1.0
    samples: int = 0

    def update(self, throughput: float, ratio: float, alpha: float) -> None:
        if self.samples == 0:
            self.throughput = throughput
            self.ratio = ratio
        else:
            self.throughput += alpha * (throughput - self.throughput)
            self.ratio += alpha * (ratio - self.ratio)
        self.samples += 1


class CodecSelector:
    """Chooses a codec per chunk from entropy bands + live feedback.

    ``target_wire_bps`` switches the score from raw compress throughput
    to *effective delivered* throughput ``min(comp, wire * ratio)`` —
    when the network is the bottleneck a slower, tighter codec wins.
    """

    def __init__(
        self,
        allowed: tuple[str, ...] = DEFAULT_ALLOWED,
        *,
        probe_interval: int = 32,
        sample_bytes: int = 4096,
        alpha: float = 0.3,
        target_wire_bps: float | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if len(allowed) < 1:
            raise ValidationError("adaptive codec needs >= 1 allowed codec")
        if probe_interval < 1:
            raise ValidationError("probe_interval must be >= 1")
        if sample_bytes < 64:
            raise ValidationError("sample_bytes must be >= 64")
        if not 0.0 < alpha <= 1.0:
            raise ValidationError("alpha must be in (0, 1]")
        self.allowed = tuple(allowed)
        self.probe_interval = probe_interval
        self.sample_bytes = sample_bytes
        self.alpha = alpha
        self.target_wire_bps = target_wire_bps
        self._clock = clock
        self._codecs: dict[str, Codec] = {
            name: resolve_codec(name) for name in self.allowed
        }
        for name, codec in self._codecs.items():
            if codec.wire_id == 0:
                raise ValidationError(
                    f"adaptive set cannot contain {name!r}: "
                    "it has no wire id for the frame header"
                )
            self._check_default_decompressible(name, codec)
        # Arm stats are keyed by the *allowed entry* (spec strings like
        # "zlib:level=6" are distinct arms); feedback gets a codec
        # instance back, so map identity -> entry.
        self._entry_of: dict[int, str] = {
            id(codec): name for name, codec in self._codecs.items()
        }
        self._stats: dict[tuple[int, str], _ArmStats] = {}
        self._seen: dict[int, int] = {}
        # band -> (winning codec, fast-path uses left before a probe).
        # Read without the lock: dict get/set are single bytecode ops
        # under the GIL, and a lost countdown decrement only means one
        # slightly-early probe.
        self._fast: dict[int, tuple[Codec, int]] = {}
        # Set whenever every band's cached winner is the same codec:
        # then chunks skip banding entirely until the countdown expires
        # and one full probe visit re-checks the distribution.
        self._uniform: _Uniform | None = None
        self._lock = threading.Lock()

    @staticmethod
    def _check_default_decompressible(name: str, codec: Codec) -> None:
        """Reject arms a default-constructed receiver cannot invert.

        Frames carry only the wire id, so the receive side resolves
        decompressors with default construction
        (:func:`~repro.compress.codec.decompressor_for`).  An allowed
        entry like ``shuffle-lz4:itemsize=4`` would compress with one
        itemsize and unshuffle with another — silently corrupting data,
        since checksums cover the *compressed* payload.  Catch it here,
        at spec-validation time, with a real round trip.
        """
        try:
            default = type(codec)()
            restored = default.decompress(codec.compress(_ROUND_TRIP_PROBE))
        except (TypeError, ValidationError, CodecError) as exc:
            raise ValidationError(
                f"adaptive set cannot contain {name!r}: receivers "
                f"resolve decompressors by wire id with default "
                f"construction, and a default "
                f"{type(codec).__name__} cannot invert it ({exc})"
            ) from exc
        if restored != _ROUND_TRIP_PROBE:
            raise ValidationError(
                f"adaptive set cannot contain {name!r}: its parameters "
                f"change the wire format, and the receive side "
                f"decompresses with a default-constructed "
                f"{type(codec).__name__} (frames carry only the wire "
                "id) — use registry defaults in adaptive pools"
            )

    # -- scoring ---------------------------------------------------------

    def _score(self, stats: _ArmStats) -> float:
        if self.target_wire_bps is None:
            return stats.throughput
        return min(stats.throughput, self.target_wire_bps * stats.ratio)

    def _probe(self, band: int, data: bytes) -> None:
        """Time every allowed codec on a small sample of ``data``."""
        sample = data[: self.sample_bytes]
        if not sample:
            return
        for name, codec in self._codecs.items():
            start = self._clock()
            out = codec.compress(sample)
            elapsed = self._clock() - start
            throughput = len(sample) / max(elapsed, 1e-9)
            ratio = len(sample) / max(len(out), 1)
            self._stats.setdefault((band, name), _ArmStats()).update(
                throughput, ratio, self.alpha
            )

    def _argmax(self, band: int) -> Codec:
        """Best-scoring allowed codec for ``band`` (call under lock)."""
        best_name = self.allowed[0]
        best_score = -1.0
        for name in self.allowed:
            stats = self._stats.get((band, name))
            score = 0.0 if stats is None else self._score(stats)
            if score > best_score:
                best_name, best_score = name, score
        return self._codecs[best_name]

    # -- the public protocol ---------------------------------------------

    def band_of(self, data: bytes) -> int:
        """The context band this payload falls into (Hartley estimate)."""
        return hartley_band(data)

    def select(self, data: bytes) -> tuple[Codec, int, bool]:
        """Pick ``(codec, band, measure)`` for one chunk payload.

        ``measure`` is True on probe visits — the caller should time its
        real compress call and :meth:`feedback` the result.  Between
        probes the cached per-band winner is served with no lock, and
        when every band agrees on one winner the banding itself is
        skipped (``band`` is then ``-1``: only meaningful alongside
        ``measure=True``, which the uniform path never returns).
        """
        uni = self._uniform
        if uni is not None and uni.left > 0:
            uni.left -= 1
            return uni.codec, -1, False
        band = self.band_of(data)
        if uni is None:
            fast = self._fast.get(band)
            if fast is not None and fast[1] > 0:
                codec, left = fast
                self._fast[band] = (codec, left - 1)
                return codec, band, False
        return self._slow_select(band, data), band, True

    def _slow_select(self, band: int, data: bytes) -> Codec:
        """The probe visit: time every arm, re-pick, reset fast paths."""
        with self._lock:
            self._seen[band] = self._seen.get(band, 0) + 1
            self._probe(band, data)
            best = self._argmax(band)
            self._fast[band] = (best, self.probe_interval - 1)
            self._refresh_uniform()
            return best

    def _refresh_uniform(self) -> None:
        """Enable the no-banding fast path iff all bands agree (call
        under the lock)."""
        winners = {id(fast[0]) for fast in self._fast.values()}
        if len(winners) == 1:
            codec = next(iter(self._fast.values()))[0]
            self._uniform = _Uniform(codec, self.probe_interval - 1)
        else:
            self._uniform = None

    def choose(self, data: bytes, band: int | None = None) -> Codec:
        """Pick the codec for one chunk payload.

        The explicit-band analysis API: always banded, never the
        uniform fast path, so callers probing a specific band (tests,
        notebooks) see exactly that band's state.
        """
        if band is None:
            band = self.band_of(data)
        fast = self._fast.get(band)
        if fast is not None and fast[1] > 0:
            codec, left = fast
            self._fast[band] = (codec, left - 1)
            return codec
        return self._slow_select(band, data)

    def feedback(
        self,
        codec: Codec,
        band: int,
        data_len: int,
        wire_len: int,
        seconds: float,
    ) -> None:
        """Fold a real compress call back into the arm statistics."""
        if data_len <= 0:
            return
        throughput = data_len / max(seconds, 1e-9)
        ratio = data_len / max(wire_len, 1)
        entry = self._entry_of.get(id(codec), codec.name)
        with self._lock:
            self._stats.setdefault((band, entry), _ArmStats()).update(
                throughput, ratio, self.alpha
            )
            fast = self._fast.get(band)
            if fast is not None:
                self._fast[band] = (self._argmax(band), fast[1])
                self._refresh_uniform()

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Arm statistics for reports: ``{"band/codec": {...}}``."""
        with self._lock:
            return {
                f"{band}/{name}": {
                    "throughput": s.throughput,
                    "ratio": s.ratio,
                    "samples": s.samples,
                }
                for (band, name), s in sorted(self._stats.items())
            }


@register_codec(wire_id=0)
class AdaptiveCodec(Codec):
    """A :class:`Codec` that picks per chunk from an allowed set.

    Wire id 0: frames never carry "adaptive" — they carry the chosen
    concrete codec's id, so any receiver decodes them.
    """

    name = "adaptive"

    def __init__(
        self,
        allowed: tuple[str, ...] = DEFAULT_ALLOWED,
        probe_interval: int = 32,
        sample_bytes: int = 4096,
        target_wire_bps: float | None = None,
    ) -> None:
        if isinstance(allowed, str):  # spec strings give one name
            allowed = (allowed,)
        self.selector = CodecSelector(
            tuple(allowed),
            probe_interval=probe_interval,
            sample_bytes=sample_bytes,
            target_wire_bps=target_wire_bps,
        )

    @property
    def spec(self) -> CodecSpec:
        """The serializable construction spec (crosses to mp workers)."""
        sel = self.selector
        params: dict[str, object] = {"allowed": sel.allowed}
        if sel.probe_interval != 32:
            params["probe_interval"] = sel.probe_interval
        if sel.sample_bytes != 4096:
            params["sample_bytes"] = sel.sample_bytes
        if sel.target_wire_bps is not None:
            params["target_wire_bps"] = sel.target_wire_bps
        return CodecSpec(self.name, params)

    def compress_with_id(self, data: bytes) -> tuple[bytes, int]:
        sel = self.selector
        codec, band, measure = sel.select(data)
        if measure:
            start = sel._clock()
            out = codec.compress(data)
            sel.feedback(codec, band, len(data), len(out), sel._clock() - start)
        else:
            out = codec.compress(data)
        return out, codec.wire_id

    def compress(self, data: bytes) -> bytes:
        return self.compress_with_id(data)[0]

    def decompress(self, data: bytes) -> bytes:
        raise CodecError(
            "adaptive codec cannot decompress: frames carry the concrete "
            "codec's wire id, resolve the decompressor from that"
        )
