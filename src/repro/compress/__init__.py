"""Compression substrate.

The paper compresses every chunk with LZ4 (2:1 average on tomographic
projections).  This package provides:

- :mod:`repro.compress.lz4_block` — a from-scratch, format-correct LZ4
  *block* compressor/decompressor (pure Python; verified by round-trip
  property tests and hand-checked vectors);
- :mod:`repro.compress.xxhash` — xxHash32, needed by the LZ4 frame
  format's checksums;
- :mod:`repro.compress.lz4_frame` — the LZ4 *frame* container (magic,
  descriptor, block sizes, checksums) over the block codec;
- :mod:`repro.compress.codec` — the codec registry the runtime uses:
  a :func:`register_codec` decorator, the serializable
  :class:`CodecSpec`, and :func:`resolve_codec` — with LZ4, the
  shuffle/delta filter stacks, zlib, bz2, and a null codec built in;
- :mod:`repro.compress.adaptive` — per-chunk codec selection from a
  byte-entropy probe plus EWMA throughput/ratio feedback.

Simulation never runs a codec on the hot path — it uses calibrated
throughput constants (:mod:`repro.core.params`) and measured ratios.
"""

from repro.compress.adaptive import (
    AdaptiveCodec,
    CodecSelector,
    byte_entropy,
)
from repro.compress.codec import (
    Bz2Codec,
    Codec,
    CodecSpec,
    LZ4Codec,
    NullCodec,
    ZlibCodec,
    available_codecs,
    codec_spec,
    decompressor_for,
    get_codec,
    presets,
    register_codec,
    resolve_codec,
    wire_codec_name,
)
from repro.compress.lz4_block import compress_block, decompress_block
from repro.compress.lz4_frame import compress_frame, decompress_frame
from repro.compress.xxhash import xxhash32

__all__ = [
    "AdaptiveCodec",
    "Bz2Codec",
    "Codec",
    "CodecSelector",
    "CodecSpec",
    "LZ4Codec",
    "NullCodec",
    "ZlibCodec",
    "available_codecs",
    "byte_entropy",
    "codec_spec",
    "compress_block",
    "compress_frame",
    "decompress_block",
    "decompress_frame",
    "decompressor_for",
    "get_codec",
    "presets",
    "register_codec",
    "resolve_codec",
    "wire_codec_name",
    "xxhash32",
]
