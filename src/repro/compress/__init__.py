"""Compression substrate.

The paper compresses every chunk with LZ4 (2:1 average on tomographic
projections).  This package provides:

- :mod:`repro.compress.lz4_block` — a from-scratch, format-correct LZ4
  *block* compressor/decompressor (pure Python; verified by round-trip
  property tests and hand-checked vectors);
- :mod:`repro.compress.xxhash` — xxHash32, needed by the LZ4 frame
  format's checksums;
- :mod:`repro.compress.lz4_frame` — the LZ4 *frame* container (magic,
  descriptor, block sizes, checksums) over the block codec;
- :mod:`repro.compress.codec` — the codec interface the runtime uses,
  with LZ4, a zlib-backed codec (C speed, for live demos where pure-
  Python LZ4 would dominate wall time), and a null codec for ablations.

Simulation never runs a codec on the hot path — it uses calibrated
throughput constants (:mod:`repro.core.params`) and measured ratios.
"""

from repro.compress.codec import (
    Codec,
    LZ4Codec,
    NullCodec,
    ZlibCodec,
    available_codecs,
    get_codec,
)
from repro.compress.lz4_block import compress_block, decompress_block
from repro.compress.lz4_frame import compress_frame, decompress_frame
from repro.compress.xxhash import xxhash32

__all__ = [
    "Codec",
    "LZ4Codec",
    "NullCodec",
    "ZlibCodec",
    "available_codecs",
    "compress_block",
    "compress_frame",
    "decompress_block",
    "decompress_frame",
    "get_codec",
    "xxhash32",
]
