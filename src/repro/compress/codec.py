"""Codec registry and interface used by the streaming runtime.

A :class:`Codec` turns a chunk payload into a smaller wire payload and
back.  The runtime is codec-agnostic; the paper uses LZ4, which is the
default.  ``ZlibCodec`` (stdlib, C speed) exists because the pure-Python
LZ4 would dominate wall-clock time in *live* (real-thread) runs; the
simulator never executes a codec on its hot path.

Codecs register through the :func:`register_codec` decorator, which
assigns each class a stable one-byte **wire id** carried in the frame
header so the receive side can pick the matching decompressor without
out-of-band configuration (wire id 0 means "whatever the pipeline was
configured with", keeping static-codec runs byte-identical to older
senders).  Third-party codecs plug in without editing this module:

    @register_codec(wire_id=42)
    class MyCodec(Codec):
        name = "my-codec"
        ...

:class:`CodecSpec` is the serializable form — a name plus constructor
kwargs — used by plan files, CLI flags, and the process-mode boundary
(a spec string crosses to spawn'd workers; instances never pickle).
"""

from __future__ import annotations

import bz2
import threading
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, TypeVar

from repro.compress.lz4_frame import compress_frame, decompress_frame
from repro.compress.shuffle import (
    delta_decode,
    delta_encode,
    shuffle_bytes,
    unshuffle_bytes,
)
from repro.util.errors import CodecError, ValidationError

#: Wire id meaning "the codec the pipeline was configured with" — the
#: value legacy frames carry, so static-codec runs stay byte-identical.
WIRE_ID_DEFAULT = 0


class Codec(ABC):
    """Lossless chunk codec."""

    #: Registry key; subclasses set this.
    name: str = ""
    #: One-byte id carried in frame headers (set by :func:`register_codec`;
    #: 0 = not wire-addressable, frames fall back to the configured codec).
    wire_id: int = WIRE_ID_DEFAULT

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress one chunk payload."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`; raises CodecError on malformed data."""

    def compress_with_id(self, data: bytes) -> tuple[bytes, int]:
        """Compress and report the codec wire id to stamp on the frame.

        Static codecs return :data:`WIRE_ID_DEFAULT` (0): the receiver
        decompresses with the codec *it* was configured with — which
        preserves constructor kwargs (e.g. a shuffle itemsize) and
        keeps the wire bytes identical to pre-codec-id senders.
        Adaptive codecs override this to return the id of the
        per-chunk choice so the receiver auto-selects a decompressor.
        """
        return self.compress(data), WIRE_ID_DEFAULT

    def ratio(self, data: bytes, compressed: bytes | None = None) -> float:
        """Compression ratio (original/compressed) achieved on ``data``.

        Pass the wire payload you already have as ``compressed`` to
        compute the ratio from lengths alone — without it this method
        has to run the compressor once, which on a hot path would mean
        compressing the same chunk twice.
        """
        if not data:
            return 1.0
        if compressed is None:
            compressed = self.compress(data)
        return len(data) / len(compressed)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type[Codec]] = {}
_WIRE_IDS: dict[int, str] = {}
_DECOMPRESSORS: dict[int, Codec] = {}
_DECOMP_LOCK = threading.Lock()

C = TypeVar("C", bound=type[Codec])


def register_codec(*, wire_id: int) -> Callable[[C], C]:
    """Class decorator adding a :class:`Codec` subclass to the registry.

    ``wire_id`` must be unique in ``[1, 255]`` (0 is reserved for "the
    configured codec") and is stamped onto the class.  The class must
    set a non-empty ``name``.  Registering a duplicate name or wire id
    raises :class:`ValidationError` — ids are part of the wire format
    and must never be recycled.
    """

    def _register(cls: C) -> C:
        name = cls.name
        if not name:
            raise ValidationError(
                f"codec class {cls.__name__} must set a non-empty name"
            )
        if not 0 <= wire_id <= 255:
            raise ValidationError(
                f"codec {name!r}: wire_id {wire_id} outside [0, 255]"
            )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValidationError(f"codec name {name!r} already registered")
        if wire_id != WIRE_ID_DEFAULT:
            holder = _WIRE_IDS.get(wire_id)
            if holder is not None and holder != name:
                raise ValidationError(
                    f"codec wire id {wire_id} already taken by {holder!r}"
                )
            _WIRE_IDS[wire_id] = name
        cls.wire_id = wire_id
        _REGISTRY[name] = cls
        return cls

    return _register


def available_codecs() -> list[str]:
    """Registered codec names (presets not included; see ``presets()``)."""
    return sorted(_REGISTRY)


def presets() -> dict[str, "CodecSpec"]:
    """Preset aliases resolvable anywhere a codec name is accepted."""
    return dict(_PRESETS)


def codec_class(name: str) -> type[Codec]:
    """Look up a registered codec class by name."""
    cls = _REGISTRY.get(name)
    if cls is None and name == "adaptive":
        # The adaptive codec lives in its own module and registers on
        # import; pull it in lazily so ``resolve_codec("adaptive")``
        # works no matter which module the caller imported first.
        import repro.compress.adaptive  # noqa: F401

        cls = _REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown codec {name!r}; available: {available_codecs()}"
        )
    return cls


def wire_codec_name(wire_id: int) -> str:
    """The registry name behind a frame's wire id (telemetry labels)."""
    if wire_id == WIRE_ID_DEFAULT:
        return "default"
    return _WIRE_IDS.get(wire_id, f"unknown-{wire_id}")


def get_codec(name: str, **kwargs: Any) -> Codec:
    """Instantiate a codec by registry name (presets allowed)."""
    return CodecSpec.parse(name).with_params(**kwargs).create()


def decompressor_for(wire_id: int) -> Codec:
    """The cached decompressor instance for a frame's wire id.

    Instances are constructed with default kwargs: codecs whose
    *decompression* depends on constructor parameters (e.g. the shuffle
    itemsize) must only appear in adaptive sets with those defaults.
    """
    codec = _DECOMPRESSORS.get(wire_id)  # lock-free: runs per frame
    if codec is not None:
        return codec
    with _DECOMP_LOCK:
        codec = _DECOMPRESSORS.get(wire_id)
        if codec is None:
            try:
                name = _WIRE_IDS[wire_id]
            except KeyError as exc:
                raise CodecError(
                    f"frame carries unknown codec wire id {wire_id}"
                ) from exc
            codec = _REGISTRY[name]()
            _DECOMPRESSORS[wire_id] = codec
        return codec


# ---------------------------------------------------------------------------
# the serializable spec
# ---------------------------------------------------------------------------

#: Parameter values a spec may carry — everything JSON round-trips.
ParamValue = "bool | int | float | str | tuple[str, ...]"


@dataclass(frozen=True)
class CodecSpec:
    """A codec by name plus constructor kwargs — the serializable form.

    Specs cross every boundary instances cannot: plan files, CLI flags,
    the spawn'd process-mode workers.  The string form is
    ``name`` or ``name:key=value,key=value`` with ``|``-separated
    lists (``adaptive:allowed=zlib|null,probe_interval=16``).
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("codec spec needs a non-empty name")

    def with_params(self, **extra: Any) -> "CodecSpec":
        if not extra:
            return self
        merged = dict(self.params)
        merged.update(extra)
        return CodecSpec(self.name, merged)

    def create(self) -> Codec:
        """Instantiate, raising :class:`ValidationError` on bad specs."""
        cls = codec_class(self.name)
        try:
            return cls(**dict(self.params))
        except TypeError as exc:
            raise ValidationError(
                f"codec {self.name!r} rejected params "
                f"{sorted(self.params)}: {exc}"
            ) from exc

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"name": self.name}
        if self.params:
            doc["params"] = {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in sorted(self.params.items())
            }
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "CodecSpec":
        unknown = set(doc) - {"name", "params"}
        if unknown:
            raise ValidationError(
                f"codec spec has unknown keys {sorted(unknown)}"
            )
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            raise ValidationError("codec spec needs a string 'name'")
        params = doc.get("params", {})
        if not isinstance(params, Mapping):
            raise ValidationError("codec spec 'params' must be a mapping")
        return cls(
            name,
            {
                k: tuple(v) if isinstance(v, list) else v
                for k, v in params.items()
            },
        )

    def __str__(self) -> str:
        if not self.params:
            return self.name
        parts = []
        for key, value in sorted(self.params.items()):
            if isinstance(value, tuple):
                rendered = "|".join(str(v) for v in value)
            else:
                rendered = str(value)
            parts.append(f"{key}={rendered}")
        return f"{self.name}:{','.join(parts)}"

    @classmethod
    def parse(cls, text: str) -> "CodecSpec":
        """Parse the string form, expanding preset aliases."""
        text = text.strip()
        if not text:
            raise ValidationError("empty codec spec")
        name, _, tail = text.partition(":")
        preset = _PRESETS.get(name)
        base = preset if preset is not None else cls(name)
        if not tail:
            return base
        params: dict[str, Any] = dict(base.params)
        for item in tail.split(","):
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValidationError(
                    f"bad codec spec segment {item!r} in {text!r} "
                    "(expected key=value)"
                )
            params[key] = _coerce(raw.strip())
        return cls(base.name, params)


def _coerce(raw: str) -> Any:
    """Best-effort typing for spec-string values."""
    if "|" in raw:
        return tuple(part.strip() for part in raw.split("|") if part.strip())
    lowered = raw.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def resolve_codec(spec: "str | CodecSpec | Codec") -> Codec:
    """The one way to turn any codec reference into an instance.

    Accepts a name / spec string (``"zlib"``, ``"zlib:level=6"``,
    ``"adaptive:allowed=zlib|null"``), a :class:`CodecSpec`, or an
    already-built :class:`Codec` (returned as-is).
    """
    if isinstance(spec, Codec):
        return spec
    if isinstance(spec, CodecSpec):
        return spec.create()
    if isinstance(spec, str):
        return CodecSpec.parse(spec).create()
    raise ValidationError(
        f"cannot resolve a codec from {type(spec).__name__}"
    )


def codec_spec(codec: "str | CodecSpec | Codec") -> CodecSpec:
    """The serializable spec for a codec reference.

    Instances report their construction spec when they expose one
    (:meth:`AdaptiveCodec.spec` does); otherwise the bare name — good
    enough for every registered codec whose defaults round-trip.
    """
    if isinstance(codec, CodecSpec):
        return codec
    if isinstance(codec, str):
        return CodecSpec.parse(codec)
    spec = getattr(codec, "spec", None)
    if isinstance(spec, CodecSpec):
        return spec
    return CodecSpec(codec.name)


# ---------------------------------------------------------------------------
# built-in codecs
# ---------------------------------------------------------------------------


@register_codec(wire_id=1)
class LZ4Codec(Codec):
    """The paper's codec: LZ4 frames over from-scratch LZ4 blocks."""

    name = "lz4"

    def __init__(
        self, acceleration: int = 1, block_max_size: int = 4 * 1024 * 1024
    ) -> None:
        if acceleration < 1:
            raise ValidationError("acceleration must be >= 1")
        self.acceleration = acceleration
        self.block_max_size = block_max_size

    def compress(self, data: bytes) -> bytes:
        return compress_frame(
            data,
            acceleration=self.acceleration,
            block_max_size=self.block_max_size,
        )

    def decompress(self, data: bytes) -> bytes:
        return decompress_frame(data)


@register_codec(wire_id=2)
class ShuffleLZ4Codec(Codec):
    """Byte-shuffle filter + LZ4 — how beamline pipelines actually reach
    ~2:1 on uint16 projections (HDF5 shuffle / blosc style).

    ``itemsize`` must divide every payload (2 for uint16 detectors).
    """

    name = "shuffle-lz4"

    def __init__(
        self,
        itemsize: int = 2,
        acceleration: int = 1,
        block_max_size: int = 4 * 1024 * 1024,
    ) -> None:
        if itemsize < 1:
            raise ValidationError("itemsize must be >= 1")
        self.itemsize = itemsize
        self._lz4 = LZ4Codec(acceleration, block_max_size)

    def compress(self, data: bytes) -> bytes:
        return self._lz4.compress(shuffle_bytes(data, self.itemsize))

    def decompress(self, data: bytes) -> bytes:
        return unshuffle_bytes(self._lz4.decompress(data), self.itemsize)


@register_codec(wire_id=3)
class DeltaShuffleLZ4Codec(Codec):
    """Delta + byte-shuffle + LZ4 — the full scientific-filter stack.

    On smooth uint16 projections the delta high-byte plane is almost all
    zeros, so the achieved ratio is dominated by the (noisy) low-byte
    plane — landing at the ~2:1 the paper reports for its tomographic
    chunks.  This codec is the repo default for projection payloads.
    """

    name = "delta-shuffle-lz4"

    def __init__(
        self,
        itemsize: int = 2,
        acceleration: int = 1,
        block_max_size: int = 4 * 1024 * 1024,
    ) -> None:
        if itemsize not in (1, 2, 4, 8):
            raise ValidationError("itemsize must be 1, 2, 4 or 8")
        self.itemsize = itemsize
        self._lz4 = LZ4Codec(acceleration, block_max_size)

    def compress(self, data: bytes) -> bytes:
        filtered = shuffle_bytes(
            delta_encode(data, self.itemsize), self.itemsize
        )
        return self._lz4.compress(filtered)

    def decompress(self, data: bytes) -> bytes:
        filtered = self._lz4.decompress(data)
        return delta_decode(
            unshuffle_bytes(filtered, self.itemsize), self.itemsize
        )


@register_codec(wire_id=4)
class ZlibCodec(Codec):
    """stdlib zlib — a fast stand-in for live (real-thread) pipelines."""

    name = "zlib"

    def __init__(self, level: int = 1) -> None:
        if not 0 <= level <= 9:
            raise ValidationError("zlib level must be in [0, 9]")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CodecError(f"zlib decompression failed: {exc}") from exc


@register_codec(wire_id=5)
class NullCodec(Codec):
    """Identity codec — the "no compression" ablation."""

    name = "null"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


@register_codec(wire_id=6)
class Bz2Codec(Codec):
    """stdlib bz2 — high-ratio, low-throughput end of the frontier."""

    name = "bz2"

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValidationError("bz2 level must be in [1, 9]")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return bz2.decompress(data)
        except (OSError, ValueError) as exc:
            raise CodecError(f"bz2 decompression failed: {exc}") from exc


def _register_zstd() -> bool:
    """Register a real zstd codec when the stdlib has one (3.14+)."""
    try:
        from compression import zstd  # type: ignore[import-not-found]
    except ImportError:
        return False

    try:
        _LEVEL_MIN, _LEVEL_MAX = (
            zstd.CompressionParameter.compression_level.bounds()
        )
    except AttributeError:
        _LEVEL_MIN, _LEVEL_MAX = -131072, 22  # upstream zstd limits

    @register_codec(wire_id=7)
    class ZstdCodec(Codec):
        """stdlib zstd (``compression.zstd``, Python 3.14+)."""

        name = "zstd"

        def __init__(self, level: int = 3) -> None:
            if not _LEVEL_MIN <= level <= _LEVEL_MAX:
                raise ValidationError(
                    f"zstd level must be in [{_LEVEL_MIN}, {_LEVEL_MAX}]"
                )
            self.level = level

        def compress(self, data: bytes) -> bytes:
            return zstd.compress(data, self.level)  # type: ignore[no-any-return]

        def decompress(self, data: bytes) -> bytes:
            try:
                return zstd.decompress(data)  # type: ignore[no-any-return]
            except Exception as exc:
                raise CodecError(f"zstd decompression failed: {exc}") from exc

    return True


HAS_STDLIB_ZSTD = _register_zstd()

#: Preset aliases: spec strings users can pass wherever a codec name
#: goes.  Until the stdlib ships zstd everywhere (3.14+), the ``zstd-*``
#: presets map onto zlib levels with roughly matching speed/ratio
#: trade-offs — the wire carries plain zlib, so receivers need nothing.
_PRESETS: dict[str, CodecSpec] = {
    "zstd-fast": CodecSpec("zlib", {"level": 1}),
    "zstd-default": CodecSpec("zlib", {"level": 6}),
    "zstd-high": CodecSpec("zlib", {"level": 9}),
}
if HAS_STDLIB_ZSTD:  # pragma: no cover - Python 3.14+ only
    _PRESETS = {
        "zstd-fast": CodecSpec("zstd", {"level": 1}),
        "zstd-default": CodecSpec("zstd", {"level": 3}),
        "zstd-high": CodecSpec("zstd", {"level": 17}),
    }


def _iter_registry() -> Iterator[tuple[str, type[Codec]]]:
    """(name, class) pairs — test/bench introspection hook."""
    return iter(sorted(_REGISTRY.items()))
