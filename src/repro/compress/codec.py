"""Codec interface used by the streaming runtime.

A :class:`Codec` turns a chunk payload into a smaller wire payload and
back.  The runtime is codec-agnostic; the paper uses LZ4, which is the
default.  ``ZlibCodec`` (stdlib, C speed) exists because the pure-Python
LZ4 would dominate wall-clock time in *live* (real-thread) runs; the
simulator never executes a codec on its hot path.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod

from repro.compress.lz4_frame import compress_frame, decompress_frame
from repro.compress.shuffle import (
    delta_decode,
    delta_encode,
    shuffle_bytes,
    unshuffle_bytes,
)
from repro.util.errors import CodecError, ValidationError


class Codec(ABC):
    """Lossless chunk codec."""

    #: Registry key; subclasses set this.
    name: str = ""

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress one chunk payload."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`; raises CodecError on malformed data."""

    def ratio(self, data: bytes) -> float:
        """Compression ratio (original/compressed) achieved on ``data``."""
        if not data:
            return 1.0
        return len(data) / len(self.compress(data))


class LZ4Codec(Codec):
    """The paper's codec: LZ4 frames over from-scratch LZ4 blocks."""

    name = "lz4"

    def __init__(self, acceleration: int = 1, block_max_size: int = 4 * 1024 * 1024):
        if acceleration < 1:
            raise ValidationError("acceleration must be >= 1")
        self.acceleration = acceleration
        self.block_max_size = block_max_size

    def compress(self, data: bytes) -> bytes:
        return compress_frame(
            data,
            acceleration=self.acceleration,
            block_max_size=self.block_max_size,
        )

    def decompress(self, data: bytes) -> bytes:
        return decompress_frame(data)


class ShuffleLZ4Codec(Codec):
    """Byte-shuffle filter + LZ4 — how beamline pipelines actually reach
    ~2:1 on uint16 projections (HDF5 shuffle / blosc style).

    ``itemsize`` must divide every payload (2 for uint16 detectors).
    """

    name = "shuffle-lz4"

    def __init__(
        self,
        itemsize: int = 2,
        acceleration: int = 1,
        block_max_size: int = 4 * 1024 * 1024,
    ):
        if itemsize < 1:
            raise ValidationError("itemsize must be >= 1")
        self.itemsize = itemsize
        self._lz4 = LZ4Codec(acceleration, block_max_size)

    def compress(self, data: bytes) -> bytes:
        return self._lz4.compress(shuffle_bytes(data, self.itemsize))

    def decompress(self, data: bytes) -> bytes:
        return unshuffle_bytes(self._lz4.decompress(data), self.itemsize)


class DeltaShuffleLZ4Codec(Codec):
    """Delta + byte-shuffle + LZ4 — the full scientific-filter stack.

    On smooth uint16 projections the delta high-byte plane is almost all
    zeros, so the achieved ratio is dominated by the (noisy) low-byte
    plane — landing at the ~2:1 the paper reports for its tomographic
    chunks.  This codec is the repo default for projection payloads.
    """

    name = "delta-shuffle-lz4"

    def __init__(
        self,
        itemsize: int = 2,
        acceleration: int = 1,
        block_max_size: int = 4 * 1024 * 1024,
    ):
        if itemsize not in (1, 2, 4, 8):
            raise ValidationError("itemsize must be 1, 2, 4 or 8")
        self.itemsize = itemsize
        self._lz4 = LZ4Codec(acceleration, block_max_size)

    def compress(self, data: bytes) -> bytes:
        filtered = shuffle_bytes(
            delta_encode(data, self.itemsize), self.itemsize
        )
        return self._lz4.compress(filtered)

    def decompress(self, data: bytes) -> bytes:
        filtered = self._lz4.decompress(data)
        return delta_decode(
            unshuffle_bytes(filtered, self.itemsize), self.itemsize
        )


class ZlibCodec(Codec):
    """stdlib zlib — a fast stand-in for live (real-thread) pipelines."""

    name = "zlib"

    def __init__(self, level: int = 1):
        if not 0 <= level <= 9:
            raise ValidationError("zlib level must be in [0, 9]")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CodecError(f"zlib decompression failed: {exc}") from exc


class NullCodec(Codec):
    """Identity codec — the "no compression" ablation."""

    name = "null"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


_CODECS: dict[str, type[Codec]] = {
    LZ4Codec.name: LZ4Codec,
    ShuffleLZ4Codec.name: ShuffleLZ4Codec,
    DeltaShuffleLZ4Codec.name: DeltaShuffleLZ4Codec,
    ZlibCodec.name: ZlibCodec,
    NullCodec.name: NullCodec,
}


def available_codecs() -> list[str]:
    """Registered codec names."""
    return sorted(_CODECS)


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate a codec by registry name."""
    try:
        cls = _CODECS[name]
    except KeyError as exc:
        raise ValidationError(
            f"unknown codec {name!r}; available: {available_codecs()}"
        ) from exc
    return cls(**kwargs)
