"""LZ4 *block* format codec, implemented from the format specification.

Format recap (https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md):

A block is a sequence of *sequences*.  Each sequence is::

    token | [literal-length extension] | literals
          | offset (2B little-endian) | [match-length extension]

- token high nibble = literal count (15 ⇒ extension bytes follow, each
  adding 255 until a byte < 255 terminates);
- token low nibble  = match length − 4 (same extension scheme);
- offset ∈ [1, 65535] points back into already-decoded output;
- the final sequence carries literals only (no offset);
- end-of-block rules: the last 5 bytes are always literals, and the last
  match must start at least 12 bytes before the end of the block.

The compressor is the classic hash-chain-free "LZ4 fast" scheme: a
hash table over 4-byte prefixes, greedy forward match extension and an
acceleration skip so incompressible input degrades gracefully.  Pure
Python — correctness and ratio are the point (simulated throughput uses
calibrated constants; see DESIGN.md §2).
"""

from __future__ import annotations

from repro.util.errors import CodecError

MIN_MATCH = 4
#: Last match must start at least this many bytes before block end.
MF_LIMIT = 12
#: The final LAST_LITERALS bytes are always emitted as literals.
LAST_LITERALS = 5
MAX_OFFSET = 0xFFFF

_HASH_LOG = 16
_HASH_SIZE = 1 << _HASH_LOG
#: Fibonacci hashing multiplier used by reference LZ4 (2654435761).
_HASH_MULT = 2654435761
#: After this many failed match probes the scan step grows (acceleration).
_SKIP_TRIGGER = 6


def compress_bound(n: int) -> int:
    """Worst-case compressed size for ``n`` input bytes (spec formula)."""
    if n < 0:
        raise CodecError(f"negative input size {n}")
    return n + n // 255 + 16


def _write_length(out: bytearray, length: int) -> None:
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


def compress_block(data: bytes | bytearray | memoryview, acceleration: int = 1) -> bytes:
    """Compress ``data`` into an LZ4 block.

    ``acceleration`` ≥ 1 trades ratio for speed by widening the skip
    step, like the reference ``LZ4_compress_fast``.
    """
    if acceleration < 1:
        raise CodecError("acceleration must be >= 1")
    src = bytes(data)
    n = len(src)
    out = bytearray()
    if n == 0:
        # A zero-byte input compresses to a single empty-literal token.
        out.append(0)
        return bytes(out)
    if n < MF_LIMIT + 1:
        # Too short for any match; emit one literal run.
        _emit_last_literals(out, src, 0)
        return bytes(out)

    table: dict[int, int] = {}
    anchor = 0
    ip = 0
    match_limit = n - MF_LIMIT  # last position where a match may start
    search_count = 0
    step_shift = _SKIP_TRIGGER + (acceleration - 1)

    while ip < match_limit:
        seq = int.from_bytes(src[ip : ip + 4], "little")
        h = ((seq * _HASH_MULT) & 0xFFFFFFFF) >> (32 - _HASH_LOG)
        candidate = table.get(h)
        table[h] = ip
        if (
            candidate is not None
            and ip - candidate <= MAX_OFFSET
            and src[candidate : candidate + 4] == src[ip : ip + 4]
        ):
            # Extend the match forward, respecting the end-of-block rule.
            mlen = 4
            limit = n - LAST_LITERALS
            while ip + mlen < limit and src[candidate + mlen] == src[ip + mlen]:
                mlen += 1
            # Extend backward over pending literals (improves ratio).
            while (
                ip > anchor
                and candidate > 0
                and src[ip - 1] == src[candidate - 1]
            ):
                ip -= 1
                candidate -= 1
                mlen += 1
            _emit_sequence(out, src, anchor, ip, ip - candidate, mlen)
            ip += mlen
            anchor = ip
            search_count = 0
        else:
            search_count += 1
            ip += 1 + (search_count >> step_shift)

    _emit_last_literals(out, src, anchor)
    return bytes(out)


def _emit_sequence(
    out: bytearray,
    src: bytes,
    anchor: int,
    ip: int,
    offset: int,
    mlen: int,
) -> None:
    lit_len = ip - anchor
    ml_code = mlen - MIN_MATCH
    token = (min(lit_len, 15) << 4) | min(ml_code, 15)
    out.append(token)
    if lit_len >= 15:
        _write_length(out, lit_len - 15)
    out += src[anchor:ip]
    out += offset.to_bytes(2, "little")
    if ml_code >= 15:
        _write_length(out, ml_code - 15)


def _emit_last_literals(out: bytearray, src: bytes, anchor: int) -> None:
    lit_len = len(src) - anchor
    token = min(lit_len, 15) << 4
    out.append(token)
    if lit_len >= 15:
        _write_length(out, lit_len - 15)
    out += src[anchor:]


def decompress_block(
    data: bytes | bytearray | memoryview, max_output_size: int | None = None
) -> bytes:
    """Decompress an LZ4 block; raises :class:`CodecError` on malformed
    input or when the output would exceed ``max_output_size``."""
    src = bytes(data)
    n = len(src)
    if n == 0:
        raise CodecError("empty LZ4 block")
    out = bytearray()
    pos = 0
    while True:
        if pos >= n:
            raise CodecError("truncated LZ4 block (missing token)")
        token = src[pos]
        pos += 1
        # -- literals ----------------------------------------------------
        lit_len = token >> 4
        if lit_len == 15:
            lit_len, pos = _read_length(src, pos, lit_len)
        if pos + lit_len > n:
            raise CodecError("literal run overflows block")
        if lit_len:
            out += src[pos : pos + lit_len]
            pos += lit_len
        if max_output_size is not None and len(out) > max_output_size:
            raise CodecError(
                f"output exceeds max_output_size={max_output_size}"
            )
        if pos == n:
            break  # final sequence: literals only
        # -- match ---------------------------------------------------------
        if pos + 2 > n:
            raise CodecError("truncated LZ4 block (missing offset)")
        offset = int.from_bytes(src[pos : pos + 2], "little")
        pos += 2
        if offset == 0:
            raise CodecError("invalid zero offset")
        if offset > len(out):
            raise CodecError(
                f"offset {offset} reaches before block start (have {len(out)})"
            )
        mlen = token & 0x0F
        if mlen == 15:
            mlen, pos = _read_length(src, pos, mlen)
        mlen += MIN_MATCH
        if max_output_size is not None and len(out) + mlen > max_output_size:
            raise CodecError(
                f"output exceeds max_output_size={max_output_size}"
            )
        _copy_match(out, offset, mlen)
    return bytes(out)


def _read_length(src: bytes, pos: int, base: int) -> tuple[int, int]:
    length = base
    while True:
        if pos >= len(src):
            raise CodecError("truncated length extension")
        b = src[pos]
        pos += 1
        length += b
        if b != 255:
            return length, pos


def _copy_match(out: bytearray, offset: int, mlen: int) -> None:
    start = len(out) - offset
    if offset >= mlen:
        # Disjoint copy.
        out += out[start : start + mlen]
        return
    # Overlapping copy replicates the last `offset` bytes; doubling the
    # pattern is equivalent to the spec's byte-at-a-time semantics.
    pattern = out[start:]
    reps, rem = divmod(mlen, offset)
    out += pattern * reps + pattern[:rem]
