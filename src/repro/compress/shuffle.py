"""Byte-shuffle filter (the HDF5 *shuffle* / blosc pre-filter).

Multi-byte scientific samples (uint16 detector counts) have quiet high
bytes and noisy low bytes; interleaved they defeat byte-oriented LZ
matching.  Shuffling to planar order — all byte-0 lanes, then all
byte-1 lanes — lets LZ4 compress the quiet plane almost for free, which
is how real beamline pipelines (HDF5 shuffle+LZ4, bitshuffle) reach the
~2:1 ratios the paper reports on projection data.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import CodecError


def shuffle_bytes(data: bytes, itemsize: int) -> bytes:
    """Reorder ``data`` from interleaved to planar byte order."""
    _check(data, itemsize)
    if itemsize == 1 or not data:
        return data
    arr = np.frombuffer(data, dtype=np.uint8).reshape(-1, itemsize)
    return arr.T.tobytes()


def unshuffle_bytes(data: bytes, itemsize: int) -> bytes:
    """Invert :func:`shuffle_bytes`."""
    _check(data, itemsize)
    if itemsize == 1 or not data:
        return data
    arr = np.frombuffer(data, dtype=np.uint8).reshape(itemsize, -1)
    return arr.T.tobytes()


def delta_encode(data: bytes, itemsize: int = 2) -> bytes:
    """First-order delta + zigzag over little-endian unsigned samples.

    Smooth detector data becomes near-zero differences; zigzag maps the
    signed difference to a small unsigned value (0, −1, 1, −2 → 0, 1, 2,
    3) so the high byte plane is almost all zeros instead of flapping
    between 0x00 and 0xFF for ±1 noise.  This is the standard
    delta/zigzag pre-filter of scientific compression stacks.
    """
    _check(data, itemsize)
    if not data:
        return data
    dtype = _dtype_for(itemsize)
    arr = np.frombuffer(data, dtype=dtype)
    delta = np.empty_like(arr)
    delta[0] = arr[0]
    # Unsigned wrap-around subtraction is exact modular arithmetic.
    np.subtract(arr[1:], arr[:-1], out=delta[1:])
    return _zigzag(delta, itemsize).tobytes()


def delta_decode(data: bytes, itemsize: int = 2) -> bytes:
    """Invert :func:`delta_encode` (unzigzag + modular cumulative sum)."""
    _check(data, itemsize)
    if not data:
        return data
    dtype = _dtype_for(itemsize)
    arr = _unzigzag(np.frombuffer(data, dtype=dtype), itemsize)
    return np.cumsum(arr, dtype=dtype).tobytes()


def _zigzag(arr: np.ndarray, itemsize: int) -> np.ndarray:
    bits = itemsize * 8
    signed = arr.astype(_signed_dtype_for(itemsize))
    z = (signed << 1) ^ (signed >> (bits - 1))
    return z.astype(arr.dtype)


def _unzigzag(arr: np.ndarray, itemsize: int) -> np.ndarray:
    one = np.asarray(1, dtype=arr.dtype)
    return (arr >> one) ^ np.negative(arr & one).astype(arr.dtype)


def _signed_dtype_for(itemsize: int) -> np.dtype:
    return {1: np.dtype("i1"), 2: np.dtype("<i2"), 4: np.dtype("<i4"), 8: np.dtype("<i8")}[itemsize]


def _dtype_for(itemsize: int) -> np.dtype:
    try:
        return {1: np.dtype("u1"), 2: np.dtype("<u2"), 4: np.dtype("<u4"), 8: np.dtype("<u8")}[itemsize]
    except KeyError as exc:
        raise CodecError(
            f"delta filter supports itemsize 1/2/4/8, got {itemsize}"
        ) from exc


def _check(data: bytes, itemsize: int) -> None:
    if itemsize < 1:
        raise CodecError(f"itemsize must be >= 1, got {itemsize}")
    if len(data) % itemsize:
        raise CodecError(
            f"payload of {len(data)} bytes is not a multiple of itemsize {itemsize}"
        )
