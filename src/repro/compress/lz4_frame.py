"""LZ4 *frame* container over the block codec.

Implements the interoperable subset of the LZ4 frame specification
(v1.6.x): magic number, frame descriptor (FLG/BD/HC), independent
blocks with 4-byte size headers (high bit ⇒ stored uncompressed),
optional per-block checksums, EndMark, and optional content checksum —
all checksums via :func:`repro.compress.xxhash.xxhash32`.

Unsupported (rejected on read, never written): linked blocks,
dictionaries, skippable frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.lz4_block import compress_block, decompress_block
from repro.compress.xxhash import xxhash32
from repro.util.errors import CodecError

MAGIC = 0x184D2204
_VERSION = 0b01

#: BD byte "block maximum size" codes -> bytes.
_BLOCK_MAX_SIZES = {4: 64 * 1024, 5: 256 * 1024, 6: 1024 * 1024, 7: 4 * 1024 * 1024}
_DEFAULT_BD_CODE = 7


@dataclass(frozen=True)
class FrameInfo:
    """Parsed frame descriptor."""

    block_max_size: int
    block_checksums: bool
    content_checksum: bool
    content_size: int | None


def compress_frame(
    data: bytes | bytearray | memoryview,
    *,
    block_max_size: int = _BLOCK_MAX_SIZES[_DEFAULT_BD_CODE],
    block_checksums: bool = False,
    content_checksum: bool = True,
    store_content_size: bool = True,
    acceleration: int = 1,
) -> bytes:
    """Wrap ``data`` in an LZ4 frame, compressing block by block."""
    bd_code = None
    for code, size in _BLOCK_MAX_SIZES.items():
        if size == block_max_size:
            bd_code = code
    if bd_code is None:
        raise CodecError(
            f"block_max_size must be one of {sorted(_BLOCK_MAX_SIZES.values())}"
        )
    src = bytes(data)
    out = bytearray()
    out += MAGIC.to_bytes(4, "little")
    flg = (
        (_VERSION << 6)
        | (1 << 5)  # block independence
        | (int(block_checksums) << 4)
        | (int(store_content_size) << 3)
        | (int(content_checksum) << 2)
    )
    bd = bd_code << 4
    descriptor = bytearray([flg, bd])
    if store_content_size:
        descriptor += len(src).to_bytes(8, "little")
    out += descriptor
    out.append((xxhash32(bytes(descriptor)) >> 8) & 0xFF)  # HC byte

    for start in range(0, len(src), block_max_size):
        raw = src[start : start + block_max_size]
        comp = compress_block(raw, acceleration=acceleration)
        if len(comp) < len(raw):
            out += len(comp).to_bytes(4, "little")
            payload = comp
        else:
            out += (len(raw) | 0x80000000).to_bytes(4, "little")
            payload = raw
        out += payload
        if block_checksums:
            out += xxhash32(payload).to_bytes(4, "little")

    out += (0).to_bytes(4, "little")  # EndMark
    if content_checksum:
        out += xxhash32(src).to_bytes(4, "little")
    return bytes(out)


def decompress_frame(data: bytes | bytearray | memoryview) -> bytes:
    """Unwrap and decompress an LZ4 frame; verifies all checksums."""
    src = bytes(data)
    pos = 0

    def take(k: int, what: str) -> bytes:
        nonlocal pos
        if pos + k > len(src):
            raise CodecError(f"truncated frame ({what})")
        chunk = src[pos : pos + k]
        pos += k
        return chunk

    magic = int.from_bytes(take(4, "magic"), "little")
    if magic != MAGIC:
        raise CodecError(f"bad magic 0x{magic:08X}")
    desc_start = pos
    flg, bd = take(2, "descriptor")
    if (flg >> 6) != _VERSION:
        raise CodecError(f"unsupported frame version {flg >> 6}")
    if not (flg >> 5) & 1:
        raise CodecError("linked blocks are not supported")
    if flg & 0b11:
        raise CodecError("reserved FLG bits set / dictionaries unsupported")
    block_checksums = bool((flg >> 4) & 1)
    has_content_size = bool((flg >> 3) & 1)
    content_checksum = bool((flg >> 2) & 1)
    bd_code = (bd >> 4) & 0x7
    if bd & 0b10001111:
        raise CodecError("reserved BD bits set")
    try:
        block_max = _BLOCK_MAX_SIZES[bd_code]
    except KeyError as exc:
        raise CodecError(f"invalid block-max-size code {bd_code}") from exc
    content_size = None
    if has_content_size:
        content_size = int.from_bytes(take(8, "content size"), "little")
    descriptor = src[desc_start:pos]
    hc = take(1, "header checksum")[0]
    if hc != (xxhash32(descriptor) >> 8) & 0xFF:
        raise CodecError("frame descriptor checksum mismatch")

    out = bytearray()
    while True:
        block_size = int.from_bytes(take(4, "block size"), "little")
        if block_size == 0:
            break  # EndMark
        uncompressed = bool(block_size & 0x80000000)
        block_size &= 0x7FFFFFFF
        if block_size > block_max + (0 if uncompressed else block_max):
            raise CodecError(f"block size {block_size} exceeds frame maximum")
        payload = take(block_size, "block payload")
        if block_checksums:
            want = int.from_bytes(take(4, "block checksum"), "little")
            if xxhash32(payload) != want:
                raise CodecError("block checksum mismatch")
        if uncompressed:
            out += payload
        else:
            out += decompress_block(payload, max_output_size=block_max)

    if content_checksum:
        want = int.from_bytes(take(4, "content checksum"), "little")
        if xxhash32(bytes(out)) != want:
            raise CodecError("content checksum mismatch")
    if content_size is not None and content_size != len(out):
        raise CodecError(
            f"content size mismatch: descriptor says {content_size}, got {len(out)}"
        )
    return bytes(out)
