"""xxHash32 — the checksum used by the LZ4 frame format.

Implemented from the published algorithm specification (XXH32).  Pure
Python with 32-bit modular arithmetic; verified against the reference
test vectors in ``tests/compress/test_xxhash.py``.

This sits on the transport hot path (every frame is checksummed on
both ends), so the implementation avoids copying the input — ``bytes``
and ``bytearray`` are wrapped in a zero-copy ``memoryview`` — and the
16-byte main loop bulk-decodes lanes with ``struct.unpack_from`` in
4 KiB slabs instead of slicing four bytes at a time.
"""

from __future__ import annotations

import struct

_PRIME1 = 0x9E3779B1
_PRIME2 = 0x85EBCA77
_PRIME3 = 0xC2B2AE3D
_PRIME4 = 0x27D4EB2F
_PRIME5 = 0x165667B1

_MASK = 0xFFFFFFFF

#: Words decoded per ``unpack_from`` slab — 4 KiB, a multiple of the
#: 16-byte stripe so every slab holds whole (v1..v4) rounds.
_SLAB_WORDS = 1024


def _rotl(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _PRIME2) & _MASK
    acc = _rotl(acc, 13)
    return (acc * _PRIME1) & _MASK


def _as_byte_view(data: bytes | bytearray | memoryview) -> memoryview:
    """A flat uint8 view of ``data``, zero-copy whenever possible."""
    buf = data if isinstance(data, memoryview) else memoryview(data)
    if not buf.contiguous or buf.ndim != 1:
        return memoryview(bytes(buf))
    if buf.itemsize != 1 or buf.format != "B":
        return buf.cast("B")
    return buf


def xxhash32(data: bytes | bytearray | memoryview, seed: int = 0) -> int:
    """Compute XXH32 of ``data`` with ``seed``."""
    buf = _as_byte_view(data)
    n = len(buf)
    seed &= _MASK
    idx = 0

    if n >= 16:
        mask, p1, p2 = _MASK, _PRIME1, _PRIME2
        v1 = (seed + p1 + p2) & mask
        v2 = (seed + p2) & mask
        v3 = seed
        v4 = (seed - p1) & mask
        end = n & ~15  # last whole 16-byte stripe
        while idx < end:
            take = min(_SLAB_WORDS * 4, end - idx)
            words = struct.unpack_from(f"<{take >> 2}I", buf, idx)
            for j in range(0, take >> 2, 4):
                acc = (v1 + words[j] * p2) & mask
                v1 = ((((acc << 13) | (acc >> 19)) & mask) * p1) & mask
                acc = (v2 + words[j + 1] * p2) & mask
                v2 = ((((acc << 13) | (acc >> 19)) & mask) * p1) & mask
                acc = (v3 + words[j + 2] * p2) & mask
                v3 = ((((acc << 13) | (acc >> 19)) & mask) * p1) & mask
                acc = (v4 + words[j + 3] * p2) & mask
                v4 = ((((acc << 13) | (acc >> 19)) & mask) * p1) & mask
            idx += take
        h = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _MASK
    else:
        h = (seed + _PRIME5) & _MASK

    h = (h + n) & _MASK

    while idx + 4 <= n:
        h = (h + int.from_bytes(buf[idx : idx + 4], "little") * _PRIME3) & _MASK
        h = (_rotl(h, 17) * _PRIME4) & _MASK
        idx += 4

    while idx < n:
        h = (h + buf[idx] * _PRIME5) & _MASK
        h = (_rotl(h, 11) * _PRIME1) & _MASK
        idx += 1

    h ^= h >> 15
    h = (h * _PRIME2) & _MASK
    h ^= h >> 13
    h = (h * _PRIME3) & _MASK
    h ^= h >> 16
    return h
