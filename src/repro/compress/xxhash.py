"""xxHash32 — the checksum used by the LZ4 frame format.

Implemented from the published algorithm specification (XXH32).  Pure
Python with 32-bit modular arithmetic; verified against the reference
test vectors in ``tests/compress/test_xxhash.py``.
"""

from __future__ import annotations

_PRIME1 = 0x9E3779B1
_PRIME2 = 0x85EBCA77
_PRIME3 = 0xC2B2AE3D
_PRIME4 = 0x27D4EB2F
_PRIME5 = 0x165667B1

_MASK = 0xFFFFFFFF


def _rotl(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _PRIME2) & _MASK
    acc = _rotl(acc, 13)
    return (acc * _PRIME1) & _MASK


def xxhash32(data: bytes | bytearray | memoryview, seed: int = 0) -> int:
    """Compute XXH32 of ``data`` with ``seed``."""
    buf = memoryview(bytes(data))
    n = len(buf)
    seed &= _MASK
    idx = 0

    if n >= 16:
        v1 = (seed + _PRIME1 + _PRIME2) & _MASK
        v2 = (seed + _PRIME2) & _MASK
        v3 = seed
        v4 = (seed - _PRIME1) & _MASK
        limit = n - 16
        while idx <= limit:
            v1 = _round(v1, int.from_bytes(buf[idx : idx + 4], "little"))
            v2 = _round(v2, int.from_bytes(buf[idx + 4 : idx + 8], "little"))
            v3 = _round(v3, int.from_bytes(buf[idx + 8 : idx + 12], "little"))
            v4 = _round(v4, int.from_bytes(buf[idx + 12 : idx + 16], "little"))
            idx += 16
        h = (_rotl(v1, 1) + _rotl(v2, 7) + _rotl(v3, 12) + _rotl(v4, 18)) & _MASK
    else:
        h = (seed + _PRIME5) & _MASK

    h = (h + n) & _MASK

    while idx + 4 <= n:
        h = (h + int.from_bytes(buf[idx : idx + 4], "little") * _PRIME3) & _MASK
        h = (_rotl(h, 17) * _PRIME4) & _MASK
        idx += 4

    while idx < n:
        h = (h + buf[idx] * _PRIME5) & _MASK
        h = (_rotl(h, 11) * _PRIME1) & _MASK
        idx += 1

    h ^= h >> 15
    h = (h * _PRIME2) & _MASK
    h ^= h >> 13
    h = (h * _PRIME3) & _MASK
    h ^= h >> 16
    return h
