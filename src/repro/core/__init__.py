"""The NUMA-aware streaming runtime — the paper's contribution.

Layers:

- :mod:`repro.core.params` — the calibrated cost model and network paths;
- :mod:`repro.core.knowledge` — the hardware knowledge base (§5);
- :mod:`repro.core.config` — declarative scenario configuration;
- :mod:`repro.core.placement` — placement policies (pin / numa-bind /
  split / OS-managed);
- :mod:`repro.core.generator` — the runtime configuration generator
  (Figure 4) that plans NUMA-aware scenarios, plus the OS baseline;
- :mod:`repro.core.tasks` / :mod:`repro.core.runtime` — the simulated
  heterogeneous software pipeline (Figure 2) and its orchestrator;
- :mod:`repro.core.tables` — the paper's Tables 1–3 as data;
- :mod:`repro.core.dynamic` — §6's future-work dynamic rebalancer.
"""

from repro.core.advisor import CapacityAdvisor, Prediction
from repro.core.config import (
    FaultSpec,
    ScenarioConfig,
    StageConfig,
    StageKind,
    StreamConfig,
)
from repro.core.dynamic import DynamicRebalancer
from repro.core.generator import ConfigGenerator, StreamRequest, Workload
from repro.core.knowledge import HardwareKnowledgeBase
from repro.core.params import (
    ALCF_APS_PATH,
    APS_LAN_PATH,
    CostModel,
    PathSpec,
)
from repro.core.placement import PlacementSpec, ThreadHome, resolve_placement
from repro.core.results import RunResult, result_envelope, write_result_json
from repro.core.serialize import (
    load_scenario,
    save_scenario,
    scenario_from_json,
    scenario_to_json,
)
from repro.core.runtime import (
    ScenarioResult,
    SimRuntime,
    StreamResult,
    run_scenario,
)
from repro.core.tables import TABLE1, TABLE2, TABLE3

__all__ = [
    "ALCF_APS_PATH",
    "APS_LAN_PATH",
    "CapacityAdvisor",
    "ConfigGenerator",
    "FaultSpec",
    "CostModel",
    "DynamicRebalancer",
    "HardwareKnowledgeBase",
    "PathSpec",
    "PlacementSpec",
    "Prediction",
    "RunResult",
    "ScenarioConfig",
    "ScenarioResult",
    "SimRuntime",
    "StageConfig",
    "StageKind",
    "StreamConfig",
    "StreamRequest",
    "StreamResult",
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "ThreadHome",
    "Workload",
    "load_scenario",
    "resolve_placement",
    "result_envelope",
    "run_scenario",
    "save_scenario",
    "scenario_from_json",
    "scenario_to_json",
    "write_result_json",
]
