"""The simulated runtime system: build a scenario, run it, report.

:class:`SimRuntime` is the executable form of the paper's runtime
(Figure 4): it instantiates machines, network paths, per-stream pipelines
(dispatcher → ingest → compress → send ⇢ wire ⇢ recv → decompress) with
bounded queues, places every thread according to the scenario's
placement specs, runs the discrete-event simulation to completion and
returns a :class:`ScenarioResult` with per-stream and aggregate
throughputs plus per-core utilization / remote-access maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.config import ScenarioConfig, StageKind, StreamConfig
from repro.core.placement import ThreadHome, resolve_placement
from repro.core.tasks import (
    END,
    StageGate,
    StageMeters,
    StreamContext,
    WIRE,
    compress_flow,
    decompress_flow,
    dispatcher_proc,
    egest_flow,
    ingest_flow,
    recv_flow,
    send_worker_proc,
    stage_worker_proc,
    wire_pump_proc,
)
from repro.data.chunking import SyntheticChunkSource
from repro.hw.machine import Machine
from repro.osmodel.scheduler import OsScheduler
from repro.sim.engine import Engine
from repro.sim.flows import FlowNetwork, Resource
from repro.sim.metrics import MetricsCollector
from repro.sim.queues import Store
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.log import get_logger
from repro.util.rng import derive_seed
from repro.util.units import bytes_per_s_to_gbps

logger = get_logger("core.runtime")


@dataclass
class StreamResult:
    """Measured outcome of one stream.

    Implements the shared result protocol
    (:class:`repro.core.results.RunResult`): ``ok``, ``summary()``,
    ``to_dict()``.
    """

    stream_id: str
    chunks_delivered: int
    #: Uncompressed (end-to-end) goodput at the final stage, Gbps.
    delivered_gbps: float
    #: Wire (network) throughput, Gbps; 0 when the stream had no hop.
    wire_gbps: float
    #: Steady-state uncompressed-byte rates per stage, Gbps.
    stage_gbps: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.chunks_delivered > 0

    def summary(self) -> str:
        return (
            f"{self.stream_id}: chunks={self.chunks_delivered} "
            f"delivered={self.delivered_gbps:.2f}Gbps "
            f"wire={self.wire_gbps:.2f}Gbps"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "stream_id": self.stream_id,
            "ok": self.ok,
            "chunks_delivered": self.chunks_delivered,
            "delivered_gbps": self.delivered_gbps,
            "wire_gbps": self.wire_gbps,
            "stage_gbps": dict(self.stage_gbps),
        }


@dataclass
class ScenarioResult:
    """Aggregate outcome of a scenario run.

    Implements the shared result protocol
    (:class:`repro.core.results.RunResult`): ``ok``, ``summary()``,
    ``to_dict()``.
    """

    name: str
    sim_time: float
    streams: dict[str, StreamResult]
    #: Per-machine per-core utilization (fraction of the run busy).
    core_utilization: dict[str, dict[str, float]]
    #: Per-machine per-core normalized remote (QPI) traffic.
    remote_access: dict[str, dict[str, float]]
    #: Unified metrics/spans for the run (None when telemetry was off).
    telemetry: "object | None" = None

    @property
    def total_delivered_gbps(self) -> float:
        return sum(s.delivered_gbps for s in self.streams.values())

    @property
    def total_wire_gbps(self) -> float:
        return sum(s.wire_gbps for s in self.streams.values())

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.streams.values())

    def summary(self) -> str:
        lines = [
            f"{self.name}: sim_time={self.sim_time:.2f}s "
            f"total={self.total_delivered_gbps:.2f}Gbps "
            f"wire={self.total_wire_gbps:.2f}Gbps"
        ]
        for stream in self.streams.values():
            lines.append("  " + stream.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "ok": self.ok,
            "sim_time": self.sim_time,
            "total_delivered_gbps": self.total_delivered_gbps,
            "total_wire_gbps": self.total_wire_gbps,
            "streams": {
                sid: s.to_dict() for sid, s in self.streams.items()
            },
            "core_utilization": self.core_utilization,
            "remote_access": self.remote_access,
        }


class SimRuntime:
    """Builds and runs one scenario on the fluid simulator.

    ``telemetry`` attaches the unified observability layer
    (:mod:`repro.telemetry`) on the *virtual* clock: pass ``True`` to
    build one internally, or an existing :class:`~repro.telemetry.Telemetry`
    to share (its clock is rebound to this runtime's engine).  With
    telemetry attached a tracer is always built, so spans flow into the
    shared span store and Chrome traces / pipeline reports work on
    simulated time exactly as they do on wall time.
    """

    def __init__(
        self,
        scenario: ScenarioConfig,
        *,
        trace: bool = False,
        telemetry: "bool | object" = False,
        watchdog: "object | None" = None,
        controller: "object | None" = None,
    ) -> None:
        scenario.validate()
        self.scenario = scenario
        self.engine = Engine()
        #: Watchdog config (:class:`repro.obs.WatchdogConfig`) to run on
        #: the virtual clock; requires telemetry.  The instance appears
        #: on :attr:`watchdog` once :meth:`run` starts.
        self.watchdog_config = watchdog
        self.watchdog = None
        if watchdog is not None and not telemetry:
            raise ConfigurationError(
                "SimRuntime(watchdog=...) requires telemetry"
            )
        #: Autotuning controller (:class:`repro.control.Controller`) to
        #: run on the virtual clock; requires telemetry (its signals
        #: come from the shared event bus).  It is bound to a
        #: :class:`SimReconfigurator` over this runtime when :meth:`run`
        #: starts — same controller code as the live pipelines, so the
        #: decision trace is deterministic under a fixed seed.
        self.controller = controller
        if controller is not None and not telemetry:
            raise ConfigurationError(
                "SimRuntime(controller=...) requires telemetry"
            )
        self.network = FlowNetwork(self.engine)
        #: Unified metrics/span layer (None when disabled).
        self.telemetry = None
        if telemetry:
            from repro.telemetry import SimClock, Telemetry

            self.telemetry = (
                Telemetry() if telemetry is True else telemetry
            )
            self.telemetry.set_clock(SimClock(self.engine))
        self.metrics = MetricsCollector(
            self.engine,
            self.network,
            registry=self.telemetry.registry if self.telemetry else None,
        )
        #: Per-chunk tracer (populated when ``trace=True`` or telemetry
        #: is attached).
        self.tracer = None
        if trace or self.telemetry is not None:
            from repro.sim.trace import ChunkTracer

            self.tracer = ChunkTracer(telemetry=self.telemetry)
        self.machines: dict[str, Machine] = {
            name: Machine(self.engine, spec, csw_penalty=scenario.csw_penalty)
            for name, spec in scenario.machines.items()
        }
        self.schedulers: dict[str, OsScheduler] = {
            name: OsScheduler(
                spec,
                seed=derive_seed(scenario.seed, "sched", name),
                wake_affinity=scenario.wake_affinity,
                migrate_prob=scenario.migrate_prob,
                spill_threshold=scenario.spill_threshold,
            )
            for name, spec in scenario.machines.items()
        }
        self.path_resources: dict[str, Resource] = {
            name: Resource(f"path/{name}", spec.goodput_Bps, kind="path")
            for name, spec in scenario.paths.items()
        }
        self.stream_contexts: dict[str, StreamContext] = {}
        #: All inter-stage stores, for queue-occupancy reporting when
        #: tracing is on.
        self.queues: list[Store] = []
        #: (stream_id, stage value) -> reconfigurable stage entry; the
        #: controller scales these through :class:`SimReconfigurator`.
        self.sim_stages: dict[tuple[str, str], _SimStageSet] = {}
        #: queue name -> (stream_id, consumer stage value), the sim's
        #: answer to ``Reconfigurable.queue_consumer``.
        self.queue_consumers: dict[str, tuple[str, str]] = {}
        self._done_events = []
        for stream in scenario.streams:
            self._build_stream(stream)
        logger.debug(
            "built scenario %r: %d machines, %d streams, %d queues",
            scenario.name, len(self.machines), len(scenario.streams),
            len(self.queues),
        )

    # -- construction -------------------------------------------------------

    def _build_stream(self, cfg: StreamConfig) -> None:
        sc = self.scenario
        sender = self.machines[cfg.sender]
        receiver = self.machines[cfg.receiver]
        has_hop = cfg.send is not None
        path_spec = sc.paths[cfg.path] if has_hop else _LOCAL_PATH
        ctx = StreamContext(
            engine=self.engine,
            network=self.network,
            cost=sc.cost,
            config=cfg,
            sender=sender,
            receiver=receiver,
            path_spec=path_spec,
            path_resource=(
                self.path_resources[cfg.path] if has_hop else _NULL_RESOURCE
            ),
            sender_nic=sender.nic() if has_hop else None,
            receiver_nic=receiver.nic() if has_hop else None,
            tracer=self.tracer,
            telemetry=self.telemetry,
        )
        self.stream_contexts[cfg.stream_id] = ctx
        if self.tracer is not None:
            counts = {k.value: s.count for k, s in cfg.stages().items()}
            if cfg.send is not None:
                counts["wire"] = cfg.send.count  # one pump per connection
            self.tracer.set_thread_counts(cfg.stream_id, counts)
            if self.telemetry is not None:
                self.telemetry.thread_counts.update(counts)

        source = SyntheticChunkSource(
            stream_id=cfg.stream_id,
            num_chunks=cfg.num_chunks,
            chunk_bytes=cfg.chunk_bytes,
            ratio_mean=cfg.ratio_mean,
            ratio_sigma=cfg.ratio_sigma,
            seed=derive_seed(sc.seed, "chunks", cfg.stream_id),
        ).chunks()

        done = self.engine.event()
        self._done_events.append(done)

        # Resolve placements for every present stage up-front (recv homes
        # must exist before wire pumps query them).
        homes: dict[StageKind, list[ThreadHome]] = {}
        for kind, stage in cfg.stages().items():
            machine = sender if kind.sender_side else receiver
            scheduler = self.schedulers[
                cfg.sender if kind.sender_side else cfg.receiver
            ]
            homes[kind] = resolve_placement(
                stage.placement,
                machine.spec,
                stage.count,
                scheduler,
                group=f"{cfg.stream_id}.{kind.value}",
            )
        if StageKind.RECV in homes:
            ctx.recv_homes = homes[StageKind.RECV]

        # Build the queue chain.  Shared-queue stages read one common
        # store; the send/wire/recv leg uses per-connection stores.
        cap = cfg.queue_capacity
        order = list(cfg.stages().keys())
        builders = {
            StageKind.INGEST: (ingest_flow, True),
            StageKind.COMPRESS: (compress_flow, True),
            StageKind.RECV: (recv_flow, True),
            StageKind.DECOMPRESS: (decompress_flow, False),
            StageKind.EGEST: (egest_flow, False),
        }

        monitor = self.tracer is not None

        def make_store(capacity: int, name: str) -> Store:
            store = Store(self.engine, capacity=capacity, name=name,
                          monitor=monitor, telemetry=self.telemetry)
            self.queues.append(store)
            return store

        # Input queue of the first stage, fed by the dispatcher.  The
        # END count resolves at close time — the controller may have
        # grown the first stage by then.
        first_q = make_store(cap, f"{cfg.stream_id}/q0")
        first_count = cfg.stages()[order[0]].count
        self.queue_consumers[first_q.name] = (
            cfg.stream_id, order[0].value
        )
        self.engine.process(
            dispatcher_proc(
                ctx, source, first_q,
                self._close_count(cfg.stream_id, order[0], first_count),
            ),
            name=f"{cfg.stream_id}.dispatcher",
        )

        inq = first_q
        for pos, kind in enumerate(order):
            stage = cfg.stages()[kind]
            is_last = pos == len(order) - 1
            next_kind = order[pos + 1] if not is_last else None

            if kind == StageKind.SEND:
                # send workers + wire pumps + recv workers, paired per
                # TCP connection (§3.4: x senders, x receivers, x streams).
                recv_stage = cfg.stages()[StageKind.RECV]
                n = stage.count
                after_recv = order[order.index(StageKind.RECV) + 1 :]
                recv_outq: Store | None = None
                if after_recv:
                    recv_outq = make_store(cap, f"{cfg.stream_id}/q-recv")
                    self.queue_consumers[recv_outq.name] = (
                        cfg.stream_id, after_recv[0].value
                    )
                recv_gate = self._make_gate(
                    ctx,
                    recv_stage.count,
                    recv_outq,
                    self._close_count(
                        cfg.stream_id,
                        after_recv[0] if after_recv else None,
                        cfg.stages()[after_recv[0]].count if after_recv else 0,
                    ),
                    done if not after_recv else None,
                )
                for i in range(n):
                    sockq = make_store(2, f"{cfg.stream_id}/sock{i}")
                    arrq = make_store(2, f"{cfg.stream_id}/arr{i}")
                    self.queue_consumers[arrq.name] = (
                        cfg.stream_id, StageKind.RECV.value
                    )
                    s_home = homes[StageKind.SEND][i]
                    send_gate_noop = StageGate(1, lambda: None)
                    self.engine.process(
                        send_worker_proc(
                            ctx, s_home, inq, sockq, send_gate_noop, index=i
                        ),
                        name=f"{cfg.stream_id}.send.{i}",
                    )
                    self.engine.process(
                        wire_pump_proc(
                            ctx, i, sockq, arrq, lambda h=s_home: h.socket
                        ),
                        name=f"{cfg.stream_id}.wire.{i}",
                    )
                    self.engine.process(
                        stage_worker_proc(
                            ctx,
                            StageKind.RECV,
                            homes[StageKind.RECV][i],
                            arrq,
                            recv_outq,
                            recv_gate,
                            recv_flow,
                            first_touch=True,
                            index=i,
                        ),
                        name=f"{cfg.stream_id}.recv.{i}",
                    )
                inq = recv_outq
                continue
            if kind == StageKind.RECV:
                continue  # built alongside SEND

            flow_builder, first_touch = builders[kind]
            outq: Store | None = None
            next_count = 0
            if next_kind is not None:
                outq = make_store(cap, f"{cfg.stream_id}/q-{kind.value}")
                next_count = cfg.stages()[next_kind].count
                self.queue_consumers[outq.name] = (
                    cfg.stream_id, next_kind.value
                )
            gate = self._make_gate(
                ctx,
                stage.count,
                outq,
                self._close_count(cfg.stream_id, next_kind, next_count),
                done if is_last else None,
            )
            for i in range(stage.count):
                self.engine.process(
                    stage_worker_proc(
                        ctx,
                        kind,
                        homes[kind][i],
                        inq,
                        outq,
                        gate,
                        flow_builder,
                        first_touch=first_touch,
                        index=i,
                    ),
                    name=f"{cfg.stream_id}.{kind.value}.{i}",
                )
            # Shared-queue stages are the reconfigurable units: the
            # controller can grow compress/decompress mid-run.
            self.sim_stages[(cfg.stream_id, kind.value)] = _SimStageSet(
                runtime=self,
                ctx=ctx,
                kind=kind,
                stage=stage,
                machine=sender if kind.sender_side else receiver,
                scheduler=self.schedulers[
                    cfg.sender if kind.sender_side else cfg.receiver
                ],
                inq=inq,
                outq=outq,
                gate=gate,
                flow_builder=flow_builder,
                first_touch=first_touch,
                count=stage.count,
                next_index=stage.count,
                scalable=kind.value in ("compress", "decompress"),
            )
            inq = outq

    def _make_gate(
        self,
        ctx: StreamContext,
        count: int,
        outq: Store | None,
        next_count: Callable[[], int],
        done_event,
    ) -> StageGate:
        def close() -> None:
            if outq is not None:
                for _ in range(next_count()):
                    outq.force_put(END)
            if done_event is not None:
                done_event.trigger(ctx.config.stream_id)

        return StageGate(count, close)

    def _close_count(
        self, stream_id: str, kind: "StageKind | None", static: int
    ) -> Callable[[], int]:
        """END-sentinel count for a downstream stage, resolved at close.

        The controller may have grown the stage since build time, so the
        count is read from the live registry when the upstream gate
        closes; resolving also latches ``inputs_closed`` on the entry so
        no further scale-up can add a worker that would never see an
        END.  Stages outside the registry (send/recv legs) fall back to
        their static count.
        """

        def resolve() -> int:
            entry = (
                self.sim_stages.get((stream_id, kind.value))
                if kind is not None
                else None
            )
            if entry is None:
                return static
            entry.inputs_closed = True
            return entry.count

        return resolve

    # -- inspection -------------------------------------------------------

    def queue_report(self) -> dict[str, dict[str, float]]:
        """Per-queue occupancy stats (needs ``trace=True``).

        Returns {queue name: {"max": ..., "mean": ...}} where mean is
        time-weighted depth — the practical signal for sizing the
        paper's thread-safe queues.
        """
        out: dict[str, dict[str, float]] = {}
        for store in self.queues:
            series = store.depth_series
            if series is None or not len(series):
                continue
            out[store.name] = {
                "max": max(series.values),
                "mean": series.time_weighted_mean(),
            }
        return out

    # -- execution -----------------------------------------------------------

    def run(self) -> ScenarioResult:
        """Run to completion and return measurements."""
        done = self.engine.all_of(self._done_events)
        horizon = self.scenario.max_sim_time
        if self.telemetry is not None:
            self.telemetry.emit_event(
                "run_start",
                f"scenario {self.scenario.name!r} starting",
                runner="SimRuntime",
                streams=len(self.scenario.streams),
            )
            if self.watchdog_config is not None:
                from repro.obs.watchdog import Watchdog

                self.watchdog = Watchdog(self.telemetry, self.watchdog_config)
                # Bounded by the horizon: an immortal watchdog process
                # would keep the heap non-empty and mask deadlocks.
                self.engine.process(
                    self.watchdog.sim_process(self.engine, until=horizon),
                    name="watchdog",
                )
            if self.controller is not None:
                # Same Controller class as the live pipelines, bound to
                # the DES state; single-threaded engine + virtual clock
                # make the whole control loop deterministic.
                self.controller.bind(SimReconfigurator(self))
                self.engine.process(
                    self.controller.sim_process(self.engine, until=horizon),
                    name="controller",
                )
        while not done.processed:
            if not self.engine._heap:
                raise SimulationError(
                    f"scenario {self.scenario.name!r}: deadlock — event heap "
                    "exhausted before all streams finished"
                )
            if self.engine.peek() > horizon:
                raise SimulationError(
                    f"scenario {self.scenario.name!r}: exceeded max_sim_time="
                    f"{horizon}s (simulated {self.engine.now:.1f}s)"
                )
            self.engine.step()
        logger.debug(
            "scenario %r drained at t=%.3fs", self.scenario.name,
            self.engine.now,
        )
        if self.telemetry is not None:
            self.telemetry.emit_event(
                "run_end",
                f"scenario {self.scenario.name!r} drained",
                runner="SimRuntime",
                ok=True,
                sim_time_s=round(self.engine.now, 6),
            )
        return self._report()

    def _report(self) -> ScenarioResult:
        warm = self.scenario.warmup_chunks
        streams: dict[str, StreamResult] = {}
        for cfg in self.scenario.streams:
            ctx = self.stream_contexts[cfg.stream_id]
            order = list(cfg.stages().keys())
            final_meter = ctx.meter(order[-1])
            stage_gbps = {
                kind.value: bytes_per_s_to_gbps(
                    ctx.meter(kind).steady_rate_Bps(warm)
                )
                for kind in order
            }
            wire_gbps = 0.0
            if cfg.send is not None:
                wire_gbps = bytes_per_s_to_gbps(
                    ctx.meter(WIRE).steady_rate_Bps(warm, wire=True)
                )
                stage_gbps["wire"] = wire_gbps
                # Wire-equivalent rate over the *delivery* window — the
                # clean denominator for "e2e = ratio x network" checks
                # (the raw wire meter includes the pipeline-fill
                # transient, which biases short runs).
                stage_gbps["delivered_wire"] = bytes_per_s_to_gbps(
                    final_meter.steady_rate_Bps(warm, wire=True)
                )
            streams[cfg.stream_id] = StreamResult(
                stream_id=cfg.stream_id,
                chunks_delivered=final_meter.chunks,
                delivered_gbps=bytes_per_s_to_gbps(
                    final_meter.steady_rate_Bps(warm)
                ),
                wire_gbps=wire_gbps,
                stage_gbps=stage_gbps,
            )
        core_util: dict[str, dict[str, float]] = {}
        remote: dict[str, dict[str, float]] = {}
        for name, machine in self.machines.items():
            names = machine.core_names()
            core_util[name] = self.metrics.core_utilization_map(names)
            remote[name] = self.metrics.remote_access_map(names)
        if self.telemetry is not None:
            self.metrics.publish_utilization()
            # Queue occupancy on the virtual clock: gauge value = the
            # time-weighted mean depth, high_water = the peak.
            for qname, stats in self.queue_report().items():
                gauge = self.telemetry.queue_gauge(qname)
                gauge.set(stats["max"])
                gauge.set(stats["mean"])
        return ScenarioResult(
            name=self.scenario.name,
            sim_time=self.engine.now,
            streams=streams,
            core_utilization=core_util,
            remote_access=remote,
            telemetry=self.telemetry,
        )


@dataclass
class _SimStageSet:
    """One shared-queue sim stage as a reconfigurable unit.

    The DES analogue of :class:`repro.live.stageset.StageSet`: it owns
    everything needed to mint another worker process mid-run — context,
    queues, gate, flow builder, and the placement inputs.  Scaling is
    grow-only (a generator process can't be stopped cleanly mid-`get`
    without racing the END protocol; the controller's scale-down
    surfaces as a ``replan_rejected`` in the sim) and refuses once the
    upstream stage has closed this stage's input queue.

    Growth is bounded by the placement itself: a stage may not exceed
    two workers per distinct core its spec enumerates (the paper's
    Obs 2 oversubscription rule, the same bound plan validation warns
    about).  Past that, added workers only split the same cores'
    capacity — the controller's batch_frames fallback is the right
    next move, not another thread.
    """

    runtime: "SimRuntime"
    ctx: StreamContext
    kind: StageKind
    stage: object  # StageConfig — placement + static count
    machine: Machine
    scheduler: OsScheduler
    inq: Store
    outq: Store | None
    gate: StageGate
    flow_builder: object
    first_touch: bool
    count: int
    next_index: int
    scalable: bool = False
    inputs_closed: bool = False

    def placement_slots(self) -> int:
        """Distinct cores this stage's placement can schedule onto."""
        spec = self.stage.placement
        machine = self.machine.spec
        if spec.kind == "cores":
            return len(set(spec.cores))
        if spec.kind in ("socket", "sockets"):
            return sum(
                len(machine.cores_of(s)) for s in set(spec.sockets)
            )
        return machine.total_cores

    def scale_to(self, n: int) -> bool:
        if (
            not self.scalable
            or self.inputs_closed
            or self.gate.closed
            or n <= self.count
            or n > 2 * self.placement_slots()
        ):
            return False
        sid = self.ctx.config.stream_id
        while self.count < n:
            i = self.next_index
            self.next_index += 1
            # Resolve as thread i of an (i+1)-wide group so worker i
            # lands on the core static placement would have given it —
            # resolving count=1 would pin every new worker to the
            # group's first core, adding contention instead of capacity.
            home = resolve_placement(
                self.stage.placement,
                self.machine.spec,
                i + 1,
                self.scheduler,
                group=f"{sid}.{self.kind.value}.x{i}",
            )[i]
            # Gate first: the worker must be counted before it can run.
            self.gate.add_worker()
            self.runtime.engine.process(
                stage_worker_proc(
                    self.ctx,
                    self.kind,
                    home,
                    self.inq,
                    self.outq,
                    self.gate,
                    self.flow_builder,
                    first_touch=self.first_touch,
                    index=i,
                ),
                name=f"{sid}.{self.kind.value}.{i}",
            )
            self.count += 1
            tel = self.ctx.telemetry
            if tel is not None:
                counts = tel.thread_counts
                counts[self.kind.value] = counts.get(self.kind.value, 0) + 1
        return True


class SimReconfigurator:
    """:class:`~repro.control.Reconfigurable` over the DES state.

    Stream ids are explicit here (sim scenarios are multi-stream); a
    blank stream id resolves to the single stream when there is exactly
    one, matching the controller's live-runtime convention.
    """

    def __init__(self, runtime: "SimRuntime") -> None:
        self.runtime = runtime

    def _stream(self, stream: str) -> str:
        if not stream and len(self.runtime.scenario.streams) == 1:
            return self.runtime.scenario.streams[0].stream_id
        return stream

    def _entry(self, stream: str, stage: str) -> "_SimStageSet | None":
        return self.runtime.sim_stages.get((self._stream(stream), stage))

    def queue_consumer(self, queue: str) -> tuple[str, str] | None:
        return self.runtime.queue_consumers.get(queue)

    def stage_count(self, stream: str, stage: str) -> int | None:
        entry = self._entry(stream, stage)
        return entry.count if entry is not None else None

    def can_scale(self, stream: str, stage: str) -> bool:
        entry = self._entry(stream, stage)
        return (
            entry is not None
            and entry.scalable
            and not entry.inputs_closed
            and not entry.gate.closed
            and entry.count < 2 * entry.placement_slots()
        )

    def scale_stage(self, stream: str, stage: str, count: int) -> bool:
        entry = self._entry(stream, stage)
        return entry is not None and entry.scale_to(count)

    def respawn_stage(self, stream: str, stage: str) -> bool:
        # Sim workers are generator processes on a virtual clock — they
        # cannot wedge the way a real thread can, and there is nothing
        # to drain.  Refuse; the controller reports replan_rejected.
        return False

    def batch_frames(self, stream: str) -> int:
        ctx = self.runtime.stream_contexts.get(self._stream(stream))
        return ctx.config.batch_frames if ctx is not None else 1

    def set_batch_frames(self, stream: str, value: int) -> bool:
        ctx = self.runtime.stream_contexts.get(self._stream(stream))
        if ctx is None or value < 1:
            return False
        # StreamConfig is mutable by design; handoff_delay re-reads it
        # per chunk, so the new amortization applies immediately.
        ctx.config.batch_frames = value
        return True


def run_scenario(
    scenario: ScenarioConfig, *, telemetry: "bool | object" = False
) -> ScenarioResult:
    """Convenience one-shot: build, run, report.

    ``telemetry`` follows the blessed shape (``docs/telemetry.md``):
    ``True`` builds a fresh :class:`~repro.telemetry.Telemetry` on the
    virtual clock, an instance is shared (clock rebound), ``False``
    disables collection.  The instance rides back on
    ``ScenarioResult.telemetry``.
    """
    return SimRuntime(scenario, telemetry=telemetry).run()


class _Local:
    """Placeholder path for streams without a network hop."""

    name = "local"
    per_stream_cap_gbps = None

    @staticmethod
    def stream_cap_Bps() -> None:
        return None


_LOCAL_PATH = _Local()
_NULL_RESOURCE = None
