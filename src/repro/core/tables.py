"""The paper's experimental configuration tables as data.

- **Table 1** (configs A–H): memory domain × execution domain for the
  compression (§3.2, Figure 8) and decompression (§3.3, Figure 9)
  microbenchmarks;
- **Table 2** (configs A–E): sender socket × receiver socket for the
  network study (§3.4, Figure 11);
- **Table 3** (configs A–G): compression / decompression thread counts
  for the single-stream end-to-end study (§4.1, Figure 12).

Each entry knows how to turn itself into the placement vocabulary of
:mod:`repro.core.placement`, so experiment harnesses stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.placement import PlacementSpec
from repro.util.errors import ValidationError

#: Execution-domain symbol for OS-managed placement in Tables 1 and 2.
OS = "OS"
#: Execution-domain symbol for an even split over both sockets (Table 1).
BOTH = "0&1"


@dataclass(frozen=True)
class Table1Config:
    """One Table 1 row: where the data lives and where threads execute."""

    label: str
    memory_domain: int
    execution: int | str  # 0 | 1 | BOTH | OS

    def placement(self, *, os_hint_socket: int | None = None) -> PlacementSpec:
        if self.execution == OS:
            return PlacementSpec.os_managed(hint_socket=os_hint_socket)
        if self.execution == BOTH:
            return PlacementSpec.split([0, 1])
        if self.execution in (0, 1):
            return PlacementSpec.socket(int(self.execution))
        raise ValidationError(
            f"Table 1 config {self.label}: bad execution {self.execution!r}"
        )

    def describe(self) -> str:
        return f"{self.label}: mem=N{self.memory_domain} exec={self.execution}"


#: Table 1 verbatim (memory domain, execution domain).
TABLE1: dict[str, Table1Config] = {
    "A": Table1Config("A", 0, 0),
    "B": Table1Config("B", 0, 1),
    "C": Table1Config("C", 1, 0),
    "D": Table1Config("D", 1, 1),
    "E": Table1Config("E", 0, BOTH),
    "F": Table1Config("F", 1, BOTH),
    "G": Table1Config("G", 0, OS),
    "H": Table1Config("H", 1, OS),
}


@dataclass(frozen=True)
class Table2Config:
    """One Table 2 row: sender-thread and receiver-thread sockets."""

    label: str
    sender_socket: int | str  # 0 | 1 | OS
    receiver_socket: int | str

    def sender_placement(self) -> PlacementSpec:
        return _socket_or_os(self.sender_socket)

    def receiver_placement(self, *, os_hint_socket: int | None = None) -> PlacementSpec:
        return _socket_or_os(self.receiver_socket, os_hint_socket)

    def describe(self) -> str:
        return f"{self.label}: S={self.sender_socket} R={self.receiver_socket}"


def _socket_or_os(value: int | str, hint: int | None = None) -> PlacementSpec:
    if value == OS:
        return PlacementSpec.os_managed(hint_socket=hint)
    if value in (0, 1):
        return PlacementSpec.socket(int(value))
    raise ValidationError(f"bad Table 2 socket {value!r}")


#: Table 2 verbatim (sender socket, receiver socket).
TABLE2: dict[str, Table2Config] = {
    "A": Table2Config("A", 0, 0),
    "B": Table2Config("B", 0, 1),
    "C": Table2Config("C", 1, 0),
    "D": Table2Config("D", 1, 1),
    "E": Table2Config("E", OS, OS),
}


@dataclass(frozen=True)
class Table3Config:
    """One Table 3 row: compression/decompression thread counts."""

    label: str
    compress_threads: int
    decompress_threads: int

    def describe(self) -> str:
        return (
            f"{self.label}: C={self.compress_threads} "
            f"D={self.decompress_threads}"
        )


#: Table 3 verbatim (#compression threads, #decompression threads).
TABLE3: dict[str, Table3Config] = {
    "A": Table3Config("A", 8, 4),
    "B": Table3Config("B", 8, 8),
    "C": Table3Config("C", 16, 8),
    "D": Table3Config("D", 16, 16),
    "E": Table3Config("E", 32, 4),
    "F": Table3Config("F", 32, 8),
    "G": Table3Config("G", 32, 16),
}
