"""The shared result-object protocol for every run entry point.

The repo grew one result class per substrate —
:class:`~repro.core.runtime.StreamResult` /
:class:`~repro.core.runtime.ScenarioResult` for the simulator,
:class:`~repro.live.runtime.LiveReport` for the in-process live
pipeline, :class:`~repro.live.remote.EndpointReport` for the TCP
endpoints — each with its own spelling of "did it work" and "show me".
:class:`RunResult` is the common surface they all implement:

- ``ok`` — True when the run completed without errors;
- ``summary()`` — a short human-readable account;
- ``to_dict()`` — a JSON-serializable dict (``json.dump``-able as-is).

Callers that fan out over substrates (the CLI, benchmark drivers,
parity tests) can treat any result uniformly::

    result = run_scenario(scenario)        # or pipeline.run(...), etc.
    if not result.ok:
        sys.exit(result.summary())
    json.dump(result_envelope(result), fh)
"""

from __future__ import annotations

import json
import os
from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class RunResult(Protocol):
    """What every substrate's run result can do."""

    @property
    def ok(self) -> bool:
        """True when the run completed without errors."""
        ...

    def summary(self) -> str:
        """Short human-readable account of the run."""
        ...

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view of the run."""
        ...


def result_envelope(result: RunResult, **extra: Any) -> dict[str, Any]:
    """Wrap a result dict with the class name (stable JSON shape)."""
    return {
        "kind": type(result).__name__,
        "ok": result.ok,
        "result": result.to_dict(),
        **extra,
    }


def write_result_json(result: RunResult, path: str, **extra: Any) -> None:
    """Dump ``result_envelope(result)`` to ``path`` (CLI ``--json-out``).

    Parent directories are created as needed.
    """
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result_envelope(result, **extra), fh, indent=2)
        fh.write("\n")
