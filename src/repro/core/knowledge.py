"""Hardware knowledge base — what the configuration generator knows.

§5 of the paper: "It maintains a knowledge base of the underlying
hardware, including NUMA configurations and NUMA-to-NIC connection
domain, and can accordingly adapt data streaming and computational
resource allocation."  This module is that knowledge base: a registry of
:class:`MachineSpec` and :class:`PathSpec` objects with the derived
queries the placement rules need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import PathSpec
from repro.hw.topology import CoreId, MachineSpec
from repro.util.errors import ConfigurationError


@dataclass
class HardwareKnowledgeBase:
    """Registry of known machines and network paths."""

    machines: dict[str, MachineSpec] = field(default_factory=dict)
    paths: dict[str, PathSpec] = field(default_factory=dict)

    # -- registration ------------------------------------------------------

    def add_machine(self, spec: MachineSpec) -> None:
        if spec.name in self.machines:
            raise ConfigurationError(f"machine {spec.name!r} already registered")
        self.machines[spec.name] = spec

    def add_path(self, spec: PathSpec) -> None:
        if spec.name in self.paths:
            raise ConfigurationError(f"path {spec.name!r} already registered")
        self.paths[spec.name] = spec

    # -- queries ---------------------------------------------------------------

    def machine(self, name: str) -> MachineSpec:
        try:
            return self.machines[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown machine {name!r}") from exc

    def path(self, name: str) -> PathSpec:
        try:
            return self.paths[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown path {name!r}") from exc

    def nic_socket(self, name: str) -> int:
        """The NUMA domain of the machine's streaming NIC (Observation 1)."""
        return self.machine(name).nic_socket()

    def non_nic_sockets(self, name: str) -> list[int]:
        """All NUMA domains except the streaming NIC's."""
        spec = self.machine(name)
        nic = spec.nic_socket()
        return [s for s in range(spec.num_sockets) if s != nic]

    def cores_of_socket(self, name: str, socket: int) -> list[CoreId]:
        return self.machine(name).cores_of(socket)

    def nic_rate_gbps(self, name: str) -> float:
        return self.machine(name).primary_nic().rate_gbps

    def describe(self, name: str) -> str:
        """Human-readable topology summary for reports."""
        spec = self.machine(name)
        nics = ", ".join(
            f"{n.name}@{n.rate_gbps:g}G->N{n.attached_socket}"
            f"{'' if n.usable else ' (unused)'}"
            for n in spec.nics
        ) or "no NICs"
        socks = " + ".join(
            f"{s.cores}c@{s.ghz:g}GHz" for s in spec.sockets
        )
        return f"{spec.name}: [{socks}], {nics}"
