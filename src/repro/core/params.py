"""Calibrated cost model for the simulated runtime.

Every constant below is tied to numbers the paper itself reports;
EXPERIMENTS.md carries the full audit.  Two rate regimes exist:

- **micro rates** (``compress_rate``, ``decompress_rate``) describe the
  pure compress/decompress loops of the §3.2/§3.3 microbenchmarks
  (Figures 8a, 9a);
- **pipeline rates** are micro rates × ``pipeline_efficiency`` and
  describe the same work inside the streaming pipeline (queue handoffs,
  zeroMQ messaging, allocation) — Figures 12 and 14.

Derivations:

- ``compress_rate`` (micro, 0.826 GB/s input per 3.1 GHz reference
  core): fixed by two paper facts simultaneously — Figure 12 configs
  A/B bottleneck on 8 pipeline compression threads at ≈37 Gbps
  (⇒ pipeline rate 0.578 GB/s/core = micro × 0.70), and §3.3's "3X"
  micro relation below.
- ``decompress_rate`` (micro, 2.478 GB/s output per core): §3.3 —
  decompression is "approximately 3X" compression at equal threads.
- ``pipeline_efficiency`` (0.70): closes Figure 12 configs F/G at the
  paper's ≈97 Gbps on a 32-core sender running 32 C + 8 S + 8 ingest
  threads (the fluid pipeline self-balances; see DESIGN.md §4).
- ``ingest_rate``: sender-side source read + staging copy (hdf5 chunk
  fetch from page cache ≈ 1.55 GB/s/core); with 8 ingest threads this
  stage sustains ≈99 Gbps uncompressed, just above F/G's target — it
  never binds in the paper's configs but consumes the CPU share that
  keeps 32 compression threads from scaling past ≈97 Gbps.
- ``send_cpu_rate`` / ``recv_cpu_rate``: Figure 11 — one send/recv
  thread pair sustains ≈33 Gbps ⇒ 4.125 GB/s of wire bytes per core.
- ``softirq_rate``: kernel RX stack (IRQ + softIRQ protocol processing,
  §2.2) charged on the NIC-designated core; ≈2× the app-side copy rate.
- ``remote_stall_factor`` (1.18): Observations 1 & 4 — a receive thread
  across QPI from the NIC loses ≈15% when CPU-bound (Figures 5, 11);
  remote loads stall its copy loop, so CPU-per-byte rises 18%.
- ``remote_stream_penalty`` (0.87): on window-limited paths the slower
  remote drain shrinks the effective TCP window; per-stream caps scale
  by 0.87 (the same ≈15% seen from the rate side).
- ``decompress_llc_factor`` (5.5): §3.3/Obs 3 — decompression hammers
  the execution socket's LLC with match-copy re-reads.  With the Xeon
  socket's 175 GB/s effective LLC bandwidth, 16 micro decompression
  threads on one socket cap at ≈32 GB/s versus ≈40 GB/s when split
  8 + 8 (the Figure 9a crossover), while Figure 14's 16 *pipeline*
  threads (26.6 GB/s × 5.5 = 146 GB/s) stay feasible — reconciling the
  two results the way the paper's own numbers demand.
- ``decompress_mc_factor`` (1.8): recent-output re-reads that miss LLC.

Rates are bytes/second *per reference core* (3.1 GHz Xeon Gold 6346);
cores at other clocks scale linearly (``MachineSpec.reference_ghz``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.errors import ValidationError

#: Per-codec (compress, decompress) throughput factors relative to the
#: calibrated LZ4 micro rates — rough single-core ratios for 3:1-ish
#: scientific payloads.  Used by :meth:`CostModel.for_codec` when a
#: plan's codec policy names a non-default codec, so the simulator's
#: stage costs track the live substrate's codec choice.  The adaptive
#: policy costs as its fastest common member (the selector converges
#: there per entropy band).
CODEC_COST_FACTORS: dict[str, tuple[float, float]] = {
    "lz4": (1.0, 1.0),
    "shuffle-lz4": (0.90, 0.90),
    "delta-shuffle-lz4": (0.85, 0.85),
    "zlib": (0.08, 0.35),
    "bz2": (0.015, 0.06),
    "null": (12.0, 12.0),
    "adaptive": (1.0, 1.0),
}


@dataclass(frozen=True)
class CostModel:
    """Per-byte processing costs and penalty factors (see module doc)."""

    #: Sender-side source ingest (read + staging copy), bytes/s per core.
    ingest_rate: float = 1.55e9
    #: LZ4 compression *micro* rate, uncompressed input bytes/s per core.
    compress_rate: float = 0.826e9
    #: LZ4 decompression *micro* rate, uncompressed output bytes/s per
    #: core (≈3× compression, §3.3).
    decompress_rate: float = 2.478e9
    #: Fraction of the micro rate delivered inside the streaming
    #: pipeline (queue sync, messaging, allocation overheads).
    pipeline_efficiency: float = 0.70
    #: TCP send processing, wire bytes/s per core.
    send_cpu_rate: float = 4.125e9
    #: TCP receive processing (app-side copy), wire bytes/s per core.
    recv_cpu_rate: float = 4.125e9
    #: Kernel RX path (softIRQ) processing, wire bytes/s per core,
    #: charged on the NIC queue's IRQ-affinity core.
    softirq_rate: float = 8.25e9
    #: Receiver-side sink write (memcpy into application memory or page
    #: cache), bytes/s per core; only used when a stream configures an
    #: egest stage (Figure 2's "stores it back into memory or disk").
    egest_rate: float = 5.0e9

    #: CPU-cost multiplier when a stage's dominant read crosses QPI.
    remote_stall_factor: float = 1.18
    #: Per-stream TCP rate-cap multiplier when the receive thread is
    #: remote from the NIC (window-limited paths).
    remote_stream_penalty: float = 0.87

    #: LLC bytes touched per payload byte, by stage.
    compress_llc_factor: float = 1.5
    decompress_llc_factor: float = 5.5
    copy_llc_factor: float = 2.0

    #: Memory-controller bytes per output byte decompression adds beyond
    #: the plain output write (LLC-missing re-reads).
    decompress_mc_factor: float = 1.8

    #: Fixed CPU seconds one queue handoff costs a stage (lock + wake).
    #: Amortized across ``StreamConfig.batch_frames`` when the live
    #: pipeline drains in batches; 0 keeps the historical behaviour of
    #: folding handoff cost into ``pipeline_efficiency``.
    queue_handoff_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_handoff_seconds < 0:
            raise ValidationError("queue_handoff_seconds must be >= 0")
        for name in (
            "ingest_rate",
            "compress_rate",
            "decompress_rate",
            "send_cpu_rate",
            "recv_cpu_rate",
            "softirq_rate",
            "egest_rate",
        ):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be > 0")
        if not 0.0 < self.pipeline_efficiency <= 1.0:
            raise ValidationError("pipeline_efficiency must be in (0, 1]")
        if self.remote_stall_factor < 1.0:
            raise ValidationError("remote_stall_factor must be >= 1")
        if not 0.0 < self.remote_stream_penalty <= 1.0:
            raise ValidationError("remote_stream_penalty must be in (0, 1]")

    # -- derived -----------------------------------------------------------

    def stage_rate(self, micro_rate: float, *, pipeline: bool) -> float:
        """Effective per-core rate for a stage, micro or in-pipeline."""
        return micro_rate * (self.pipeline_efficiency if pipeline else 1.0)

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """A copy with some constants replaced (for ablation benches)."""
        return replace(self, **kwargs)

    def for_codec(self, name: str) -> "CostModel":
        """A copy with compress/decompress rates scaled for one codec.

        Factors are relative to the calibrated LZ4 rates
        (:data:`CODEC_COST_FACTORS`); unknown codecs are an error so a
        plan cannot silently simulate with uncalibrated costs.
        """
        factors = CODEC_COST_FACTORS.get(name)
        if factors is None:
            raise ValidationError(
                f"no cost factors for codec {name!r}; "
                f"known: {sorted(CODEC_COST_FACTORS)}"
            )
        fc, fd = factors
        return self.with_overrides(
            compress_rate=self.compress_rate * fc,
            decompress_rate=self.decompress_rate * fd,
        )


@dataclass(frozen=True)
class PathSpec:
    """A network path between facilities.

    ``per_stream_cap_gbps`` models the TCP window/RTT limit of a single
    connection on this path; ``None`` means effectively unlimited
    (short-RTT LAN paths where the CPU is the per-connection limit).
    """

    name: str
    bandwidth_gbps: float
    rtt_ms: float = 0.05
    per_stream_cap_gbps: float | None = None
    #: Fraction of link rate deliverable as TCP goodput (framing, ACKs).
    efficiency: float = 0.97

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValidationError("path bandwidth must be > 0")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValidationError("path efficiency must be in (0, 1]")
        if self.per_stream_cap_gbps is not None and self.per_stream_cap_gbps <= 0:
            raise ValidationError("per_stream_cap_gbps must be > 0")

    @property
    def goodput_Bps(self) -> float:
        """Deliverable aggregate goodput in bytes/s."""
        return self.bandwidth_gbps * 1e9 * self.efficiency / 8.0

    def stream_cap_Bps(self) -> float | None:
        """Per-connection cap in bytes/s (None = uncapped)."""
        if self.per_stream_cap_gbps is None:
            return None
        return self.per_stream_cap_gbps * 1e9 / 8.0


#: Intra-APS path used by Figures 11/12 (updraft1 → lynxdtn): short RTT,
#: one TCP connection can reach ≈33 Gbps before the receive CPU binds.
APS_LAN_PATH = PathSpec(
    name="aps-lan",
    bandwidth_gbps=100.0,
    rtt_ms=0.05,
    per_stream_cap_gbps=35.0,
)

#: ALCF → APS path used by Figure 5 (Polaris → lynxdtn): 200 Gbps,
#: 0.45 ms RTT ⇒ each connection is window-limited to ≈14 Gbps, which is
#: why the paper needs ≥16 processes to reach 190+ Gbps.
ALCF_APS_PATH = PathSpec(
    name="alcf-aps",
    bandwidth_gbps=200.0,
    rtt_ms=0.45,
    per_stream_cap_gbps=14.0,
)
