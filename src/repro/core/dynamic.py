"""Dynamic core reallocation — the paper's §6 future-work feature.

    "We aim to enable the runtime system to adjust the allocation of
    cores to streaming software processes in response to real-time
    resource utilization."

The :class:`DynamicRebalancer` is a simulated background process that
periodically inspects the receiver's scheduler state and applies the
knowledge-base rules *online*:

- receive threads found off the NIC socket are pulled back to its
  least-loaded core;
- decompression threads found on the NIC socket are pushed to the
  least-loaded core of the non-NIC domain(s);
- any thread on a core oversubscribed by ≥2 relative to the machine's
  least-loaded core is spread out (classic load balancing, but with
  topology knowledge the OS lacks).

Used by the ``dynamic_rebalance`` example and the ablation benchmark: an
OS-placed scenario plus the rebalancer converges toward the statically
planned configuration's throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.topology import CoreId, MachineSpec
from repro.osmodel.scheduler import OsScheduler
from repro.plan.rules import REBALANCE_REASONS
from repro.sim.engine import Engine
from repro.util.errors import ValidationError
from repro.util.log import get_logger

logger = get_logger("core.dynamic")


@dataclass
class RebalanceAction:
    """One applied migration, for reporting."""

    time: float
    tid: str
    from_core: CoreId
    to_core: CoreId
    reason: str


@dataclass
class DynamicRebalancer:
    """Topology-aware online thread migration for one receiver machine."""

    engine: Engine
    scheduler: OsScheduler
    spec: MachineSpec
    nic_socket: int
    interval: float = 0.05
    #: imbalance (threads) that triggers a plain load-balancing move
    imbalance_threshold: int = 2
    actions: list[RebalanceAction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValidationError("rebalance interval must be > 0")
        self.spec._check_socket(self.nic_socket)

    def start(self) -> None:
        """Spawn the periodic rebalance process."""
        self.engine.process(self._run(), name="dynamic-rebalancer")

    # -- internals -------------------------------------------------------

    def _run(self):
        while True:
            yield self.engine.timeout(self.interval)
            self._rebalance_once()

    def _stage_of(self, tid: str) -> str:
        # Thread ids follow "{stream}.{stage}.{index}" (see runtime).
        parts = str(tid).split(".")
        return parts[-2] if len(parts) >= 2 else ""

    def _rebalance_once(self) -> None:
        sched = self.scheduler
        non_nic = [
            s for s in range(self.spec.num_sockets) if s != self.nic_socket
        ] or [self.nic_socket]
        for tid in list(sched._assignment):
            mask = sched._masks[tid]
            if len(mask) <= 1:
                continue  # hard-pinned thread: not ours to move
            core = sched.current(tid)
            stage = self._stage_of(tid)
            target: CoreId | None = None
            reason = ""
            if stage == "recv" and core.socket != self.nic_socket:
                target = self._least_loaded_on(sched, [self.nic_socket])
                reason = REBALANCE_REASONS["recv"]
            elif stage == "decompress" and core.socket == self.nic_socket:
                target = self._least_loaded_on(sched, non_nic)
                reason = REBALANCE_REASONS["decompress"]
            else:
                best = self._least_loaded_on(sched, None)
                if sched.loads[best] + self.imbalance_threshold <= sched.loads[core]:
                    target = best
                    reason = REBALANCE_REASONS["imbalance"]
            if target is not None and target != core and target in mask:
                if sched.loads[target] < sched.loads[core]:
                    sched.force_migrate(tid, target)
                    self.actions.append(
                        RebalanceAction(
                            self.engine.now, str(tid), core, target, reason
                        )
                    )
                    logger.debug(
                        "t=%.3f migrate %s %s -> %s (%s)",
                        self.engine.now, tid, core, target, reason,
                    )

    def _least_loaded_on(
        self, sched: OsScheduler, sockets: list[int] | None
    ) -> CoreId:
        cores = [
            c
            for c in self.spec.all_cores()
            if sockets is None or c.socket in sockets
        ]
        return min(cores, key=lambda c: (sched.loads[c], c))
