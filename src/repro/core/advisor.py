"""Capacity advisor: closed-form throughput predictions from the model.

The simulator *measures* a configuration; the advisor *predicts* it
analytically from the same cost model, in microseconds instead of
seconds.  Useful for what-if exploration ("can this gateway take a
fifth detector?") and as an independent cross-check of the simulator —
`tests/core/test_advisor.py` validates prediction against simulation
for the paper's configurations.

The prediction composes per-stage capacity bounds (the bottleneck
principle that Figure 12's narrative walks through):

    throughput = min over stages of (stage capacity in uncompressed-
                 equivalent bytes/s), also capped by NIC goodput x ratio
                 and per-connection window caps.

It deliberately ignores second-order effects the simulator captures
(queueing transients, CPU sharing between co-located stages, softIRQ
interference), so the advisor is documented as optimistic by ≤ ~10%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ScenarioConfig, StageKind, StreamConfig
from repro.core.params import CostModel, PathSpec
from repro.hw.topology import MachineSpec
from repro.util.errors import ConfigurationError
from repro.util.units import bytes_per_s_to_gbps


@dataclass(frozen=True)
class StageBound:
    """One stage's capacity in uncompressed-equivalent Gbps."""

    stage: str
    gbps: float
    detail: str


@dataclass(frozen=True)
class Prediction:
    """Analytic throughput prediction for one stream."""

    stream_id: str
    gbps: float
    bottleneck: str
    bounds: tuple[StageBound, ...]

    def render(self) -> str:
        lines = [f"prediction for {self.stream_id!r}: "
                 f"{self.gbps:.1f} Gbps, bound by {self.bottleneck}"]
        for b in sorted(self.bounds, key=lambda b: b.gbps):
            marker = "<-- bottleneck" if b.stage == self.bottleneck else ""
            lines.append(f"  {b.stage:<11} {b.gbps:7.1f} Gbps  {b.detail} {marker}")
        return "\n".join(lines)


class CapacityAdvisor:
    """Predicts stream throughput from stage counts and the cost model."""

    def __init__(self, cost: CostModel | None = None) -> None:
        self.cost = cost or CostModel()

    # -- per-stream prediction ------------------------------------------------

    def predict_stream(
        self,
        stream: StreamConfig,
        sender: MachineSpec,
        receiver: MachineSpec,
        path: PathSpec | None,
    ) -> Prediction:
        """Uncompressed-equivalent throughput bound for one stream."""
        c = self.cost
        ratio = stream.ratio_mean
        pipeline = not stream.micro
        bounds: list[StageBound] = []

        def core_factor(machine: MachineSpec, stage) -> float:
            # Mean clock scaling over the stage's candidate cores.
            cores = stage.placement.cores or tuple(machine.all_cores())
            return sum(machine.core_speed_factor(co) for co in cores) / len(cores)

        def add(stage_kind: StageKind, machine: MachineSpec, per_thread_Bps: float,
                *, wire_side: bool = False) -> None:
            stage = stream.stages().get(stage_kind)
            if stage is None:
                return
            threads = min(stage.count, _capacity_threads(machine, stage))
            rate = threads * per_thread_Bps * core_factor(machine, stage)
            if wire_side:
                rate *= ratio  # wire bytes -> uncompressed equivalent
            bounds.append(
                StageBound(
                    stage_kind.value,
                    bytes_per_s_to_gbps(rate),
                    f"{stage.count} threads",
                )
            )

        add(StageKind.INGEST, sender, c.ingest_rate)
        add(StageKind.COMPRESS, sender, c.stage_rate(c.compress_rate, pipeline=pipeline))
        add(StageKind.SEND, sender, c.send_cpu_rate, wire_side=True)
        add(StageKind.RECV, receiver, c.recv_cpu_rate, wire_side=True)
        add(StageKind.DECOMPRESS, receiver,
            c.stage_rate(c.decompress_rate, pipeline=pipeline))
        add(StageKind.EGEST, receiver, c.egest_rate)

        if stream.send is not None:
            if path is None:
                raise ConfigurationError(
                    f"stream {stream.stream_id!r} has a network hop but no path"
                )
            nic_gbps = min(
                sender.primary_nic().rate_gbps, receiver.primary_nic().rate_gbps
            )
            wire_cap = min(nic_gbps * 0.97, path.bandwidth_gbps * path.efficiency)
            per_conn = path.per_stream_cap_gbps
            if per_conn is not None:
                wire_cap = min(wire_cap, per_conn * stream.send.count)
            bounds.append(
                StageBound("network", wire_cap * ratio,
                           f"{stream.send.count} connections x path")
            )
        if not bounds:
            raise ConfigurationError(
                f"stream {stream.stream_id!r} has no stages to bound"
            )
        worst = min(bounds, key=lambda b: b.gbps)
        return Prediction(
            stream_id=stream.stream_id,
            gbps=worst.gbps,
            bottleneck=worst.stage,
            bounds=tuple(bounds),
        )

    # -- scenario-level --------------------------------------------------------

    def predict(self, scenario: ScenarioConfig) -> dict[str, Prediction]:
        """Predict every stream in a scenario (no cross-stream sharing:
        per-stream predictions are upper bounds when streams contend)."""
        out = {}
        for stream in scenario.streams:
            path = scenario.paths.get(stream.path) if stream.send else None
            out[stream.stream_id] = self.predict_stream(
                stream,
                scenario.machines[stream.sender],
                scenario.machines[stream.receiver],
                path,
            )
        return out


def _capacity_threads(machine: MachineSpec, stage) -> int:
    """Threads that can run concurrently given the placement's cores."""
    p = stage.placement
    if p.kind == "cores":
        return len(set(p.cores))
    if p.kind == "socket":
        (s,) = p.sockets
        return machine.sockets[s].cores
    if p.kind == "sockets":
        return sum(machine.sockets[s].cores for s in p.sockets)
    return machine.total_cores  # OS-managed: all cores available
