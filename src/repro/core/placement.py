"""Placement policies: where each pipeline thread executes.

A :class:`PlacementSpec` is the declarative part of a runtime
configuration ("compression threads on sockets 0 & 1", "receive threads
bound to the NIC's socket", "let the OS decide").  Resolving a spec
against a machine yields one :class:`ThreadHome` per thread:

- pinned homes have a fixed core for the run (``numa_bind``-style
  binding narrowed to per-core round-robin, which is what dedicating
  N cores of a socket to N threads means in the paper's setups);
- OS homes ask the :class:`~repro.osmodel.scheduler.OsScheduler` where
  to run at every scheduling opportunity (chunk boundary) and may
  migrate.

All threads — pinned or not — register with the machine's scheduler so
core-load accounting stays consistent across mixed configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.hw.topology import CoreId, MachineSpec
from repro.osmodel.affinity import AffinityMask
from repro.osmodel.scheduler import OsScheduler
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class PlacementSpec:
    """Declarative placement for one group of threads."""

    kind: str  # "cores" | "socket" | "sockets" | "os"
    sockets: tuple[int, ...] = ()
    cores: tuple[CoreId, ...] = ()
    #: wake-affinity hint for "os" placement (socket of the waker).
    hint_socket: int | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def pinned(cls, cores: Sequence[CoreId]) -> "PlacementSpec":
        """Pin thread i to ``cores[i % len(cores)]``."""
        if not cores:
            raise ConfigurationError("pinned placement needs >= 1 core")
        return cls(kind="cores", cores=tuple(cores))

    @classmethod
    def socket(cls, socket: int) -> "PlacementSpec":
        """Bind the group to one NUMA domain (``numa_bind``)."""
        return cls(kind="socket", sockets=(socket,))

    @classmethod
    def split(cls, sockets: Sequence[int]) -> "PlacementSpec":
        """Distribute the group evenly across several domains
        (Table 1's "0 & 1" configurations)."""
        if not sockets:
            raise ConfigurationError("split placement needs >= 1 socket")
        return cls(kind="sockets", sockets=tuple(sockets))

    @classmethod
    def os_managed(cls, hint_socket: int | None = None) -> "PlacementSpec":
        """Let the (modelled) OS place and migrate the threads."""
        return cls(kind="os", hint_socket=hint_socket)

    def describe(self) -> str:
        """Short human-readable form for reports."""
        if self.kind == "os":
            return "OS"
        if self.kind == "cores":
            return "cores[" + ",".join(map(str, self.cores)) + "]"
        return "N" + "&".join(map(str, self.sockets))


class ThreadHome:
    """Where one thread runs; queried at every chunk boundary."""

    def __init__(
        self,
        tid: str,
        scheduler: OsScheduler,
        mask: AffinityMask,
        *,
        dynamic: bool,
        hint_socket: int | None = None,
    ) -> None:
        self.tid = tid
        self.scheduler = scheduler
        self.mask = mask
        self.dynamic = dynamic
        self._core = scheduler.place(tid, mask, hint_socket=hint_socket)

    @property
    def core(self) -> CoreId:
        """The core the thread currently occupies."""
        return self._core

    @property
    def socket(self) -> int:
        return self._core.socket

    def next_chunk(self) -> CoreId:
        """A scheduling opportunity; OS-managed threads may migrate."""
        if self.dynamic:
            self._core = self.scheduler.reschedule(self.tid)
        return self._core

    def release(self) -> None:
        """Thread finished; drop its load contribution."""
        self.scheduler.remove(self.tid)


def resolve_placement(
    spec: PlacementSpec,
    machine: MachineSpec,
    count: int,
    scheduler: OsScheduler,
    *,
    group: str = "grp",
) -> list[ThreadHome]:
    """Turn a declarative spec into per-thread homes for ``count`` threads."""
    if count < 1:
        raise ConfigurationError(f"thread group {group!r} needs count >= 1")
    homes: list[ThreadHome] = []
    if spec.kind == "cores":
        for c in spec.cores:
            machine._check_socket(c.socket)
        for i in range(count):
            core = spec.cores[i % len(spec.cores)]
            homes.append(
                ThreadHome(
                    f"{group}.{i}",
                    scheduler,
                    AffinityMask.single(machine, core),
                    dynamic=False,
                )
            )
    elif spec.kind == "socket":
        (socket,) = spec.sockets
        cores = machine.cores_of(socket)
        for i in range(count):
            core = cores[i % len(cores)]
            homes.append(
                ThreadHome(
                    f"{group}.{i}",
                    scheduler,
                    AffinityMask.single(machine, core),
                    dynamic=False,
                )
            )
    elif spec.kind == "sockets":
        per_socket_counters = {s: 0 for s in spec.sockets}
        for i in range(count):
            socket = spec.sockets[i % len(spec.sockets)]
            cores = machine.cores_of(socket)
            core = cores[per_socket_counters[socket] % len(cores)]
            per_socket_counters[socket] += 1
            homes.append(
                ThreadHome(
                    f"{group}.{i}",
                    scheduler,
                    AffinityMask.single(machine, core),
                    dynamic=False,
                )
            )
    elif spec.kind == "os":
        mask = AffinityMask.all_cores(machine)
        for i in range(count):
            homes.append(
                ThreadHome(
                    f"{group}.{i}",
                    scheduler,
                    mask,
                    dynamic=True,
                    hint_socket=spec.hint_socket,
                )
            )
    else:  # pragma: no cover - constructors restrict kinds
        raise ConfigurationError(f"unknown placement kind {spec.kind!r}")
    return homes
