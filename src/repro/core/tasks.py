"""Simulated pipeline tasks: flow construction + worker processes.

Each pipeline thread of Figure 2 is a generator-based simulated process
that loops *get chunk → run flow → put chunk*.  The flow's demand vector
encodes exactly where the bytes move (which core, which memory
controllers, QPI crossings, NIC ports, softIRQ core), so NUMA placement
falls out of the resource model instead of being hand-waved.

Demand conventions (per payload byte of the stage's work unit):

=============  =========================  =================================
stage          work unit                  resources touched
=============  =========================  =================================
ingest         uncompressed bytes         core, src-read, local write, LLC
compress       uncompressed input bytes   core, read(home), write(1/ratio)
send           wire bytes                 core, read(home), write(local)
wire           wire bytes                 snd NIC tx+pcie, path, rcv NIC
                                          rx+pcie, DMA into NIC socket MC,
                                          softIRQ core; per-connection cap
recv           wire bytes                 core(×stall if remote), read(NIC
                                          socket), write(local), LLC
decompress     uncompressed output bytes  core, read(home, 1/ratio), write,
                                          extra MC + LLC amplification
=============  =========================  =================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.config import StageKind, StreamConfig
from repro.core.params import CostModel, PathSpec
from repro.core.placement import ThreadHome
from repro.data.chunking import Chunk
from repro.hw.machine import Machine
from repro.hw.memory import merge_demands
from repro.hw.nic import Nic
from repro.sim.engine import Engine
from repro.sim.flows import Flow, FlowNetwork, Resource
from repro.sim.queues import Store
from repro.util.errors import ConfigurationError
from repro.util.timeseries import RateMeter

#: End-of-stream sentinel passed through pipeline queues.
END = object()


@dataclass
class StageMeters:
    """Throughput accounting for one stage of one stream."""

    bytes_meter: RateMeter = field(default_factory=RateMeter)
    wire_meter: RateMeter = field(default_factory=RateMeter)
    chunks: int = 0

    def record(self, t: float, chunk: Chunk, start: float | None = None) -> None:
        self.bytes_meter.add(t, chunk.nbytes, start)
        self.wire_meter.add(t, chunk.wire_bytes, start)
        self.chunks += 1

    def steady_rate_Bps(self, skip: int, *, wire: bool = False) -> float:
        """Average bytes/s after discarding the first ``skip`` chunks.

        Completions that share the window-start timestamp are excluded:
        with N synchronized workers, chunks finish in batches of N at
        identical simulated instants, and counting the batch that
        *defines* t0 would overstate the rate by up to (N-1)/chunks.

        Work that *straddles* the window start is prorated: a flow that
        began before t0 but completed inside the window only transferred
        part of its bytes after t0, and crediting all of them to the
        window can report a rate above the physical link capacity on
        short runs (pipelined transfers in flight at t0 all land in a
        window much shorter than their own duration).
        """
        meter = self.wire_meter if wire else self.bytes_meter
        events = meter.events
        if len(events) <= skip + 1:
            return 0.0
        t0 = events[skip][0]
        t1 = events[-1][0]
        if t1 <= t0:
            return 0.0
        amount = 0.0
        for (t, a), s in zip(events[skip + 1 :], meter.starts[skip + 1 :]):
            if t <= t0:
                continue
            if s >= t0 or t <= s:
                amount += a
            else:
                amount += a * (t - t0) / (t - s)
        return amount / (t1 - t0)


class StageGate:
    """Counts a stage's live workers; the last one closes downstream."""

    def __init__(self, count: int, close: Callable[[], None]) -> None:
        self._remaining = count
        self._close = close

    @property
    def closed(self) -> bool:
        """True once the last worker exited and downstream was closed."""
        return self._remaining <= 0

    def add_worker(self) -> None:
        """Admit one more live worker (controller scale-up).

        Must happen before the new worker's process is registered, and
        only while the stage is still open — growing a finished stage
        would leave a worker waiting on a queue that never closes.
        """
        if self._remaining <= 0:
            raise ConfigurationError(
                "cannot add a worker to a closed stage gate"
            )
        self._remaining += 1

    def worker_done(self) -> None:
        self._remaining -= 1
        if self._remaining == 0:
            self._close()
        elif self._remaining < 0:  # pragma: no cover - defensive
            raise ConfigurationError("stage gate underflow")


@dataclass
class StreamContext:
    """Everything one stream's workers need to build flows."""

    engine: Engine
    network: FlowNetwork
    cost: CostModel
    config: StreamConfig
    sender: Machine
    receiver: Machine
    path_spec: PathSpec
    path_resource: Resource
    sender_nic: Nic
    receiver_nic: Nic
    #: recv-thread homes by connection index (wire pump reads the
    #: *current* socket for remote penalties).
    recv_homes: list[ThreadHome] = field(default_factory=list)

    @property
    def handoff_delay(self) -> float:
        """Per-chunk queue-handoff cost, amortized over the batch.

        The live runtime drains ``batch_frames`` chunks per lock
        round-trip, so the fixed handoff cost
        (``CostModel.queue_handoff_seconds``) is paid once per batch —
        the sim charges each chunk its amortized share so both
        substrates model the same batched handoff economics.
        """
        return self.cost.queue_handoff_seconds / self.config.batch_frames
    meters: dict[StageKind, StageMeters] = field(default_factory=dict)
    #: Optional per-chunk tracer (see :mod:`repro.sim.trace`).
    tracer: "object | None" = None
    #: Optional unified telemetry (see :mod:`repro.telemetry`); counters
    #: and frame totals are emitted on the engine's virtual clock.
    telemetry: "object | None" = None

    def meter(self, kind: StageKind) -> StageMeters:
        return self.meters.setdefault(kind, StageMeters())

    def stage_rate(self, micro_rate: float) -> float:
        return self.cost.stage_rate(micro_rate, pipeline=not self.config.micro)


# ---------------------------------------------------------------------------
# flow builders
# ---------------------------------------------------------------------------


def _cpu_demand(machine: Machine, core, rate_Bps: float) -> dict:
    """Core-seconds per payload byte at a per-reference-core rate."""
    return {machine.core(core): 1.0 / rate_Bps}


def ingest_flow(ctx: StreamContext, chunk: Chunk, core) -> Flow:
    m = ctx.sender
    src = (
        ctx.config.source_socket
        if ctx.config.source_socket is not None
        else core.socket
    )
    demands = merge_demands(
        _cpu_demand(m, core, ctx.cost.ingest_rate),
        m.memory.read(core.socket, src),
        m.memory.write(core.socket, core.socket),
    )
    return Flow(
        chunk.nbytes,
        demands,
        tags={
            "core": m.core(core).name,
            "stage": "ingest",
            "stream": chunk.stream_id,
        },
    )


def compress_flow(ctx: StreamContext, chunk: Chunk, core) -> Flow:
    m = ctx.sender
    home = chunk.home_socket if chunk.home_socket is not None else core.socket
    rate = ctx.stage_rate(ctx.cost.compress_rate)
    demands = merge_demands(
        _cpu_demand(m, core, rate),
        m.memory.read(core.socket, home),
        m.memory.write(core.socket, core.socket, 1.0 / chunk.ratio),
    )
    # Extra LLC pressure beyond the implicit copy traffic (read 1 +
    # write 1/ratio already charge the LLC via MemorySystem).
    extra_llc = ctx.cost.compress_llc_factor - (1.0 + 1.0 / chunk.ratio)
    if extra_llc > 0:
        demands = merge_demands(demands, {m.llc(core.socket): extra_llc})
    return Flow(
        chunk.nbytes,
        demands,
        tags={
            "core": m.core(core).name,
            "stage": "compress",
            "stream": chunk.stream_id,
        },
    )


def send_flow(ctx: StreamContext, chunk: Chunk, core) -> Flow:
    m = ctx.sender
    home = chunk.home_socket if chunk.home_socket is not None else core.socket
    demands = merge_demands(
        _cpu_demand(m, core, ctx.cost.send_cpu_rate),
        m.memory.read(core.socket, home),
        m.memory.write(core.socket, core.socket),
    )
    return Flow(
        chunk.wire_bytes,
        demands,
        tags={
            "core": m.core(core).name,
            "stage": "send",
            "stream": chunk.stream_id,
        },
    )


def wire_flow(ctx: StreamContext, chunk: Chunk, connection: int, send_socket: int) -> Flow:
    """The TCP connection + NIC + DMA leg between send and recv threads."""
    rx_nic = ctx.receiver_nic
    demands = merge_demands(
        ctx.sender_nic.tx_wire_demands(send_socket),
        {ctx.path_resource: 1.0},
        rx_nic.rx_wire_demands(),
    )
    # Kernel RX processing on the queue's IRQ-affinity core (§2.2).
    queue = rx_nic.rss_queue(f"{chunk.stream_id}/{connection}")
    softirq_core = rx_nic.softirq_core(queue)
    demands = merge_demands(
        demands,
        _cpu_demand(ctx.receiver, softirq_core, ctx.cost.softirq_rate),
    )
    cap = ctx.path_spec.stream_cap_Bps()
    max_rate = None
    if cap is not None:
        # A remote receive thread drains slower, shrinking the effective
        # window (remote_stream_penalty derivation in params.py).
        recv_home = ctx.recv_homes[connection]
        if recv_home.socket != rx_nic.socket:
            cap *= ctx.cost.remote_stream_penalty
        max_rate = cap
    return Flow(
        chunk.wire_bytes,
        demands,
        max_rate=max_rate,
        tags={
            "core": ctx.receiver.core(softirq_core).name,
            "stage": "wire",
            "stream": chunk.stream_id,
        },
    )


def recv_flow(ctx: StreamContext, chunk: Chunk, core) -> Flow:
    m = ctx.receiver
    nic_socket = ctx.receiver_nic.socket
    rate = ctx.cost.recv_cpu_rate
    if core.socket != nic_socket:
        rate /= ctx.cost.remote_stall_factor
    demands = merge_demands(
        _cpu_demand(m, core, rate),
        m.memory.read(core.socket, nic_socket),
        m.memory.write(core.socket, core.socket),
    )
    return Flow(
        chunk.wire_bytes,
        demands,
        tags={
            "core": m.core(core).name,
            "stage": "recv",
            "stream": chunk.stream_id,
        },
    )


def decompress_flow(ctx: StreamContext, chunk: Chunk, core) -> Flow:
    m = ctx.receiver
    home = chunk.home_socket if chunk.home_socket is not None else core.socket
    rate = ctx.stage_rate(ctx.cost.decompress_rate)
    compressed_fraction = 1.0 / chunk.ratio
    demands = merge_demands(
        _cpu_demand(m, core, rate),
        m.memory.read(core.socket, home, compressed_fraction),
        m.memory.write(core.socket, core.socket),
        # Recent-output re-reads that miss LLC (decompress_mc_factor),
        # charged on the output socket's controller.
        {m.mc(core.socket): ctx.cost.decompress_mc_factor - 1.0},
    )
    # Match-copy LLC amplification beyond implicit copy traffic.
    implicit_llc = compressed_fraction + 1.0
    extra_llc = ctx.cost.decompress_llc_factor - implicit_llc
    if extra_llc > 0:
        demands = merge_demands(demands, {m.llc(core.socket): extra_llc})
    return Flow(
        chunk.nbytes,
        demands,
        tags={
            "core": m.core(core).name,
            "stage": "decompress",
            "stream": chunk.stream_id,
        },
    )


# ---------------------------------------------------------------------------
# worker processes
# ---------------------------------------------------------------------------


def egest_flow(ctx: StreamContext, chunk: Chunk, core) -> Flow:
    """Sink write: decompressed chunk → application memory / page cache."""
    m = ctx.receiver
    home = chunk.home_socket if chunk.home_socket is not None else core.socket
    demands = merge_demands(
        _cpu_demand(m, core, ctx.cost.egest_rate),
        m.memory.read(core.socket, home),
        m.memory.write(core.socket, core.socket),
    )
    return Flow(
        chunk.nbytes,
        demands,
        tags={
            "core": m.core(core).name,
            "stage": "egest",
            "stream": chunk.stream_id,
        },
    )


def dispatcher_proc(
    ctx: StreamContext,
    source: Iterator[Chunk],
    outq: Store,
    downstream_count: "int | Callable[[], int]",
):
    """Feeds the first queue from the chunk source (zero sim cost).

    ``downstream_count`` may be a callable resolved *at close time*:
    the autotuning controller can grow the first stage mid-run, and the
    number of END sentinels must match the worker count at the moment
    the source drains, not at build time.
    """
    for chunk in source:
        if ctx.config.source_socket is not None:
            chunk.home_socket = ctx.config.source_socket
        yield outq.put(chunk)
    n = downstream_count() if callable(downstream_count) else downstream_count
    for _ in range(n):
        outq.force_put(END)


def _fault_plan(
    ctx: StreamContext, stage_value: str, index: int, processed: int
) -> tuple[float, list[str]]:
    """Injected (dead_time, redo_kinds) for this thread's next chunk.

    ``redo_kinds`` lists the one-shot ``crash``/``reconnect`` faults
    firing on this chunk: the worker runs the chunk's flow once for
    nothing (the work lost with the dead thread / dropped connection),
    pays the fault's ``duration`` as recovery time, then processes the
    chunk for real — the same recovery cost shape the resilient live
    transport exhibits (backoff + replay of the unacknowledged tail).
    """
    delay = 0.0
    redo: list[str] = []
    for fault in ctx.config.faults:
        if fault.stage != stage_value or fault.thread_index != index:
            continue
        if fault.kind == "stall" and processed == fault.at_chunk:
            delay += fault.duration
            if ctx.telemetry is not None:
                ctx.telemetry.emit_event(
                    "fault_injected",
                    f"stall fault on {stage_value}[{index}] "
                    f"at chunk {processed}",
                    severity="warning",
                    fault="stall",
                    stage=stage_value,
                    thread_index=index,
                    chunk=processed,
                    duration_s=fault.duration,
                )
        elif fault.kind == "degrade" and processed >= fault.at_chunk:
            delay += fault.duration
        elif (
            fault.kind in ("crash", "reconnect")
            and processed == fault.at_chunk
        ):
            delay += fault.duration
            redo.append(fault.kind)
    return delay, redo


def _record_recovery(ctx: StreamContext, fault_kind: str) -> None:
    """Book one crash/reconnect recovery into the resilience ledger."""
    if ctx.telemetry is None:
        return
    ctx.telemetry.record_fault(fault_kind)
    ctx.telemetry.record_retry()
    if fault_kind == "reconnect":
        ctx.telemetry.record_redelivery()
    ctx.telemetry.emit_event(
        "fault_injected",
        f"{fault_kind} fault recovered",
        severity="warning",
        fault=fault_kind,
    )


def stage_worker_proc(
    ctx: StreamContext,
    kind: StageKind,
    home: ThreadHome,
    inq: Store,
    outq: Store | None,
    gate: StageGate,
    flow_builder: Callable[[StreamContext, Chunk, Any], Flow],
    *,
    first_touch: bool = False,
    index: int = 0,
):
    """Generic stage worker: get → (reschedule) → flow → record → put."""
    meters = ctx.meter(kind)
    processed = 0
    try:
        while True:
            chunk = yield inq.get()
            if chunk is END:
                break
            if ctx.handoff_delay > 0.0:
                yield ctx.engine.timeout(ctx.handoff_delay)
            delay, redo = _fault_plan(ctx, kind.value, index, processed)
            processed += 1
            for fault_kind in redo:
                # Wasted pass: the work lost to the crash/drop.
                core = home.next_chunk()
                yield ctx.network.run(flow_builder(ctx, chunk, core))
                _record_recovery(ctx, fault_kind)
            if delay > 0.0:
                yield ctx.engine.timeout(delay)
            core = home.next_chunk()
            flow = flow_builder(ctx, chunk, core)
            t0 = ctx.engine.now
            yield ctx.network.run(flow)
            if first_touch:
                chunk.home_socket = core.socket
            meters.record(ctx.engine.now, chunk, start=t0)
            if ctx.tracer is not None:
                ctx.tracer.record(
                    chunk.stream_id, chunk.index, kind.value,
                    t0, ctx.engine.now, str(core),
                )
            if ctx.telemetry is not None:
                ctx.telemetry.record_chunk(
                    kind.value, chunk.stream_id, chunk.nbytes
                )
            if outq is not None:
                yield outq.put(chunk)
    finally:
        home.release()
        gate.worker_done()


def send_worker_proc(
    ctx: StreamContext,
    home: ThreadHome,
    inq: Store,
    sockq: Store,
    gate: StageGate,
    *,
    index: int = 0,
):
    """Send thread for one TCP connection: compressed queue → socket buffer."""
    meters = ctx.meter(StageKind.SEND)
    processed = 0
    try:
        while True:
            chunk = yield inq.get()
            if chunk is END:
                sockq.force_put(END)
                break
            if ctx.handoff_delay > 0.0:
                yield ctx.engine.timeout(ctx.handoff_delay)
            delay, redo = _fault_plan(ctx, "send", index, processed)
            processed += 1
            for fault_kind in redo:
                # Wasted pass: the transfer lost with the connection.
                core = home.next_chunk()
                yield ctx.network.run(send_flow(ctx, chunk, core))
                _record_recovery(ctx, fault_kind)
            if delay > 0.0:
                yield ctx.engine.timeout(delay)
            core = home.next_chunk()
            t0 = ctx.engine.now
            yield ctx.network.run(send_flow(ctx, chunk, core))
            chunk.home_socket = core.socket  # kernel buffer, first touch
            meters.record(ctx.engine.now, chunk, start=t0)
            if ctx.tracer is not None:
                ctx.tracer.record(
                    chunk.stream_id, chunk.index, "send",
                    t0, ctx.engine.now, str(core),
                )
            if ctx.telemetry is not None:
                ctx.telemetry.record_chunk(
                    "send", chunk.stream_id, chunk.nbytes
                )
            yield sockq.put(chunk)
    finally:
        home.release()
        gate.worker_done()


def wire_pump_proc(
    ctx: StreamContext,
    connection: int,
    sockq: Store,
    arrq: Store,
    send_socket_of: Callable[[], int],
):
    """One TCP connection: drains the socket buffer across the wire."""
    wire = ctx.meter(_WIRE_KIND)
    while True:
        chunk = yield sockq.get()
        if chunk is END:
            arrq.force_put(END)
            break
        flow = wire_flow(ctx, chunk, connection, send_socket_of())
        t0 = ctx.engine.now
        yield ctx.network.run(flow)
        chunk.home_socket = ctx.receiver_nic.socket  # DMA target
        wire.record(ctx.engine.now, chunk, start=t0)
        if ctx.tracer is not None:
            ctx.tracer.record(
                chunk.stream_id, chunk.index, "wire", t0, ctx.engine.now
            )
        if ctx.telemetry is not None:
            ctx.telemetry.record_chunk("wire", chunk.stream_id, chunk.nbytes)
            # The simulated hop is both ends of the transport at once.
            ctx.telemetry.record_frame("tx", chunk.wire_bytes)
            ctx.telemetry.record_frame("rx", chunk.wire_bytes)
        yield arrq.put(chunk)


class _WireKind:
    """Pseudo stage key for wire-level throughput accounting."""

    value = "wire"
    sender_side = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<wire>"


_WIRE_KIND = _WireKind()
WIRE = _WIRE_KIND
