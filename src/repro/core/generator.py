"""The runtime configuration generator — the paper's core contribution.

Given the hardware knowledge base and a workload description, emit a
:class:`~repro.core.config.ScenarioConfig` whose task counts and
placements encode the paper's observations:

- **Obs 1 / Obs 4** — receive threads go to cores of the NUMA domain the
  streaming NIC is attached to; the NIC socket's cores are divided
  evenly between concurrent streams (Figure 14's rationale: "the NUMA 1
  domain ... 16 cores, four distinct data streams → four cores each").
- **Obs 2** — compression threads may use *all* remaining sender cores;
  data/execution domain does not matter, but never oversubscribe past
  ≈2 threads/core (context-switch cliff).
- **Obs 3** — decompression threads go to the non-NIC socket(s), spread
  evenly across domains when more than one is available, keeping them
  off the receive cores and minimizing intra-socket LLC/MC contention.
- **sender backpressure** — send-thread placement is irrelevant (Obs 4);
  they are co-located with compression cores on the NIC socket.
- **ingest sizing** — source readers get dedicated cores, enough to
  sustain the target rate (`ceil(target / ingest_rate)`), because a
  starved reader throttles the whole pipeline no matter how many
  compression threads exist.

The OS-baseline generator (:meth:`ConfigGenerator.os_baseline`) emits the
same task counts with OS-managed placement — the §4.2 comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import ScenarioConfig, StageConfig, StageKind
from repro.core.knowledge import HardwareKnowledgeBase
from repro.core.params import CostModel
from repro.core.placement import PlacementSpec
from repro.hw.topology import CoreId, MachineSpec
from repro.plan.ir import PipelinePlan, StageNode, StreamNode
from repro.plan.passes import build_scenario
from repro.plan.rules import rationale_for
from repro.util.errors import ConfigurationError
from repro.util.log import get_logger
from repro.util.units import gbps_to_bytes_per_s

logger = get_logger("core.generator")


@dataclass
class StreamRequest:
    """One requested stream of a workload."""

    stream_id: str
    sender: str
    receiver: str
    path: str
    num_chunks: int = 250
    chunk_bytes: int = 11_059_200
    ratio_mean: float = 2.0
    ratio_sigma: float = 0.03
    #: Target uncompressed rate for sizing sender stages; defaults to the
    #: sender NIC rate × compression ratio (saturate the wire).
    target_gbps: float | None = None


@dataclass
class Workload:
    """A set of streams to plan for."""

    streams: list[StreamRequest]
    name: str = "workload"
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.streams:
            raise ConfigurationError("workload needs >= 1 stream")


@dataclass
class ConfigGenerator:
    """Plans NUMA-aware scenarios from the knowledge base."""

    kb: HardwareKnowledgeBase
    cost: CostModel = field(default_factory=CostModel)

    # -- public API ------------------------------------------------------

    def generate(self, workload: Workload) -> ScenarioConfig:
        """NUMA-aware scenario (the paper's runtime system).

        Equivalent to :meth:`generate_plan` run through the planner's
        standard passes and the sim lowering.
        """
        return build_scenario(self.generate_plan(workload))

    def os_baseline(self, workload: Workload) -> ScenarioConfig:
        """Same task counts, placement left to the (modelled) OS."""
        return build_scenario(self.os_baseline_plan(workload))

    def generate_plan(self, workload: Workload) -> PipelinePlan:
        """NUMA-aware :class:`PipelinePlan` — the substrate-neutral form.

        Lower it with :func:`repro.plan.lower.lower_sim` (or
        :meth:`generate`) for the simulator, or
        :func:`repro.plan.lower.lower_live` for the real-thread
        pipeline.
        """
        return self._plan(workload, numa_aware=True)

    def os_baseline_plan(self, workload: Workload) -> PipelinePlan:
        """OS-placement :class:`PipelinePlan` (the §4.2 baseline)."""
        return self._plan(workload, numa_aware=False)

    # -- planning -------------------------------------------------------------

    def _plan(self, workload: Workload, *, numa_aware: bool) -> PipelinePlan:
        # Receiver-side partitions are computed per gateway: each
        # receiver's NIC-socket cores are divided among the streams it
        # serves (Figure 14's rule, applied per machine).
        by_receiver: dict[str, list[int]] = {}
        for idx, req in enumerate(workload.streams):
            by_receiver.setdefault(req.receiver, []).append(idx)
        receiver_plans: dict[int, tuple[StageConfig, StageConfig]] = {}
        for receiver_name, indices in by_receiver.items():
            receiver = self.kb.machine(receiver_name)
            nic_socket = receiver.nic_socket()
            n = len(indices)
            recv_per_stream, recv_cores = self._partition_socket(
                receiver, nic_socket, n
            )
            dec_per_stream, dec_cores = self._decompress_partition(
                receiver, nic_socket, n
            )
            for local, idx in enumerate(indices):
                if numa_aware:
                    receiver_plans[idx] = (
                        StageConfig(
                            recv_per_stream,
                            PlacementSpec.pinned(recv_cores[local]),
                        ),
                        StageConfig(
                            dec_per_stream,
                            PlacementSpec.pinned(dec_cores[local]),
                        ),
                    )
                else:
                    # The OS sees threads woken from the NIC's softIRQ side.
                    receiver_plans[idx] = (
                        StageConfig(
                            recv_per_stream,
                            PlacementSpec.os_managed(hint_socket=nic_socket),
                        ),
                        StageConfig(
                            dec_per_stream,
                            PlacementSpec.os_managed(hint_socket=nic_socket),
                        ),
                    )

        # Senders may host several streams; track per-sender stream index
        # so two streams from one box get disjoint core partitions.
        policy = "numa_aware" if numa_aware else "os_baseline"

        def node(kind: StageKind, cfg: StageConfig) -> StageNode:
            numa = numa_aware and cfg.placement.kind != "os"
            return StageNode(
                kind=kind,
                count=cfg.count,
                placement=cfg.placement,
                rationale=rationale_for(kind, numa_aware=numa),
            )

        sender_usage: dict[str, int] = {}
        streams: list[StreamNode] = []
        for idx, req in enumerate(workload.streams):
            sender = self.kb.machine(req.sender)
            share = sender_usage.get(req.sender, 0)
            sender_usage[req.sender] = share + 1
            plan = self._sender_plan(sender, req)
            recv_cfg, dec_cfg = receiver_plans[idx]
            logger.debug(
                "planned %r: ingest=%d compress=%d send/recv=%d decomp=%d "
                "(recv -> %s)",
                req.stream_id, len(plan.ingest_cores), plan.compress_threads,
                recv_cfg.count, dec_cfg.count, recv_cfg.placement.describe(),
            )
            send_count = recv_cfg.count  # S/R pairs = TCP connections (§3.4)
            # Sender-side pinning is kept even in the OS baseline: §4.2
            # compares *receiver-side* placement policies, and sender
            # placement is irrelevant anyway (Obs 4).
            streams.append(
                StreamNode(
                    stream_id=req.stream_id,
                    sender=req.sender,
                    receiver=req.receiver,
                    path=req.path,
                    num_chunks=req.num_chunks,
                    chunk_bytes=req.chunk_bytes,
                    ratio_mean=req.ratio_mean,
                    ratio_sigma=req.ratio_sigma,
                    stages=(
                        node(
                            StageKind.INGEST,
                            StageConfig(
                                len(plan.ingest_cores),
                                PlacementSpec.pinned(plan.ingest_cores),
                            ),
                        ),
                        node(
                            StageKind.COMPRESS,
                            StageConfig(
                                plan.compress_threads,
                                PlacementSpec.pinned(plan.compress_cores),
                            ),
                        ),
                        node(
                            StageKind.SEND,
                            StageConfig(
                                send_count,
                                PlacementSpec.pinned(plan.send_cores),
                            ),
                        ),
                        node(StageKind.RECV, recv_cfg),
                        node(StageKind.DECOMPRESS, dec_cfg),
                    ),
                )
            )
        machines = {
            name: self.kb.machine(name)
            for name in {s.sender for s in workload.streams}
            | {s.receiver for s in workload.streams}
        }
        paths = {
            s.path: self.kb.path(s.path) for s in workload.streams
        }
        return PipelinePlan(
            name=f"{workload.name}:{'runtime' if numa_aware else 'os'}",
            machines=machines,
            paths=paths,
            streams=streams,
            cost=self.cost,
            seed=workload.seed,
            policy=policy,
            metadata={
                "workload": workload.name,
                "generator": "ConfigGenerator",
            },
        )

    # -- receiver-side partitioning -----------------------------------------

    @staticmethod
    def _partition_socket(
        machine: MachineSpec, socket: int, n_streams: int
    ) -> tuple[int, list[list[CoreId]]]:
        """Divide one socket's cores evenly among streams (Obs 1)."""
        cores = machine.cores_of(socket)
        per = max(1, len(cores) // n_streams)
        parts = [
            [cores[(i * per + j) % len(cores)] for j in range(per)]
            for i in range(n_streams)
        ]
        return per, parts

    def _decompress_partition(
        self, machine: MachineSpec, nic_socket: int, n_streams: int
    ) -> tuple[int, list[list[CoreId]]]:
        """Spread decompression over the non-NIC domain(s) (Obs 3)."""
        other = [s for s in range(machine.num_sockets) if s != nic_socket]
        if not other:
            other = [nic_socket]  # single-socket receiver: no choice
        pool = [c for s in other for c in machine.cores_of(s)]
        per = max(1, len(pool) // n_streams)
        parts = [
            [pool[(i * per + j) % len(pool)] for j in range(per)]
            for i in range(n_streams)
        ]
        return per, parts

    # -- sender-side planning ----------------------------------------------------

    @dataclass
    class _SenderPlan:
        ingest_cores: list[CoreId]
        compress_cores: list[CoreId]
        compress_threads: int
        send_cores: list[CoreId]

    def achievable_gbps(self, machine: MachineSpec, ratio: float) -> float:
        """Balanced uncompressed rate one sender can sustain.

        Solves the pipeline's CPU budget: every uncompressed byte costs
        ``1/ingest + 1/compress`` core-seconds plus ``(1/ratio)/send``
        for its wire bytes; the machine offers ``total_cores`` (clock-
        weighted) core-seconds per second.  Capped by the NIC's goodput
        at the given compression ratio.
        """
        compress = self.cost.stage_rate(self.cost.compress_rate, pipeline=True)
        per_byte = (
            1.0 / self.cost.ingest_rate
            + 1.0 / compress
            + (1.0 / ratio) / self.cost.send_cpu_rate
        )
        weighted_cores = sum(
            machine.core_speed_factor(c) for c in machine.all_cores()
        )
        t_cpu = weighted_cores / per_byte
        nic = self.kb.machine(machine.name).primary_nic()
        t_wire = nic.rate_gbps * 1e9 / 8.0 * 0.97 * ratio
        return min(t_cpu, t_wire) * 8.0 / 1e9

    def _sender_plan(self, machine: MachineSpec, req: StreamRequest) -> "_SenderPlan":
        target_gbps = req.target_gbps
        if target_gbps is None:
            target_gbps = self.achievable_gbps(machine, req.ratio_mean)
        target_Bps = gbps_to_bytes_per_s(target_gbps)

        # Ingest gets dedicated cores sized to the target rate, spread
        # over all sockets, taken from the high-index end of each socket.
        n_ingest = min(
            machine.total_cores // 2,
            max(1, math.ceil(target_Bps / self.cost.ingest_rate)),
        )
        ingest_cores = self._tail_cores(machine, n_ingest)
        ingest_set = set(ingest_cores)

        # Compression uses every remaining core, up to 2 threads/core
        # (Obs 2: scaling stops at the core count; beyond 2× it only
        # adds context switching).  One spare thread ride-along absorbs
        # the CPU share the co-located send threads consume.
        compress_cores = [
            c for c in machine.all_cores() if c not in ingest_set
        ]
        want = math.ceil(
            target_Bps
            / self.cost.stage_rate(self.cost.compress_rate, pipeline=True)
        ) + 1
        compress_threads = max(1, min(want, 2 * len(compress_cores)))

        # Send threads co-locate on the NIC socket's compression cores
        # (placement is irrelevant on the sender, Obs 4 — NIC-socket
        # locality is free, so take it).
        nic_socket = machine.nic_socket()
        send_pool = [c for c in compress_cores if c.socket == nic_socket]
        if not send_pool:
            send_pool = compress_cores
        return self._SenderPlan(
            ingest_cores=ingest_cores,
            compress_cores=compress_cores,
            compress_threads=compress_threads,
            send_cores=send_pool,
        )

    @staticmethod
    def _tail_cores(machine: MachineSpec, count: int) -> list[CoreId]:
        """Take ``count`` cores from the high-index end, socket-balanced."""
        if count > machine.total_cores:
            raise ConfigurationError(
                f"requested {count} dedicated cores, machine "
                f"{machine.name!r} has {machine.total_cores}"
            )
        remaining = [
            list(reversed(machine.cores_of(s)))
            for s in range(machine.num_sockets)
        ]
        cores: list[CoreId] = []
        i = 0
        while len(cores) < count:
            bucket = remaining[i % len(remaining)]
            if bucket:
                cores.append(bucket.pop(0))
            i += 1
        return sorted(cores)
