"""Runtime configuration: the declarative description of one scenario.

A :class:`ScenarioConfig` is what the paper's *runtime configuration
generator* emits (Figure 4): for every node, "the type of tasks
designated to individual sockets, the number of tasks, and the task
execution location" — plus the machines, network paths and workload
needed to run it.

Structure::

    ScenarioConfig
      machines: {name -> MachineSpec}
      paths:    {name -> PathSpec}
      streams:  [StreamConfig]          # one per detector stream
        sender-side stages: ingest?, compress?, send
        receiver-side stages: recv, decompress?
        each stage: StageConfig(count, PlacementSpec)

Stages are optional so the §3 microbenchmarks (compression only,
decompression only, network only) are expressed as degenerate pipelines
of the same machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.params import CostModel, PathSpec
from repro.core.placement import PlacementSpec
from repro.hw.topology import MachineSpec
from repro.util.errors import ConfigurationError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - the plan layer builds on this module
    from repro.plan.diagnostics import Diagnostics


@dataclass(frozen=True)
class FaultSpec:
    """An injected fault on one pipeline thread (failure testing).

    - ``kind="stall"``: the thread pauses for ``duration`` simulated
      seconds once, before processing its ``at_chunk``-th chunk —
      a GC pause, page fault storm, or interrupt burst;
    - ``kind="degrade"``: from its ``at_chunk``-th chunk on, the thread
      adds ``duration`` seconds of dead time per chunk — a thermally
      throttled or noisy-neighboured core;
    - ``kind="crash"``: the thread dies mid-way through its
      ``at_chunk``-th chunk and restarts: the work already done on that
      chunk is lost (its flow runs once for nothing), recovery takes
      ``duration`` seconds, then the chunk is reprocessed;
    - ``kind="reconnect"``: same shape on a connection — the in-flight
      transfer is lost, re-dialing costs ``duration`` seconds (the live
      runtime's capped backoff), and the chunk is redelivered.

    ``crash``/``reconnect`` mirror the live substrate's fault injection
    (:mod:`repro.faults`): both bump the shared telemetry resilience
    counters, so sim and live chaos runs read identically.  Faults
    exercise the pipeline's backpressure: upstream stages must block on
    full queues and drain afterwards with no chunk lost.
    """

    stage: str  # StageKind value, e.g. "compress"
    thread_index: int = 0
    at_chunk: int = 5
    duration: float = 0.05
    kind: str = "stall"

    KINDS = ("stall", "degrade", "crash", "reconnect")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValidationError(f"unknown fault kind {self.kind!r}")
        if self.duration < 0:
            raise ValidationError("fault duration must be >= 0")
        if self.at_chunk < 0 or self.thread_index < 0:
            raise ValidationError("fault indices must be >= 0")


class StageKind(enum.Enum):
    """The paper's pipeline stages (Figure 2) plus source ingest."""

    INGEST = "ingest"
    COMPRESS = "compress"
    SEND = "send"
    RECV = "recv"
    DECOMPRESS = "decompress"
    EGEST = "egest"

    @property
    def sender_side(self) -> bool:
        return self in (StageKind.INGEST, StageKind.COMPRESS, StageKind.SEND)


@dataclass(frozen=True)
class StageConfig:
    """Thread count + placement of one stage for one stream."""

    count: int
    placement: PlacementSpec

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValidationError("stage count must be >= 1")


@dataclass
class StreamConfig:
    """One detector stream: workload, endpoints, and per-stage configs."""

    stream_id: str
    sender: str
    receiver: str
    path: str
    num_chunks: int = 200
    chunk_bytes: int = 11_059_200  # one X-ray projection (§3.2)
    ratio_mean: float = 2.0
    ratio_sigma: float = 0.03
    #: NUMA domain the source dataset is pinned to (Table 1's "Memory
    #: Domain"); None means first-touch by the ingest/compress threads.
    source_socket: int | None = None
    ingest: StageConfig | None = None
    compress: StageConfig | None = None
    send: StageConfig | None = None
    recv: StageConfig | None = None
    decompress: StageConfig | None = None
    #: Receiver-side sink writers ("stores it back into memory or disk",
    #: Figure 2); optional — most experiments leave delivery in memory.
    egest: StageConfig | None = None
    #: Bounded inter-stage queue depth (chunks) — the paper's
    #: thread-safe queues; small values give tight backpressure.
    queue_capacity: int = 4
    #: Chunks moved per queue handoff (the live runtime's batched
    #: drain/vectored send); amortizes ``CostModel.queue_handoff_seconds``
    #: in the sim so both substrates model the same batched cost.
    batch_frames: int = 1
    #: True for the §3.2/§3.3 standalone microbenchmarks (no pipeline
    #: overhead on compute rates); False for full streaming pipelines.
    micro: bool = False
    #: Injected faults for failure testing (see :class:`FaultSpec`).
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.num_chunks < 1:
            raise ValidationError("num_chunks must be >= 1")
        if self.chunk_bytes < 1:
            raise ValidationError("chunk_bytes must be >= 1")
        if self.ratio_mean <= 0:
            raise ValidationError("ratio_mean must be > 0")
        if self.queue_capacity < 1:
            raise ValidationError("queue_capacity must be >= 1")
        if self.batch_frames < 1:
            raise ValidationError("batch_frames must be >= 1")
        if (self.send is None) != (self.recv is None):
            raise ConfigurationError(
                f"stream {self.stream_id!r}: send and recv stages must both "
                "be present (a network hop) or both absent (local pipeline)"
            )

    def stages(self) -> dict[StageKind, StageConfig]:
        """Present stages, in pipeline order."""
        out: dict[StageKind, StageConfig] = {}
        for kind, cfg in (
            (StageKind.INGEST, self.ingest),
            (StageKind.COMPRESS, self.compress),
            (StageKind.SEND, self.send),
            (StageKind.RECV, self.recv),
            (StageKind.DECOMPRESS, self.decompress),
            (StageKind.EGEST, self.egest),
        ):
            if cfg is not None:
                out[kind] = cfg
        if not out:
            raise ConfigurationError(
                f"stream {self.stream_id!r} has no stages"
            )
        return out


@dataclass
class ScenarioConfig:
    """A complete runnable scenario."""

    name: str
    machines: dict[str, MachineSpec]
    paths: dict[str, PathSpec]
    streams: list[StreamConfig]
    cost: CostModel = field(default_factory=CostModel)
    seed: int = 7
    #: Chunk completions per stream discarded before measuring rates
    #: (pipeline fill).
    warmup_chunks: int = 20
    #: Context-switch penalty per extra runnable thread on a core.
    csw_penalty: float = 0.04
    #: OS scheduler behaviour for os-managed placements.
    wake_affinity: float = 0.85
    migrate_prob: float = 0.005
    spill_threshold: int = 1
    #: Hard wall on simulated seconds (deadlock/runaway guard).
    max_sim_time: float = 600.0

    def __post_init__(self) -> None:
        self.validate()

    def diagnose(self) -> "Diagnostics":
        """Cross-check the scenario, collecting *every* violation.

        Lifts the scenario into the plan IR and runs the validation
        pass (:func:`repro.plan.validate.validate_plan`), so a scenario
        with three bad placements reports all three at once instead of
        stopping at the first.  Imported lazily: the plan layer builds
        on this module.
        """
        from repro.plan.ingest import plan_from_scenario
        from repro.plan.validate import validate_plan

        return validate_plan(plan_from_scenario(self))

    def validate(self) -> None:
        """Raising wrapper over :meth:`diagnose` (compatibility).

        Raises one :class:`ConfigurationError` whose message lists every
        collected error, one per line.
        """
        self.diagnose().raise_if_errors()

    def with_cost(self, cost: CostModel) -> "ScenarioConfig":
        """Copy with a different cost model (ablations)."""
        return replace(self, cost=cost)
