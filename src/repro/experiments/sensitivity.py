"""Sensitivity analysis: how robust is the headline to the cost model?

A reproduction built on a calibrated model owes its readers an answer
to "which of these conclusions depend on which assumptions?".  This
module perturbs one cost-model constant at a time and re-measures the
Figure-14 headline (runtime-over-OS speedup), producing a tornado-style
table.

Expected outcome (asserted by ``benchmarks/bench_sensitivity.py``):

- the 1.3–1.5× multi-stream speedup is *robust* — it survives halving
  or removing individual penalty factors, because it is primarily a
  CPU-oversubscription effect (OS packs 32 threads onto 16 cores);
- only the OS scheduler's packing behaviour itself (``wake_affinity``)
  can erase it, which is exactly the paper's claim: the win comes from
  knowing what the OS does not.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.runtime import run_scenario
from repro.experiments.base import ExperimentResult
from repro.experiments.fig14 import multi_stream_scenario
from repro.util.tables import Table

#: Parameter -> perturbed values (the default sits between them).
COST_PERTURBATIONS: dict[str, list[float]] = {
    "remote_stall_factor": [1.0, 1.35],
    "remote_stream_penalty": [1.0, 0.75],
    "decompress_llc_factor": [2.0, 8.0],
    "pipeline_efficiency": [0.6, 0.8],
    "softirq_rate": [4.0e9, 16.0e9],
}

#: Scenario-level knobs (not CostModel fields).
SCENARIO_PERTURBATIONS: dict[str, list[float]] = {
    "csw_penalty": [0.0, 0.12],
    "wake_affinity": [0.0, 1.0],
}


def headline_speedup(
    *,
    cost_overrides: dict[str, float] | None = None,
    scenario_overrides: dict[str, float] | None = None,
    num_chunks: int = 80,
    seed: int = 7,
) -> float:
    """Figure-14 runtime-over-OS speedup under perturbed constants."""
    speeds = {}
    for runtime_placement in (True, False):
        sc = multi_stream_scenario(
            runtime_placement=runtime_placement,
            num_chunks=num_chunks,
            seed=seed,
        )
        if cost_overrides:
            sc = replace(sc, cost=sc.cost.with_overrides(**cost_overrides))
        if scenario_overrides:
            sc = replace(sc, **scenario_overrides)
        speeds[runtime_placement] = run_scenario(sc).total_delivered_gbps
    return speeds[True] / speeds[False]


def run(quick: bool = False, seed: int = 7, **_: object) -> ExperimentResult:
    """One-factor-at-a-time sweep around the calibrated defaults."""
    cost_params = (
        dict(list(COST_PERTURBATIONS.items())[:1])
        if quick
        else COST_PERTURBATIONS
    )
    scenario_params = (
        {"wake_affinity": SCENARIO_PERTURBATIONS["wake_affinity"]}
        if quick
        else SCENARIO_PERTURBATIONS
    )
    num_chunks = 50 if quick else 80

    table = Table(
        headers=["parameter", "value", "fig14 speedup"],
        title="sensitivity of the Figure-14 headline (default speedup first)",
    )
    base = headline_speedup(num_chunks=num_chunks, seed=seed)
    table.add("(default)", "-", round(base, 2))
    results: dict[str, float] = {"default": base}

    for name, values in cost_params.items():
        for v in values:
            s = headline_speedup(
                cost_overrides={name: v}, num_chunks=num_chunks, seed=seed
            )
            results[f"{name}={v:g}"] = s
            table.add(name, f"{v:g}", round(s, 2))
    for name, values in scenario_params.items():
        for v in values:
            s = headline_speedup(
                scenario_overrides={name: v}, num_chunks=num_chunks, seed=seed
            )
            results[f"{name}={v:g}"] = s
            table.add(name, f"{v:g}", round(s, 2))

    robust = [
        v
        for k, v in results.items()
        if k != "default" and not k.startswith("wake_affinity")
    ]
    no_packing = results.get("wake_affinity=0", base)
    claims = {
        "headline speedup present at defaults (>1.25x)": base >= 1.25,
        "headline robust to individual cost-constant perturbations": all(
            v >= 1.1 for v in robust
        ),
        "OS wake-affinity packing is the load-bearing mechanism": (
            no_packing <= 1.12
        ),
    }
    return ExperimentResult(
        experiment="sensitivity",
        table=table,
        data={"results": results},
        claims=claims,
        notes=[
            "with wake_affinity=0 the modelled OS spreads threads evenly "
            "and the runtime's advantage (correctly) vanishes — the paper's "
            "win is knowledge the OS lacks, not magic",
        ],
    )
