"""Figure 8 — compression throughput & core maps, Table 1 configs A–H.

§3.2's microbenchmark: compression threads pull sequential 11.0592 MB
chunks of the 16 GB spheres dataset (resident in the NUMA domain of the
Table 1 row) and LZ4-compress them.  Reproduced observations (Obs 2):

- throughput scales with thread count until threads == available cores
  (16 for single-domain placements, 32 for both-domain/OS);
- at 32/64 threads the single-domain configs A–D deliver roughly half
  of E–H (context switching);
- neither the data's memory domain nor the execution domain matters
  (prefetching hides remote latency for sequential compression reads).
"""

from __future__ import annotations

from repro.core.config import ScenarioConfig, StageConfig, StreamConfig
from repro.core.runtime import SimRuntime, run_scenario
from repro.core.tables import TABLE1, Table1Config
from repro.experiments.base import ExperimentResult, paper_testbed, within
from repro.plan.passes import through_plan
from repro.util.tables import Table

DEFAULT_THREADS = (1, 2, 4, 8, 16, 32, 64)
MACHINE = "updraft1"  # "simulates the compression component of the sending machine"


def micro_scenario(
    stage: str,
    cfg: Table1Config,
    threads: int,
    *,
    machine: str = MACHINE,
    seed: int = 7,
    num_chunks: int | None = None,
) -> ScenarioConfig:
    """A single-stage (compress or decompress) Table-1 microbenchmark."""
    kb = paper_testbed()
    if num_chunks is None:
        num_chunks = max(48, threads * 5)
    placement = cfg.placement(os_hint_socket=cfg.memory_domain)
    stage_cfg = StageConfig(threads, placement)
    stream = StreamConfig(
        stream_id=f"{stage}-{cfg.label}-{threads}",
        sender=machine,
        receiver=machine,
        path="aps-lan",  # unused: no network hop
        num_chunks=num_chunks,
        source_socket=cfg.memory_domain,
        micro=True,
        **{stage: stage_cfg},
    )
    return through_plan(
        ScenarioConfig(
            name=f"fig-{stage}-{cfg.label}-{threads}t",
            machines={machine: kb.machine(machine)},
            paths={},
            streams=[stream],
            seed=seed,
            warmup_chunks=8,
        )
    )


def measure(cfg: Table1Config, threads: int, seed: int = 7) -> float:
    """Compression throughput in GB/s of uncompressed input."""
    sc = micro_scenario("compress", cfg, threads, seed=seed)
    res = run_scenario(sc)
    (stream,) = res.streams.values()
    return stream.stage_gbps["compress"] / 8.0  # Gbps -> GB/s


def core_map(cfg: Table1Config, threads: int, seed: int = 7) -> dict[str, float]:
    """Figure 8b: per-core utilization for one configuration."""
    rt = SimRuntime(micro_scenario("compress", cfg, threads, seed=seed))
    return rt.run().core_utilization[MACHINE]


def run(quick: bool = False, seed: int = 7, **_: object) -> ExperimentResult:
    """Regenerate Figure 8a (throughput sweep) + 8b claims."""
    threads = (1, 4, 16, 32) if quick else DEFAULT_THREADS
    labels = list(TABLE1)
    table = Table(
        headers=["threads", *labels],
        title="Figure 8a: compression throughput (GB/s) vs #threads, configs A-H",
    )
    results: dict[tuple[str, int], float] = {}
    for t in threads:
        row: list[object] = [t]
        for label in labels:
            gbs = measure(TABLE1[label], t, seed)
            results[(label, t)] = gbs
            row.append(round(gbs, 2))
        table.add(*row)

    t_hi = max(t for t in threads if t >= 16)
    per_thread_1 = results[("A", threads[0])] / threads[0]
    claims = {
        "throughput scales ~linearly to 16 threads (single domain)": within(
            results[("A", 16)], 16 * per_thread_1, 0.15
        )
        if 16 in threads
        else True,
        "single-domain configs halve vs both-domain at 32+ threads": (
            0.35
            <= results[("A", t_hi)] / results[("E", t_hi)]
            <= 0.65
        )
        if t_hi >= 32
        else True,
        "memory domain does not matter (A~B~C~D)": all(
            within(results[(l, t)], results[("A", t)], 0.1)
            for l in ("B", "C", "D")
            for t in threads
            if t <= 16
        ),
        "both-domain configs keep scaling to 32 threads (E~2x A at 32)": (
            results[("E", t_hi)] >= 1.5 * results[("A", t_hi)]
        )
        if t_hi >= 32
        else True,
    }
    data = {"results": {f"{l}/{t}": v for (l, t), v in results.items()}}
    artwork = None
    if not quick:
        data["core_maps"] = {
            f"{label}/{t}t": core_map(TABLE1[label], t, seed)
            for label in ("A", "E", "G")
            for t in (16, 32)
        }
        artwork = _core_map_art(
            data["core_maps"], "core-usage heatmap (paper Figure 8b style):"
        )
    return ExperimentResult(
        experiment="fig8",
        table=table,
        data=data,
        claims=claims,
        notes=[
            "paper Obs 2: 'Data compression speeds up with increased threads "
            "only until the number of threads matches the CPU's core count'",
        ],
        artwork=artwork,
    )


def _core_map_art(core_maps: dict[str, dict[str, float]], title: str) -> str:
    """Render per-config core maps as an ASCII heatmap (8b/9b panels)."""
    from repro.hw.topology import CoreId
    from repro.util.heatmap import render_heatmap

    cores = [CoreId(s, i) for s in (0, 1) for i in range(16)]
    return render_heatmap(
        [str(c) for c in cores],
        {
            label: {str(c): m.get(f"{MACHINE}/{c}", 0.0) for c in cores}
            for label, m in core_maps.items()
        },
        vmax=1.0,
        title=title,
    )
