"""Figure 11 — network throughput vs thread count, Table 2 configs A–E.

§3.4's study: *updraft1* (100 Gbps NIC) sends to *lynxdtn*; x send
threads pair with x receive threads into x TCP streams; no compression.
Chunk size equals the average compressed chunk.  Reproduced
observations (Obs 4):

- receiver-on-NUMA-1 configs (B, D) achieve ≈15% more throughput for
  1–3 threads;
- all configurations converge once the 100 Gbps NIC saturates (≥4
  threads);
- the sender-side socket has no effect (A≈C, B≈D).
"""

from __future__ import annotations

from repro.core.config import ScenarioConfig, StageConfig, StreamConfig
from repro.core.runtime import run_scenario
from repro.core.tables import TABLE2, Table2Config
from repro.experiments.base import ExperimentResult, paper_testbed, repeat_mean, within
from repro.experiments.fig05 import COMPRESSED_CHUNK
from repro.plan.passes import through_plan
from repro.util.tables import Table

DEFAULT_THREADS = (1, 2, 3, 4, 6, 8)
RECEIVER_NIC_SOCKET = 1


def network_scenario(
    cfg: Table2Config, threads: int, *, seed: int = 7, num_chunks: int | None = None
) -> ScenarioConfig:
    kb = paper_testbed()
    if num_chunks is None:
        num_chunks = max(60, threads * 25)
    stream = StreamConfig(
        stream_id=f"net-{cfg.label}-{threads}",
        sender="updraft1",
        receiver="lynxdtn",
        path="aps-lan",
        num_chunks=num_chunks,
        chunk_bytes=COMPRESSED_CHUNK,
        ratio_mean=1.0,
        ratio_sigma=0.0,
        send=StageConfig(threads, cfg.sender_placement()),
        recv=StageConfig(
            threads,
            cfg.receiver_placement(os_hint_socket=RECEIVER_NIC_SOCKET),
        ),
    )
    return through_plan(
        ScenarioConfig(
            name=f"fig11-{cfg.label}-{threads}t",
            machines={
                "updraft1": kb.machine("updraft1"),
                "lynxdtn": kb.machine("lynxdtn"),
            },
            paths={"aps-lan": kb.path("aps-lan")},
            streams=[stream],
            seed=seed,
            warmup_chunks=10,
        )
    )


def measure(cfg: Table2Config, threads: int, seed: int = 7) -> float:
    res = run_scenario(network_scenario(cfg, threads, seed=seed))
    (stream,) = res.streams.values()
    return stream.wire_gbps


def run(quick: bool = False, reps: int = 2, seed: int = 7) -> ExperimentResult:
    """Regenerate Figure 11."""
    threads = (1, 2, 3, 4) if quick else DEFAULT_THREADS
    reps = 1 if quick else reps
    labels = list(TABLE2)
    table = Table(
        headers=["threads", *labels],
        title="Figure 11: network throughput (Gbps) vs #send/recv threads, configs A-E",
    )
    results: dict[tuple[str, int], float] = {}
    for t in threads:
        row: list[object] = [t]
        for label in labels:
            gbps = repeat_mean(
                lambda s, l=label, t=t: measure(TABLE2[l], t, s),
                reps if label == "E" else 1,  # only the OS config is stochastic
                seed=seed,
                label=f"fig11/{label}/{t}",
            )
            results[(label, t)] = gbps
            row.append(round(gbps, 1))
        table.add(*row)

    low = [t for t in threads if t <= 3]
    claims = {
        "receiver-on-NUMA-1 (B,D) beats receiver-on-NUMA-0 (A,C) at 1-3 threads": all(
            results[("B", t)] > results[("A", t)]
            and results[("D", t)] > results[("C", t)]
            for t in low
        )
        and all(
            results[("B", t)] >= 1.08 * results[("A", t)]
            for t in low
            if t <= 2
        ),
        "B/D growth subdued from 2 to 3 threads (approaching the NIC)": (
            results[("B", 3)] - results[("B", 2)]
            < results[("A", 3)] - results[("A", 2)]
        )
        if {2, 3} <= set(threads)
        else True,
        "sender socket has no effect (A~C, B~D)": all(
            within(results[("A", t)], results[("C", t)], 0.03)
            and within(results[("B", t)], results[("D", t)], 0.03)
            for t in threads
        ),
        "all configurations converge at >=4 threads (NIC saturated)": all(
            within(results[(l, 4)], results[("D", 4)], 0.08) for l in labels
        )
        if 4 in threads
        else True,
        "~97 Gbps reached when saturated": results[("D", max(threads))] >= 90.0,
    }
    return ExperimentResult(
        experiment="fig11",
        table=table,
        data={"results": {f"{l}/{t}": v for (l, t), v in results.items()}},
        claims=claims,
        notes=[
            "paper Obs 4: B and D see 'up to a 15% boost when threads operate "
            "within NUMA domain 1'; sender placement is immaterial",
        ],
    )
