"""Figure 7 — normalized remote-memory-access bandwidth per core.

The paper's companion to Figure 6: for each configuration, the average
remote (cross-QPI) memory traffic each core generates, normalized to the
busiest core.  Reproduced observations:

- NUMA-0 placements generate heavy remote access on the pinned NUMA-0
  cores (every received byte is pulled across QPI from the NIC's
  domain) — "assigning streaming processes to cores in the NUMA 0
  domain led to an overhead due to remote memory access";
- NUMA-1 placements show (near-)zero remote access.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.fig06 import DEFAULT_CONFIGS, UsageConfig, measure_maps
from repro.experiments.fig05 import placement_cores
from repro.hw.topology import CoreId
from repro.util.tables import Table


def run(quick: bool = False, seed: int = 7, **_: object) -> ExperimentResult:
    """Regenerate Figure 7."""
    configs = DEFAULT_CONFIGS[:4] if quick else DEFAULT_CONFIGS
    all_cores = [CoreId(s, i) for s in (0, 1) for i in range(16)]
    core_names = [f"lynxdtn/{c}" for c in all_cores]

    remote: dict[str, dict[str, float]] = {}
    for cfg in configs:
        _, r = measure_maps(cfg, seed=seed, num_chunks=25 if quick else 40)
        remote[cfg.label] = r

    table = Table(
        headers=["core", *[c.label for c in configs]],
        title="Figure 7: normalized remote-memory-access bandwidth per core",
    )
    for core, name in zip(all_cores, core_names):
        table.add(
            str(core),
            *[round(remote[c.label].get(name, 0.0), 2) for c in configs],
        )

    claims: dict[str, bool] = {}
    for cfg in configs:
        r = remote[cfg.label]
        pinned = {f"lynxdtn/{c}" for c in placement_cores(cfg.domain, cfg.cores)}
        pinned_peak = max((r.get(n, 0.0) for n in pinned), default=0.0)
        if cfg.domain == "N0":
            claims[f"{cfg.label}: remote access concentrated on pinned N0 cores"] = (
                pinned_peak >= 0.9
            )
        elif cfg.domain == "N1":
            total = sum(r.values())
            claims[f"{cfg.label}: near-zero remote access"] = total <= 0.05 * max(
                len(r), 1
            )
    from repro.util.heatmap import render_heatmap

    return ExperimentResult(
        experiment="fig7",
        table=table,
        data={"remote": remote},
        claims=claims,
        notes=[
            "paper: remote-access overhead on NUMA-0-pinned receivers "
            "'consequently resulted in a reduced throughput' (Obs 1)",
        ],
        artwork=render_heatmap(
            [str(c) for c in all_cores],
            {
                c.label: {
                    str(core): remote[c.label].get(name, 0.0)
                    for core, name in zip(all_cores, core_names)
                }
                for c in configs
            },
            vmax=1.0,
            title="remote-access heatmap (paper Figure 7 style):",
        ),
    )
