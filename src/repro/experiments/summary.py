"""Run-everything summary: headline paper numbers vs. measured.

Collects the handful of values the paper leads with and prints one
table — the executive view of the reproduction.  Used by
``repro-experiment all`` after the per-exhibit output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import ExperimentResult
from repro.util.tables import Table


@dataclass(frozen=True)
class Headline:
    """One headline comparison extracted from an experiment result."""

    exhibit: str
    metric: str
    paper: str
    measured: str
    ok: bool


def extract_headlines(results: dict[str, ExperimentResult]) -> list[Headline]:
    """Pull headline numbers from whichever exhibits are present."""
    out: list[Headline] = []

    fig5 = results.get("fig5")
    if fig5:
        data = fig5.data["results"]
        boost = data["8/N1"] / data["8/N0"]
        peak = max(v for k, v in data.items() if k.endswith("/N1"))
        out.append(Headline("fig5", "NUMA-1 receive boost", "~1.15x",
                            f"{boost:.2f}x", 1.05 <= boost <= 1.3))
        out.append(Headline("fig5", "peak receiver throughput", "190+ Gbps",
                            f"{peak:.0f} Gbps", peak >= 185.0))

    fig9 = results.get("fig9")
    if fig9:
        data = fig9.data["results"]
        if "A/16" in data and "E/16" in data:
            gap = data["E/16"] / data["A/16"]
            out.append(Headline("fig9", "split-domain decompression gain",
                                "E/F outpace A-D", f"{gap:.2f}x", gap > 1.05))

    fig11 = results.get("fig11")
    if fig11:
        data = fig11.data["results"]
        if "D/1" in data and "A/1" in data:
            gap = data["D/1"] / data["A/1"]
            out.append(Headline("fig11", "per-thread NUMA-1 boost", "up to 15%",
                                f"{(gap - 1) * 100:.0f}%", 1.05 <= gap <= 1.25))

    fig12 = results.get("fig12")
    if fig12:
        data = fig12.data["results"]
        a_keys = [k for k in data if k.startswith("A/")]
        fg_keys = [k for k in data if k.startswith(("F/", "G/")) and k.endswith("/N1")]
        if a_keys and fg_keys:
            baseline = max(data[k] for k in a_keys)
            best = max(data[k] for k in fg_keys)
            speedup = best / baseline
            out.append(Headline("fig12", "single-stream best vs baseline",
                                "2.6x (97 vs 37 Gbps)",
                                f"{speedup:.2f}x ({best:.0f} vs {baseline:.0f} Gbps)",
                                2.2 <= speedup <= 3.0))

    fig14 = results.get("fig14")
    if fig14:
        speedup = fig14.data["speedup"]
        rt = fig14.data["runtime"]
        out.append(Headline("fig14", "multi-stream runtime vs OS",
                            "1.48x (212.95 vs 143.3 Gbps e2e)",
                            f"{speedup:.2f}x ({rt['e2e']:.0f} Gbps e2e)",
                            1.25 <= speedup <= 1.75))
    return out


def render_summary(results: dict[str, ExperimentResult]) -> str:
    """The executive table plus an overall claims tally."""
    table = Table(
        headers=["exhibit", "headline", "paper", "measured", "ok"],
        title="reproduction summary (paper vs measured)",
    )
    headlines = extract_headlines(results)
    for h in headlines:
        table.add(h.exhibit, h.metric, h.paper, h.measured,
                  "yes" if h.ok else "NO")
    total = sum(len(r.claims) for r in results.values())
    passed = sum(sum(r.claims.values()) for r in results.values())
    lines = [table.render(), "",
             f"claims: {passed}/{total} PASS across {len(results)} exhibits"]
    return "\n".join(lines)
