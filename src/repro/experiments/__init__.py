"""Experiment harness: one module per paper figure/table.

Every module exposes ``run(quick=False, reps=...) -> ExperimentResult``
that regenerates the corresponding exhibit's rows (same sweep axes, same
configurations) and carries machine-checkable qualitative claims —
who wins, by what factor, where the crossovers sit.  The benchmark
suite (``benchmarks/bench_fig*.py``) runs these and asserts the claims;
``repro-experiment <id>`` prints the tables.

Index (see DESIGN.md §5 for the full mapping):

========  ==========================================================
fig5      receiver throughput vs #streaming processes × NUMA domain
fig6      core-usage maps for selected Fig-5 configurations
fig7      per-core normalized remote-memory-access maps
fig8      compression throughput & core maps, Table 1 configs A–H
fig9      decompression throughput & core maps, Table 1 configs A–H
fig11     network throughput vs thread count, Table 2 configs A–E
fig12     single-stream end-to-end, Table 3 configs × receiver domain
fig14     4-stream aggregate, runtime placement vs OS placement
========  ==========================================================
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "get_experiment"]
