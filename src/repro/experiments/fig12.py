"""Figure 12 — single-stream end-to-end throughput, Table 3 configs A–G.

§4.1: the full pipeline (*updraft1* → *lynxdtn*, 100 Gbps path), with
Table 3's compression/decompression thread counts, swept over the
number of send/receive thread pairs, with the receiver threads executed
on NUMA 0 or NUMA 1 (the paper's bar colors).  Reproduced observations:

- configs A/B stay flat at ≈37 Gbps regardless of thread counts — the
  8 compression threads are the bottleneck;
- C/D land in between — the bottleneck shifts;
- E is capped by its 4 decompression threads;
- F/G with 8 send/recv threads and NUMA-1 receivers reach ≈97 Gbps,
  **2.6×** the A/B baseline.

The sender runs the planned layout throughout: dedicated ingest cores,
compression on the remaining cores, send threads co-located on the NIC
socket (the generator's rules; DESIGN.md §4 explains why ingest must
not share compression cores).
"""

from __future__ import annotations

from repro.core.config import ScenarioConfig, StageConfig, StreamConfig
from repro.core.placement import PlacementSpec
from repro.core.runtime import run_scenario
from repro.core.tables import TABLE3, Table3Config
from repro.experiments.base import ExperimentResult, paper_testbed, within
from repro.hw.topology import CoreId
from repro.plan.passes import through_plan
from repro.util.tables import Table

DEFAULT_SR_THREADS = (2, 4, 8)
RECV_DOMAINS = (0, 1)

#: Sender-side partition (updraft1: 2 x 16 cores): 8 ingest cores from
#: the tail of each socket, compression everywhere else, send threads on
#: the NIC socket's compression cores.
INGEST_CORES = [CoreId(s, i) for s in (0, 1) for i in range(12, 16)]
COMPRESS_CORES = [CoreId(s, i) for s in (0, 1) for i in range(0, 12)]
SEND_CORES = [CoreId(1, i) for i in range(0, 8)]


def e2e_scenario(
    cfg: Table3Config,
    sr_threads: int,
    recv_domain: int,
    *,
    seed: int = 7,
    num_chunks: int = 300,
) -> ScenarioConfig:
    kb = paper_testbed()
    stream = StreamConfig(
        stream_id=f"e2e-{cfg.label}-{sr_threads}-{recv_domain}",
        sender="updraft1",
        receiver="lynxdtn",
        path="aps-lan",
        num_chunks=num_chunks,
        ingest=StageConfig(8, PlacementSpec.pinned(INGEST_CORES)),
        compress=StageConfig(
            cfg.compress_threads, PlacementSpec.pinned(COMPRESS_CORES)
        ),
        send=StageConfig(sr_threads, PlacementSpec.pinned(SEND_CORES)),
        recv=StageConfig(sr_threads, PlacementSpec.socket(recv_domain)),
        decompress=StageConfig(
            cfg.decompress_threads, PlacementSpec.split([0, 1])
        ),
    )
    return through_plan(
        ScenarioConfig(
            name=f"fig12-{cfg.label}-{sr_threads}t-N{recv_domain}",
            machines={
                "updraft1": kb.machine("updraft1"),
                "lynxdtn": kb.machine("lynxdtn"),
            },
            paths={"aps-lan": kb.path("aps-lan")},
            streams=[stream],
            seed=seed,
            warmup_chunks=15,
        )
    )


def measure(
    cfg: Table3Config, sr_threads: int, recv_domain: int, seed: int = 7
) -> float:
    """End-to-end (uncompressed, consumer-side) throughput, Gbps."""
    res = run_scenario(e2e_scenario(cfg, sr_threads, recv_domain, seed=seed))
    (stream,) = res.streams.values()
    return stream.delivered_gbps


def run(quick: bool = False, seed: int = 7, **_: object) -> ExperimentResult:
    """Regenerate Figure 12."""
    labels = ["A", "C", "F"] if quick else list(TABLE3)
    sr_counts = (2, 8) if quick else DEFAULT_SR_THREADS
    table = Table(
        headers=["config", "C/D threads", *[
            f"{t}t-N{d}" for t in sr_counts for d in RECV_DOMAINS
        ]],
        title="Figure 12: end-to-end throughput (Gbps), Table 3 configs x "
        "#send/recv threads x receiver domain",
    )
    results: dict[tuple[str, int, int], float] = {}
    for label in labels:
        cfg = TABLE3[label]
        row: list[object] = [
            label, f"{cfg.compress_threads}/{cfg.decompress_threads}"
        ]
        for t in sr_counts:
            for d in RECV_DOMAINS:
                gbps = measure(cfg, t, d, seed)
                results[(label, t, d)] = gbps
                row.append(round(gbps, 1))
        table.add(*row)

    t_hi = max(sr_counts)
    a_vals = [results[("A", t, d)] for t in sr_counts for d in RECV_DOMAINS]
    baseline = max(a_vals)
    best = results[("F", t_hi, 1)]
    claims = {
        "A stays flat (~37 Gbps) across thread counts": all(
            within(v, 37.0, 0.12) for v in a_vals
        ),
        "C exceeds A (bottleneck shifts with 16 C-threads)": (
            results[("C", t_hi, 1)] >= 1.5 * results[("A", t_hi, 1)]
        ),
        "F@8 threads on NUMA-1 reaches ~97 Gbps": within(best, 97.0, 0.08),
        "2.6x speedup of F/G over the A/B baseline": 2.2
        <= best / baseline
        <= 3.0,
        # Within-config NUMA-1 vs NUMA-0: our fluid model underestimates
        # this gap (see the note below), so the check is that NUMA-1 is
        # never *meaningfully* worse — beyond queueing noise (~3%).
        "NUMA-1 receivers never meaningfully lose to NUMA-0": all(
            results[(l, t, 1)] >= 0.97 * results[(l, t, 0)]
            for l in labels
            for t in sr_counts
        ),
    }
    if not quick:
        claims["B matches A (extra D-threads don't help)"] = all(
            within(results[("B", t, d)], results[("A", t, d)], 0.1)
            for t in sr_counts
            for d in RECV_DOMAINS
        )
        claims["E capped by its 4 decompression threads"] = (
            results[("E", t_hi, 1)] < 0.75 * results[("F", t_hi, 1)]
        )
    return ExperimentResult(
        experiment="fig12",
        table=table,
        data={
            "results": {
                f"{l}/{t}/N{d}": v for (l, t, d), v in results.items()
            }
        },
        claims=claims,
        notes=[
            "paper: F/G with 8 threads + NUMA-1 receivers achieve 97 Gbps, "
            "'2.6X greater than the baseline ... configurations A and B, "
            "which yielded 37 Gbps'",
            "known deviation: the within-config NUMA-0/NUMA-1 gap is smaller "
            "here than in the paper — the fluid model only sees the remote "
            "penalty when receive threads are near their CPU limit "
            "(EXPERIMENTS.md, fig12)",
        ],
    )
