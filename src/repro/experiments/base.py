"""Shared experiment-harness plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.knowledge import HardwareKnowledgeBase
from repro.core.params import ALCF_APS_PATH, APS_LAN_PATH
from repro.hw.presets import lynxdtn_spec, polaris_spec, updraft_spec
from repro.util.rng import derive_seed
from repro.util.tables import Table


@dataclass
class ExperimentResult:
    """Output of one experiment run."""

    experiment: str
    table: Table
    #: Structured results keyed however the experiment likes.
    data: dict[str, Any] = field(default_factory=dict)
    #: Qualitative paper claims, name -> bool (benches assert these).
    claims: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Optional pre-rendered extra (e.g. an ASCII heatmap).
    artwork: str | None = None

    def render(self) -> str:
        lines = [self.table.render()]
        if self.artwork:
            lines.append("")
            lines.append(self.artwork)
        if self.claims:
            lines.append("")
            lines.append("claims:")
            for name, ok in self.claims.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def all_claims_hold(self) -> bool:
        return all(self.claims.values())


def paper_testbed() -> HardwareKnowledgeBase:
    """The §3.1/§4.2 machines and paths, registered."""
    kb = HardwareKnowledgeBase()
    kb.add_machine(lynxdtn_spec())
    kb.add_machine(updraft_spec(1))
    kb.add_machine(updraft_spec(2))
    kb.add_machine(polaris_spec(1))
    kb.add_machine(polaris_spec(2))
    kb.add_path(APS_LAN_PATH)
    kb.add_path(ALCF_APS_PATH)
    return kb


def repeat_mean(
    fn: Callable[[int], float], reps: int, *, seed: int = 7, label: str = ""
) -> float:
    """Average ``fn(seed_i)`` over ``reps`` derived seeds.

    Mirrors the paper's practice of averaging 5–30 repetitions per
    configuration point.
    """
    if reps < 1:
        raise ValueError("reps must be >= 1")
    vals = [fn(derive_seed(seed, label, i)) for i in range(reps)]
    return float(np.mean(vals))


def within(value: float, target: float, tol: float) -> bool:
    """|value - target| <= tol * target (relative tolerance check)."""
    return abs(value - target) <= tol * abs(target)
