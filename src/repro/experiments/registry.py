"""Registry mapping experiment ids to their run() callables."""

from __future__ import annotations

import importlib
from typing import Callable

from repro.experiments.base import ExperimentResult
from repro.util.errors import ValidationError

#: experiment id -> module path (lazy import keeps CLI startup cheap).
_MODULES: dict[str, str] = {
    "fig5": "repro.experiments.fig05",
    "fig6": "repro.experiments.fig06",
    "fig7": "repro.experiments.fig07",
    "fig8": "repro.experiments.fig08",
    "fig9": "repro.experiments.fig09",
    "fig11": "repro.experiments.fig11",
    "fig12": "repro.experiments.fig12",
    "fig14": "repro.experiments.fig14",
    # Extensions beyond the paper's exhibits:
    "sensitivity": "repro.experiments.sensitivity",
}

EXPERIMENTS = tuple(sorted(_MODULES))


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """Return the ``run`` callable for an experiment id."""
    try:
        module = _MODULES[name]
    except KeyError as exc:
        raise ValidationError(
            f"unknown experiment {name!r}; available: {list(EXPERIMENTS)}"
        ) from exc
    return importlib.import_module(module).run
