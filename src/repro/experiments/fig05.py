"""Figure 5 — receiver throughput vs #streaming processes × NUMA domain.

Setup (§3.1): four sender machines stream to *lynxdtn* over the
ALCF→APS path (200 Gbps, 0.45 ms RTT).  Each streaming process has one
sending and one receiving thread; no compression.  The receiving
processes are placed on NUMA 0 ("N0"), NUMA 1 ("N1" — the NIC's
domain), or split evenly ("N0,1").

Paper observations to reproduce:

- throughput rises with process count until the NIC saturates (190+
  Gbps achieved);
- placing receiving processes on NUMA 1 yields ≈15% more throughput
  than NUMA 0 below saturation (Observation 1).
"""

from __future__ import annotations

from repro.core.config import ScenarioConfig, StageConfig, StreamConfig
from repro.core.placement import PlacementSpec
from repro.core.runtime import run_scenario
from repro.experiments.base import ExperimentResult, paper_testbed, repeat_mean
from repro.hw.topology import CoreId
from repro.plan.passes import through_plan
from repro.util.tables import Table

#: Average compressed chunk (≈ one projection at the 2:1 ratio).
COMPRESSED_CHUNK = 5_529_600

SENDERS = ["updraft1", "updraft2", "polaris1", "polaris2"]

PLACEMENTS = ("N0", "N1", "N0,1")
DEFAULT_PROCESSES = (2, 4, 8, 16, 32, 64, 128)


def placement_cores(domain: str, cores_per_domain: int | None = None) -> list[CoreId]:
    """Receiver cores for a Figure-5 placement label."""
    limit = cores_per_domain if cores_per_domain is not None else 16
    if domain == "N0":
        return [CoreId(0, i) for i in range(limit)]
    if domain == "N1":
        return [CoreId(1, i) for i in range(limit)]
    if domain == "N0,1":
        half = max(1, limit)
        return [CoreId(s, i) for i in range(half) for s in (0, 1)]
    raise ValueError(f"unknown placement {domain!r}")


def streaming_scenario(
    processes: int,
    recv_cores: list[CoreId],
    *,
    seed: int = 7,
    num_chunks: int | None = None,
    name: str = "fig5",
) -> ScenarioConfig:
    """``processes`` 1-thread streams into lynxdtn, recv pinned
    round-robin over ``recv_cores`` (shared builder for Figs 5–7)."""
    kb = paper_testbed()
    if num_chunks is None:
        # The model is deterministic per seed; high process counts need
        # few chunks per stream for a stable steady-state estimate.
        num_chunks = max(16, 400 // processes)
    streams = []
    for i in range(processes):
        sender = SENDERS[i % len(SENDERS)]
        sender_spec = kb.machine(sender)
        send_sock = sender_spec.nic_socket()
        send_core = sender_spec.cores_of(send_sock)[
            (i // len(SENDERS)) % sender_spec.sockets[send_sock].cores
        ]
        recv_core = recv_cores[i % len(recv_cores)]
        streams.append(
            StreamConfig(
                stream_id=f"p{i}",
                sender=sender,
                receiver="lynxdtn",
                path="alcf-aps",
                num_chunks=num_chunks,
                chunk_bytes=COMPRESSED_CHUNK,
                ratio_mean=1.0,
                ratio_sigma=0.0,
                send=StageConfig(1, PlacementSpec.pinned([send_core])),
                recv=StageConfig(1, PlacementSpec.pinned([recv_core])),
            )
        )
    return through_plan(
        ScenarioConfig(
            name=f"{name}-p{processes}",
            machines={m: kb.machine(m) for m in SENDERS + ["lynxdtn"]},
            paths={"alcf-aps": kb.path("alcf-aps")},
            streams=streams,
            seed=seed,
            warmup_chunks=5,
        )
    )


def measure(processes: int, domain: str, seed: int) -> float:
    """Receiver-side aggregate throughput (Gbps) for one configuration."""
    sc = streaming_scenario(processes, placement_cores(domain), seed=seed)
    return run_scenario(sc).total_wire_gbps


def run(quick: bool = False, reps: int = 1, seed: int = 7) -> ExperimentResult:
    """Regenerate Figure 5."""
    # The Figure-5 configurations are fully pinned and deterministic
    # per seed, so reps defaults to 1 (the paper averaged repeated
    # *measurements* of a noisy shared network; our model has no such
    # noise source unless ratio_sigma is set).
    processes = (2, 4, 8, 16, 32) if quick else DEFAULT_PROCESSES
    reps = 1 if quick else reps
    table = Table(
        headers=["#p", *PLACEMENTS],
        title="Figure 5: receiver throughput (Gbps) vs #processes x domain",
    )
    results: dict[tuple[int, str], float] = {}
    for p in processes:
        row: list[object] = [p]
        for domain in PLACEMENTS:
            gbps = repeat_mean(
                lambda s, p=p, d=domain: measure(p, d, s),
                reps,
                seed=seed,
                label=f"fig5/{p}/{domain}",
            )
            results[(p, domain)] = gbps
            row.append(round(gbps, 1))
        table.add(*row)

    # Qualitative claims from the paper.
    sub_saturation = [p for p in processes if p <= 8]
    n1_boosts = [
        results[(p, "N1")] / results[(p, "N0")] for p in sub_saturation
    ]
    peak = max(results[(p, "N1")] for p in processes)
    claims = {
        # Rising to saturation; a mild convoy-effect dip at extreme
        # oversubscription (128 threads on 16 cores) is tolerated.
        "throughput rises with process count (N1 monotone to saturation)": all(
            results[(processes[i + 1], "N1")]
            >= 0.9 * results[(processes[i], "N1")]
            for i in range(len(processes) - 1)
        ),
        "NUMA-1 placement beats NUMA-0 below saturation (~15%)": all(
            1.05 <= b <= 1.30 for b in n1_boosts
        ),
        "split placement lands between N0 and N1 below saturation": all(
            results[(p, "N0")] - 1.0
            <= results[(p, "N0,1")]
            <= results[(p, "N1")] + 1.0
            for p in sub_saturation
        ),
        "190+ Gbps achieved at high process counts": peak >= (150.0 if quick else 185.0),
    }
    return ExperimentResult(
        experiment="fig5",
        table=table,
        data={"results": {f"{p}/{d}": v for (p, d), v in results.items()}},
        claims=claims,
        notes=[
            "paper: 'average increase of 15% in throughput ... when transfer "
            "tasks are allocated to cores in the NUMA 1 domain'",
        ],
    )
