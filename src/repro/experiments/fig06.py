"""Figure 6 — per-core usage maps for streaming configurations.

The paper plots utilization of all 32 *lynxdtn* cores under
configurations labelled like ``16P_2c_N0`` (16 streaming processes on
2 cores of NUMA 0).  Reproduced observations:

- activity concentrates on the pinned cores of the chosen domain;
- NUMA-0 configurations still light up NUMA-1 cores — the NIC's softIRQ
  processing stays on the NIC's socket regardless of where the app
  threads run (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runtime import SimRuntime
from repro.experiments.base import ExperimentResult
from repro.experiments.fig05 import placement_cores, streaming_scenario
from repro.hw.topology import CoreId
from repro.util.tables import Table


@dataclass(frozen=True)
class UsageConfig:
    """One Figure-6 column: #processes on #cores of a domain."""

    processes: int
    cores: int
    domain: str  # "N0" | "N1" | "N0,1"

    @property
    def label(self) -> str:
        return f"{self.processes}P_{self.cores}c_{self.domain.replace(',', '')}"


DEFAULT_CONFIGS = (
    UsageConfig(8, 2, "N0"),
    UsageConfig(8, 2, "N1"),
    UsageConfig(16, 4, "N0"),
    UsageConfig(16, 4, "N1"),
    UsageConfig(32, 8, "N0"),
    UsageConfig(32, 8, "N1"),
    UsageConfig(32, 16, "N0,1"),
)


def measure_maps(
    cfg: UsageConfig, *, seed: int = 7, num_chunks: int = 30
) -> tuple[dict[str, float], dict[str, float]]:
    """(core-utilization map, normalized remote-access map) for one config."""
    sc = streaming_scenario(
        cfg.processes,
        placement_cores(cfg.domain, cfg.cores),
        seed=seed,
        num_chunks=num_chunks,
        name=f"fig6-{cfg.label}",
    )
    rt = SimRuntime(sc)
    result = rt.run()
    return (
        result.core_utilization["lynxdtn"],
        result.remote_access["lynxdtn"],
    )


def run(quick: bool = False, seed: int = 7, **_: object) -> ExperimentResult:
    """Regenerate Figure 6 (and the raw data Figure 7 shares)."""
    configs = DEFAULT_CONFIGS[:4] if quick else DEFAULT_CONFIGS
    all_cores = [CoreId(s, i) for s in (0, 1) for i in range(16)]
    core_names = [f"lynxdtn/{c}" for c in all_cores]

    usage: dict[str, dict[str, float]] = {}
    remote: dict[str, dict[str, float]] = {}
    for cfg in configs:
        u, r = measure_maps(cfg, seed=seed, num_chunks=25 if quick else 40)
        usage[cfg.label] = u
        remote[cfg.label] = r

    table = Table(
        headers=["core", *[c.label for c in configs]],
        title="Figure 6: core utilization (fraction busy) per configuration",
    )
    for core, name in zip(all_cores, core_names):
        table.add(str(core), *[round(usage[c.label].get(name, 0.0), 2) for c in configs])

    claims: dict[str, bool] = {}
    for cfg in configs:
        u = usage[cfg.label]
        pinned = {
            f"lynxdtn/{c}" for c in placement_cores(cfg.domain, cfg.cores)
        }
        pinned_util = max(u.get(n, 0.0) for n in pinned)
        unpinned_app = [
            u.get(n, 0.0)
            for c, n in zip(all_cores, core_names)
            if n not in pinned and (cfg.domain != "N1" or c.socket == 0)
        ]
        claims[f"{cfg.label}: pinned cores busiest"] = pinned_util >= max(
            unpinned_app, default=0.0
        )
    n0_cfg = next(c for c in configs if c.domain == "N0")
    softirq_cores = [n for c, n in zip(all_cores, core_names) if c.socket == 1]
    claims["N0 configs still show NIC-socket (softIRQ) activity"] = (
        max(usage[n0_cfg.label].get(n, 0.0) for n in softirq_cores) > 0.01
    )
    from repro.util.heatmap import render_heatmap

    return ExperimentResult(
        experiment="fig6",
        table=table,
        data={"usage": usage, "remote": remote},
        claims=claims,
        notes=[
            "softIRQ load on NUMA-1 cores appears in every configuration "
            "because the NIC is attached to NUMA 1 (§2.2)",
        ],
        artwork=render_heatmap(
            [str(c) for c in all_cores],
            {
                c.label: {
                    str(core): usage[c.label].get(name, 0.0)
                    for core, name in zip(all_cores, core_names)
                }
                for c in configs
            },
            vmax=1.0,
            title="core-usage heatmap (paper Figure 6 style):",
        ),
    )
