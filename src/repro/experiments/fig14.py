"""Figure 14 — four concurrent streams: runtime placement vs OS placement.

§4.2's headline experiment: *updraft1/2* and *polaris1/2* each stream to
*lynxdtn* (200 Gbps NIC on NUMA 1).  Every sender runs 32 compression
threads and 4 send threads; each stream gets 4 receive and 4
decompression threads on the receiver.  The runtime pins each stream's
receive threads to 4 dedicated NUMA-1 cores and its decompression
threads to 4 dedicated NUMA-0 cores; the OS baseline places the same
threads itself (wake-affinity pulls them toward the NIC's socket, where
they pile up).

Paper numbers: runtime 105.41 Gbps network / 212.95 Gbps end-to-end;
OS 70.98 / 143.3 — a **1.48×** advantage.  End-to-end is 2× network at
the 2:1 compression ratio.
"""

from __future__ import annotations

from repro.core.config import ScenarioConfig, StageConfig, StreamConfig
from repro.core.placement import PlacementSpec
from repro.core.runtime import ScenarioResult, run_scenario
from repro.experiments.base import ExperimentResult, paper_testbed, repeat_mean
from repro.hw.topology import CoreId, MachineSpec
from repro.plan.passes import through_plan
from repro.util.rng import derive_seed
from repro.util.tables import Table

SENDERS = ["updraft1", "updraft2", "polaris1", "polaris2"]
RECEIVER = "lynxdtn"
NIC_SOCKET = 1


def _sender_partition(spec: MachineSpec) -> tuple[list[CoreId], list[CoreId], list[CoreId]]:
    """(ingest, compress, send) core lists for one sender."""
    if spec.num_sockets == 2:
        ingest = [CoreId(s, i) for s in (0, 1) for i in range(12, 16)]
        compress = [CoreId(s, i) for s in (0, 1) for i in range(0, 12)]
        send = [CoreId(1, i) for i in range(0, 8)]
    else:  # polaris: single 32-core socket
        ingest = [CoreId(0, i) for i in range(24, 32)]
        compress = [CoreId(0, i) for i in range(0, 24)]
        send = [CoreId(0, i) for i in range(0, 8)]
    return ingest, compress, send


def multi_stream_scenario(
    *, runtime_placement: bool, seed: int = 7, num_chunks: int = 250
) -> ScenarioConfig:
    """The Figure 13 testbed with Figure 14's thread configuration."""
    kb = paper_testbed()
    machines = {name: kb.machine(name) for name in SENDERS + [RECEIVER]}
    streams = []
    for k, sender in enumerate(SENDERS):
        ingest, compress, send = _sender_partition(machines[sender])
        if runtime_placement:
            # Obs 1: 16 NUMA-1 cores / 4 streams = 4 recv cores each;
            # Obs 3: decompression on NUMA 0, 4 cores per stream.
            recv = StageConfig(
                4, PlacementSpec.pinned([CoreId(1, 4 * k + j) for j in range(4)])
            )
            dec = StageConfig(
                4, PlacementSpec.pinned([CoreId(0, 4 * k + j) for j in range(4)])
            )
        else:
            # Threads woken from the NIC's softIRQ side: the OS pulls
            # them toward NUMA 1 and lets them pile up there.
            recv = StageConfig(4, PlacementSpec.os_managed(hint_socket=NIC_SOCKET))
            dec = StageConfig(4, PlacementSpec.os_managed(hint_socket=NIC_SOCKET))
        streams.append(
            StreamConfig(
                stream_id=f"stream-{k + 1}",
                sender=sender,
                receiver=RECEIVER,
                path="aps-lan" if sender.startswith("updraft") else "alcf-aps",
                num_chunks=num_chunks,
                ingest=StageConfig(8, PlacementSpec.pinned(ingest)),
                compress=StageConfig(32, PlacementSpec.pinned(compress)),
                send=StageConfig(4, PlacementSpec.pinned(send)),
                recv=recv,
                decompress=dec,
            )
        )
    return through_plan(
        ScenarioConfig(
            name=f"fig14-{'runtime' if runtime_placement else 'os'}",
            machines=machines,
            paths={
                "aps-lan": kb.path("aps-lan"),
                "alcf-aps": kb.path("alcf-aps"),
            },
            streams=streams,
            seed=seed,
            warmup_chunks=20,
        ),
        policy="numa_aware" if runtime_placement else "os_baseline",
    )


def measure(runtime_placement: bool, seed: int = 7, num_chunks: int = 250) -> ScenarioResult:
    return run_scenario(
        multi_stream_scenario(
            runtime_placement=runtime_placement, seed=seed, num_chunks=num_chunks
        )
    )


def run(quick: bool = False, reps: int = 2, seed: int = 7) -> ExperimentResult:
    """Regenerate Figure 14."""
    num_chunks = 120 if quick else 250
    reps = 1 if quick else reps
    rt = measure(True, seed, num_chunks)

    # The OS baseline is stochastic (placement tie-breaks); average the
    # aggregates over repeated seeds like the paper's repeated trials.
    os_runs = [
        measure(False, derive_seed(seed, "fig14-os", i), num_chunks)
        for i in range(reps)
    ]
    os_e2e = sum(r.total_delivered_gbps for r in os_runs) / len(os_runs)
    os_wire = sum(r.total_wire_gbps for r in os_runs) / len(os_runs)

    table = Table(
        headers=["placement", "stream", "network Gbps", "end-to-end Gbps"],
        title="Figure 14: runtime vs OS placement, 4 concurrent streams",
    )
    for sid, s in sorted(rt.streams.items()):
        table.add("runtime", sid, round(s.wire_gbps, 2), round(s.delivered_gbps, 2))
    table.add("runtime", "TOTAL", round(rt.total_wire_gbps, 2), round(rt.total_delivered_gbps, 2))
    for sid, s in sorted(os_runs[0].streams.items()):
        table.add("OS", sid, round(s.wire_gbps, 2), round(s.delivered_gbps, 2))
    table.add("OS", "TOTAL (mean)", round(os_wire, 2), round(os_e2e, 2))

    speedup = rt.total_delivered_gbps / os_e2e if os_e2e else float("inf")
    delivered_wire = sum(
        s.stage_gbps.get("delivered_wire", 0.0) for s in rt.streams.values()
    )
    e2e_over_wire = rt.total_delivered_gbps / delivered_wire
    claims = {
        "runtime cumulative ~105 Gbps network / ~213 Gbps e2e": (
            95.0 <= rt.total_wire_gbps <= 125.0
            and 195.0 <= rt.total_delivered_gbps <= 235.0
        ),
        "OS placement falls well behind (paper: 143.3 Gbps e2e)": os_e2e
        <= 0.82 * rt.total_delivered_gbps,
        "~1.48x runtime-over-OS speedup": 1.25 <= speedup <= 1.75,
        "end-to-end is ~2x network (2:1 compression)": 1.9 <= e2e_over_wire <= 2.1,
        "streams share fairly under runtime placement": (
            max(s.delivered_gbps for s in rt.streams.values())
            <= 1.25 * min(s.delivered_gbps for s in rt.streams.values())
        ),
    }
    return ExperimentResult(
        experiment="fig14",
        table=table,
        data={
            "runtime": {"wire": rt.total_wire_gbps, "e2e": rt.total_delivered_gbps},
            "os": {"wire": os_wire, "e2e": os_e2e},
            "speedup": speedup,
        },
        claims=claims,
        notes=[
            "paper: 105.41/212.95 Gbps with the runtime vs 70.98/143.3 with "
            "the OS — 1.48X",
        ],
    )
