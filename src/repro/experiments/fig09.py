"""Figure 9 — decompression throughput & core maps, Table 1 configs A–H.

§3.3's microbenchmark: decompression threads expand compressed chunks
(2:1) resident in the Table-1 memory domain.  Reproduced observations
(Obs 3):

- decompression is ≈3× faster than compression at equal thread counts;
- throughput scales with threads, but at 16 threads the even-split
  configurations E/F outpace the single-domain (A–D) and OS-packed
  (G/H) ones — single-socket placement saturates that socket's LLC/MC;
- the compressed data's memory domain does not matter.
"""

from __future__ import annotations

from repro.core.runtime import SimRuntime, run_scenario
from repro.core.tables import TABLE1, Table1Config
from repro.experiments.base import ExperimentResult, within
from repro.experiments.fig08 import MACHINE, measure as measure_compression, micro_scenario
from repro.util.tables import Table

DEFAULT_THREADS = (1, 2, 4, 8, 16)


def measure(cfg: Table1Config, threads: int, seed: int = 7) -> float:
    """Decompression throughput in GB/s of uncompressed output."""
    sc = micro_scenario("decompress", cfg, threads, seed=seed)
    res = run_scenario(sc)
    (stream,) = res.streams.values()
    return stream.stage_gbps["decompress"] / 8.0


def core_map(cfg: Table1Config, threads: int, seed: int = 7) -> dict[str, float]:
    """Figure 9b: per-core utilization for one configuration."""
    rt = SimRuntime(micro_scenario("decompress", cfg, threads, seed=seed))
    return rt.run().core_utilization[MACHINE]


def run(quick: bool = False, seed: int = 7, **_: object) -> ExperimentResult:
    """Regenerate Figure 9a (throughput sweep) + 9b claims."""
    threads = (1, 4, 8, 16) if quick else DEFAULT_THREADS
    labels = list(TABLE1)
    table = Table(
        headers=["threads", *labels],
        title="Figure 9a: decompression throughput (GB/s) vs #threads, configs A-H",
    )
    results: dict[tuple[str, int], float] = {}
    for t in threads:
        row: list[object] = [t]
        for label in labels:
            gbs = measure(TABLE1[label], t, seed)
            results[(label, t)] = gbs
            row.append(round(gbs, 2))
        table.add(*row)

    # The 3x claim compares equal thread counts against Figure 8.
    t3x = 8 if 8 in threads else threads[len(threads) // 2]
    comp = measure_compression(TABLE1["A"], t3x, seed)
    ratio_3x = results[("A", t3x)] / comp

    single16 = [results[(l, 16)] for l in ("A", "B", "C", "D")]
    split16 = [results[(l, 16)] for l in ("E", "F")]
    os16 = [results[(l, 16)] for l in ("G", "H")]
    claims = {
        "decompression ~3x compression at equal threads": 2.5 <= ratio_3x <= 3.5,
        "E/F outpace single-domain configs at 16 threads": min(split16)
        >= 1.08 * max(single16),
        "E/F outpace OS-packed configs at 16 threads": min(split16)
        > max(os16),
        "memory domain does not matter at low thread counts": all(
            within(results[(l, t)], results[("A", t)], 0.1)
            for l in ("B", "C", "D")
            for t in threads
            if t <= 8
        ),
        "8-thread performance consistent across configurations": all(
            within(results[(l, 8)], results[("A", 8)], 0.12) for l in labels
        )
        if 8 in threads
        else True,
    }
    data = {"results": {f"{l}/{t}": v for (l, t), v in results.items()}}
    artwork = None
    if not quick:
        from repro.experiments.fig08 import _core_map_art

        data["core_maps"] = {
            f"{label}/{t}t": core_map(TABLE1[label], t, seed)
            for label in ("A", "E", "G")
            for t in (8, 16)
        }
        artwork = _core_map_art(
            data["core_maps"], "core-usage heatmap (paper Figure 9b style):"
        )
    return ExperimentResult(
        experiment="fig9",
        table=table,
        data=data,
        claims=claims,
        notes=[
            "paper Obs 3: splitting decompression threads across domains "
            "'minimizes resource contention' at the LLC and memory controller",
        ],
        artwork=artwork,
    )
