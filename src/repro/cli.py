"""Command-line entry points.

``repro-experiment`` regenerates paper exhibits::

    repro-experiment fig12            # one exhibit
    repro-experiment all --quick      # whole evaluation, reduced sweeps

``repro-live`` runs the real-thread pipeline on this host::

    repro-live --chunks 12 --codec zlib --connections 2

``repro-plan`` / ``repro-run`` are the paper's Figure-4 workflow: the
configuration generator writes a scenario file; the runtime executes
it::

    repro-plan --stream det1:updraft1:lynxdtn:aps-lan -o plan.json
    repro-run plan.json
    repro-run plan.json --os-baseline   # same counts, OS placement
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, get_experiment


def experiment_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the paper's figures/tables on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="exhibit id (fig5, fig8, ...) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps, single repetitions"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failed: list[str] = []
    results = {}
    for name in names:
        run = get_experiment(name)
        t0 = time.time()
        result = run(quick=args.quick, seed=args.seed)
        results[name] = result
        print(result.render())
        print(f"[{name}: {time.time() - t0:.1f}s]")
        print()
        if not result.all_claims_hold():
            failed.append(name)
    if args.experiment == "all":
        from repro.experiments.summary import render_summary

        print(render_summary(results))
    if failed:
        print(f"FAILED claims in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def live_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description="Run the live (real threads + sockets) pipeline: "
        "in-process by default, or as a TCP endpoint with "
        "--listen / --connect (run the receiver first).",
    )
    parser.add_argument("--chunks", type=int, default=12)
    parser.add_argument("--codec", default="zlib")
    parser.add_argument("--compress-threads", type=int, default=2)
    parser.add_argument("--decompress-threads", type=int, default=2)
    parser.add_argument("--connections", type=int, default=2)
    parser.add_argument(
        "--detector",
        default="240x256",
        help="detector shape ROWSxCOLS (small by default: pure-Python codecs)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="run as the receiving endpoint (the upstream gateway)",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="run as the sending endpoint against a --listen receiver",
    )
    args = parser.parse_args(argv)
    if args.listen and args.connect:
        parser.error("--listen and --connect are mutually exclusive")

    from repro.data import SpheresDataset, SpheresPhantom
    from repro.data.chunking import DatasetChunkSource

    rows, cols = (int(x) for x in args.detector.lower().split("x"))

    def make_source():
        dataset = SpheresDataset(
            SpheresPhantom(
                cylinder_radius=300,
                cylinder_height=240,
                volume_fraction=0.2,
                seed=args.seed,
            ),
            detector_shape=(rows, cols),
            num_projections=max(args.chunks, 1),
            seed=args.seed,
        )
        return DatasetChunkSource("live", dataset, limit=args.chunks).chunks()

    if args.listen:
        from repro.live.remote import ReceiverServer

        host, port = args.listen.rsplit(":", 1)
        server = ReceiverServer(
            host or "0.0.0.0",
            int(port),
            codec=args.codec,
            connections=args.connections,
            decompress_threads=args.decompress_threads,
        )
        print(f"listening on {server.address[0]}:{server.address[1]} "
              f"for {args.connections} connection(s)...")
        report = server.serve()
        print(report.summary())
        return 0 if report.ok else 1

    if args.connect:
        from repro.live.remote import SenderClient

        host, port = args.connect.rsplit(":", 1)
        client = SenderClient(
            host,
            int(port),
            codec=args.codec,
            connections=args.connections,
            compress_threads=args.compress_threads,
        )
        report = client.run(make_source())
        print(report.summary())
        return 0 if report.ok else 1

    from repro.live import LiveConfig, LivePipeline

    pipeline = LivePipeline(
        LiveConfig(
            codec=args.codec,
            compress_threads=args.compress_threads,
            decompress_threads=args.decompress_threads,
            connections=args.connections,
        )
    )
    report = pipeline.run(make_source())
    print(report.summary())
    return 0 if report.ok else 1


def plan_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Generate a NUMA-aware scenario configuration file "
        "(the paper's runtime configuration generator, Figure 4).",
    )
    parser.add_argument(
        "--stream",
        action="append",
        required=True,
        metavar="ID:SENDER:RECEIVER:PATH",
        help="stream spec; repeatable. Machines: lynxdtn, updraft1/2, "
        "polaris1/2. Paths: aps-lan, alcf-aps.",
    )
    parser.add_argument("--chunks", type=int, default=250)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--os-baseline",
        action="store_true",
        help="emit the OS-placement baseline instead of the NUMA-aware plan",
    )
    parser.add_argument("-o", "--output", required=True)
    args = parser.parse_args(argv)

    from repro.core.generator import ConfigGenerator, StreamRequest, Workload
    from repro.core.serialize import save_scenario
    from repro.experiments.base import paper_testbed

    requests = []
    for spec in args.stream:
        parts = spec.split(":")
        if len(parts) != 4:
            parser.error(f"bad --stream {spec!r}: want ID:SENDER:RECEIVER:PATH")
        sid, sender, receiver, path = parts
        requests.append(
            StreamRequest(sid, sender, receiver, path, num_chunks=args.chunks)
        )
    generator = ConfigGenerator(paper_testbed())
    workload = Workload(requests, name="cli", seed=args.seed)
    scenario = (
        generator.os_baseline(workload)
        if args.os_baseline
        else generator.generate(workload)
    )
    save_scenario(scenario, args.output)
    print(f"wrote {scenario.name!r} ({len(scenario.streams)} streams) "
          f"to {args.output}")
    return 0


def run_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Execute a scenario configuration file on the simulator.",
    )
    parser.add_argument("scenario", help="path to a repro-plan JSON file")
    args = parser.parse_args(argv)

    from repro.core.runtime import run_scenario
    from repro.core.serialize import load_scenario
    from repro.util.tables import Table

    scenario = load_scenario(args.scenario)
    result = run_scenario(scenario)
    table = Table(
        headers=["stream", "chunks", "network Gbps", "end-to-end Gbps"],
        title=f"scenario {result.name!r} ({result.sim_time:.2f}s simulated)",
    )
    for sid in sorted(result.streams):
        s = result.streams[sid]
        table.add(sid, s.chunks_delivered, round(s.wire_gbps, 2),
                  round(s.delivered_gbps, 2))
    table.add("TOTAL", "-", round(result.total_wire_gbps, 2),
              round(result.total_delivered_gbps, 2))
    print(table.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(experiment_main())
