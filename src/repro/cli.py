"""Command-line entry points.

``repro-experiment`` regenerates paper exhibits::

    repro-experiment fig12            # one exhibit
    repro-experiment all --quick      # whole evaluation, reduced sweeps

``repro-live`` runs the real-thread pipeline on this host::

    repro-live --chunks 12 --codec zlib --connections 2
    repro-live --chunks 12 --trace-out trace.json   # Chrome/Perfetto trace
    repro-live --chunks 24 --fault drop:at=5 --fault corrupt:at=11
    repro-live --connect host:9000 --fault drop:at=5 --json-out out.json

``repro-plan`` / ``repro-run`` are the paper's Figure-4 workflow: the
configuration generator writes a scenario file; the runtime executes
it::

    repro-plan --stream det1:updraft1:lynxdtn:aps-lan -o plan.json
    repro-run plan.json
    repro-run plan.json --os-baseline   # same counts, OS placement
    repro-run plan.json --trace-out trace.json   # virtual-clock trace

``repro-telemetry`` exercises the unified observability layer on either
substrate and dumps/exports what it collected::

    repro-telemetry dump --substrate live --format prom
    repro-telemetry export --substrate sim -o trace.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, get_experiment


def experiment_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the paper's figures/tables on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="exhibit id (fig5, fig8, ...) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps, single repetitions"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failed: list[str] = []
    results = {}
    for name in names:
        run = get_experiment(name)
        t0 = time.time()
        result = run(quick=args.quick, seed=args.seed)
        results[name] = result
        print(result.render())
        print(f"[{name}: {time.time() - t0:.1f}s]")
        print()
        if not result.all_claims_hold():
            failed.append(name)
    if args.experiment == "all":
        from repro.experiments.summary import render_summary

        print(render_summary(results))
    if failed:
        print(f"FAILED claims in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def live_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description="Run the live (real threads + sockets) pipeline: "
        "in-process by default, or as a TCP endpoint with "
        "--listen / --connect (run the receiver first).",
    )
    parser.add_argument("--chunks", type=int, default=12)
    parser.add_argument("--codec", default="zlib")
    parser.add_argument("--compress-threads", type=int, default=2)
    parser.add_argument("--decompress-threads", type=int, default=2)
    parser.add_argument("--connections", type=int, default=2)
    parser.add_argument(
        "--detector",
        default="240x256",
        help="detector shape ROWSxCOLS (small by default: pure-Python codecs)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="run as the receiving endpoint (the upstream gateway)",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="run as the sending endpoint against a --listen receiver",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="collect telemetry and write a Chrome trace_event JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="collect telemetry and write Prometheus text exposition",
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="KIND[:k=v,...]",
        help="inject a sender-side transport fault (chaos testing); "
        "repeatable. Kinds: corrupt, truncate, drop, delay. Keys: "
        "at=<frame>, conn=<connection>, delay=<s>, count=<n>. "
        "Example: drop:at=5",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the run result as JSON (shared result envelope)",
    )
    args = parser.parse_args(argv)
    if args.listen and args.connect:
        parser.error("--listen and --connect are mutually exclusive")
    if args.listen and args.fault:
        parser.error("--fault is sender-side; use it with --connect or "
                     "the in-process loopback, not --listen")

    from repro.faults import FaultInjector, parse_fault
    from repro.util.errors import ValidationError

    try:
        fault_specs = [parse_fault(text) for text in args.fault]
    except ValidationError as exc:
        parser.error(str(exc))

    telemetry = None
    if args.trace_out or args.metrics_out or fault_specs:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    injector = (
        FaultInjector(fault_specs, telemetry=telemetry)
        if fault_specs
        else None
    )

    def write_json(report) -> None:
        if args.json_out:
            from repro.core.results import write_result_json

            write_result_json(report, args.json_out)
            print(f"wrote result to {args.json_out}")

    def finish_telemetry() -> None:
        if telemetry is None:
            return
        if args.trace_out:
            n = telemetry.write_chrome_trace(args.trace_out)
            print(f"wrote {n} trace events to {args.trace_out}")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(telemetry.prometheus_text())
            print(f"wrote metrics to {args.metrics_out}")
        report = telemetry.pipeline_report()
        if report.stages:
            print(report.render())

    from repro.data import SpheresDataset, SpheresPhantom
    from repro.data.chunking import DatasetChunkSource

    rows, cols = (int(x) for x in args.detector.lower().split("x"))

    def make_source():
        dataset = SpheresDataset(
            SpheresPhantom(
                cylinder_radius=300,
                cylinder_height=240,
                volume_fraction=0.2,
                seed=args.seed,
            ),
            detector_shape=(rows, cols),
            num_projections=max(args.chunks, 1),
            seed=args.seed,
        )
        return DatasetChunkSource("live", dataset, limit=args.chunks).chunks()

    if args.listen:
        from repro.live.remote import ReceiverServer

        host, port = args.listen.rsplit(":", 1)
        server = ReceiverServer(
            host or "0.0.0.0",
            int(port),
            codec=args.codec,
            connections=args.connections,
            decompress_threads=args.decompress_threads,
            telemetry=telemetry,
        )
        print(f"listening on {server.address[0]}:{server.address[1]} "
              f"for {args.connections} connection(s)...")
        report = server.serve()
        print(report.summary())
        finish_telemetry()
        write_json(report)
        return 0 if report.ok else 1

    if args.connect:
        from repro.live.remote import SenderClient

        host, port = args.connect.rsplit(":", 1)
        client = SenderClient(
            host,
            int(port),
            codec=args.codec,
            connections=args.connections,
            compress_threads=args.compress_threads,
            telemetry=telemetry,
            injector=injector,
        )
        report = client.run(make_source())
        print(report.summary())
        finish_telemetry()
        write_json(report)
        return 0 if report.ok else 1

    if injector is not None:
        # Faults need the resilient TCP endpoints; run both over
        # loopback (the in-process socketpair pipeline has no recovery).
        import threading

        from repro.live.remote import ReceiverServer, SenderClient

        server = ReceiverServer(
            port=0,
            codec=args.codec,
            connections=args.connections,
            decompress_threads=args.decompress_threads,
            telemetry=telemetry,
        )
        host, port = server.address
        box: dict = {}

        def serve() -> None:
            box["report"] = server.serve()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        client = SenderClient(
            host,
            port,
            codec=args.codec,
            connections=args.connections,
            compress_threads=args.compress_threads,
            telemetry=telemetry,
            injector=injector,
        )
        sender_report = client.run(make_source())
        thread.join(client.timeouts.join)
        report = box.get("report")
        print(sender_report.summary())
        if report is not None:
            print(report.summary())
        if telemetry is not None:
            print(
                "resilience: retries="
                f"{telemetry.counter_value('transport_retries_total'):.0f} "
                "redeliveries="
                f"{telemetry.counter_value('transport_redeliveries_total'):.0f} "
                "rejected="
                f"{telemetry.counter_value('transport_frames_rejected_total'):.0f} "
                "deduped="
                f"{telemetry.counter_value('transport_frames_deduped_total'):.0f}"
            )
        finish_telemetry()
        write_json(sender_report)
        ok = sender_report.ok and report is not None and report.ok
        return 0 if ok else 1

    from repro.live import LiveConfig, LivePipeline

    pipeline = LivePipeline(
        LiveConfig(
            codec=args.codec,
            compress_threads=args.compress_threads,
            decompress_threads=args.decompress_threads,
            connections=args.connections,
        ),
        telemetry=telemetry,
    )
    report = pipeline.run(make_source())
    print(report.summary())
    finish_telemetry()
    write_json(report)
    return 0 if report.ok else 1


def plan_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="Generate a NUMA-aware scenario configuration file "
        "(the paper's runtime configuration generator, Figure 4).",
    )
    parser.add_argument(
        "--stream",
        action="append",
        required=True,
        metavar="ID:SENDER:RECEIVER:PATH",
        help="stream spec; repeatable. Machines: lynxdtn, updraft1/2, "
        "polaris1/2. Paths: aps-lan, alcf-aps.",
    )
    parser.add_argument("--chunks", type=int, default=250)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--os-baseline",
        action="store_true",
        help="emit the OS-placement baseline instead of the NUMA-aware plan",
    )
    parser.add_argument("-o", "--output", required=True)
    args = parser.parse_args(argv)

    from repro.core.generator import ConfigGenerator, StreamRequest, Workload
    from repro.core.serialize import save_scenario
    from repro.experiments.base import paper_testbed

    requests = []
    for spec in args.stream:
        parts = spec.split(":")
        if len(parts) != 4:
            parser.error(f"bad --stream {spec!r}: want ID:SENDER:RECEIVER:PATH")
        sid, sender, receiver, path = parts
        requests.append(
            StreamRequest(sid, sender, receiver, path, num_chunks=args.chunks)
        )
    generator = ConfigGenerator(paper_testbed())
    workload = Workload(requests, name="cli", seed=args.seed)
    scenario = (
        generator.os_baseline(workload)
        if args.os_baseline
        else generator.generate(workload)
    )
    save_scenario(scenario, args.output)
    print(f"wrote {scenario.name!r} ({len(scenario.streams)} streams) "
          f"to {args.output}")
    return 0


def run_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Execute a scenario configuration file on the simulator.",
    )
    parser.add_argument("scenario", help="path to a repro-plan JSON file")
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="collect telemetry on the virtual clock and write a Chrome "
        "trace_event JSON of every simulated stage span",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="collect telemetry and write Prometheus text exposition",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the run result as JSON (shared result envelope)",
    )
    args = parser.parse_args(argv)

    from repro.core.runtime import SimRuntime, run_scenario
    from repro.core.serialize import load_scenario
    from repro.util.tables import Table

    scenario = load_scenario(args.scenario)
    if args.trace_out or args.metrics_out:
        runtime = SimRuntime(scenario, telemetry=True)
        result = runtime.run()
        tel = runtime.telemetry
        if args.trace_out:
            n = tel.write_chrome_trace(args.trace_out)
            print(f"wrote {n} trace events to {args.trace_out}")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(tel.prometheus_text())
            print(f"wrote metrics to {args.metrics_out}")
        for sid in sorted(result.streams):
            print(tel.pipeline_report(sid).render())
    else:
        result = run_scenario(scenario)
    table = Table(
        headers=["stream", "chunks", "network Gbps", "end-to-end Gbps"],
        title=f"scenario {result.name!r} ({result.sim_time:.2f}s simulated)",
    )
    for sid in sorted(result.streams):
        s = result.streams[sid]
        table.add(sid, s.chunks_delivered, round(s.wire_gbps, 2),
                  round(s.delivered_gbps, 2))
    table.add("TOTAL", "-", round(result.total_wire_gbps, 2),
              round(result.total_delivered_gbps, 2))
    print(table.render())
    if args.json_out:
        from repro.core.results import write_result_json

        write_result_json(result, args.json_out)
        print(f"wrote result to {args.json_out}")
    return 0


def _collect_telemetry(substrate: str, chunks: int, seed: int, codec: str):
    """Run a small canned pipeline on ``substrate``, return its Telemetry."""
    from repro.telemetry import Telemetry

    if substrate == "live":
        from repro.data import SpheresDataset, SpheresPhantom
        from repro.data.chunking import DatasetChunkSource
        from repro.live import LiveConfig, LivePipeline

        dataset = SpheresDataset(
            SpheresPhantom(
                cylinder_radius=300,
                cylinder_height=240,
                volume_fraction=0.2,
                seed=seed,
            ),
            detector_shape=(64, 64),
            num_projections=max(chunks, 1),
            seed=seed,
        )
        source = DatasetChunkSource("live", dataset, limit=chunks).chunks()
        telemetry = Telemetry()
        pipeline = LivePipeline(LiveConfig(codec=codec), telemetry=telemetry)
        report = pipeline.run(source)
        if not report.ok:
            raise SystemExit(f"live run failed: {'; '.join(report.errors)}")
        return telemetry

    from repro.core.generator import ConfigGenerator, StreamRequest, Workload
    from repro.core.runtime import SimRuntime
    from repro.experiments.base import paper_testbed

    workload = Workload(
        [
            StreamRequest(
                "det1", "updraft1", "lynxdtn", "aps-lan", num_chunks=chunks
            )
        ],
        name="telemetry-cli",
        seed=seed,
    )
    scenario = ConfigGenerator(paper_testbed()).generate(workload)
    runtime = SimRuntime(scenario, telemetry=True)
    runtime.run()
    return runtime.telemetry


def telemetry_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Exercise the unified telemetry layer: run a small "
        "pipeline on either substrate and dump metrics or export a trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--substrate",
            choices=["live", "sim"],
            default="live",
            help="real threads+sockets, or the virtual-clock simulator",
        )
        p.add_argument("--chunks", type=int, default=8)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--codec", default="zlib", help="live substrate codec")

    dump = sub.add_parser(
        "dump", help="print collected metrics and the pipeline report"
    )
    common(dump)
    dump.add_argument(
        "--format",
        choices=["prom", "json", "report"],
        default="report",
        help="prom = Prometheus text exposition, json = metric snapshot, "
        "report = per-stage service/queue-wait table",
    )

    export = sub.add_parser(
        "export", help="write the run's spans as Chrome trace_event JSON"
    )
    common(export)
    export.add_argument("-o", "--output", required=True, metavar="PATH")

    args = parser.parse_args(argv)
    telemetry = _collect_telemetry(
        args.substrate, args.chunks, args.seed, args.codec
    )

    if args.command == "dump":
        if args.format == "prom":
            print(telemetry.prometheus_text(), end="")
        elif args.format == "json":
            import json

            print(json.dumps(telemetry.json_snapshot(), indent=2))
        else:
            print(telemetry.pipeline_report().render())
        return 0

    n = telemetry.write_chrome_trace(args.output)
    print(f"wrote {n} trace events to {args.output}")
    print(telemetry.pipeline_report().render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(experiment_main())
