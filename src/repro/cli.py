"""Command-line entry points.

``repro-experiment`` regenerates paper exhibits::

    repro-experiment fig12            # one exhibit
    repro-experiment all --quick      # whole evaluation, reduced sweeps

``repro-live`` runs the real-thread pipeline on this host::

    repro-live --chunks 12 --codec zlib --connections 2
    repro-live --chunks 12 --trace-out trace.json   # Chrome/Perfetto trace
    repro-live --chunks 24 --fault drop:at=5 --fault corrupt:at=11
    repro-live --connect host:9000 --fault drop:at=5 --json-out out.json

``repro-plan`` / ``repro-run`` are the paper's Figure-4 workflow: the
pass-based planner writes a substrate-neutral plan file (format v3);
either runtime executes it::

    repro-plan generate --stream det1:updraft1:lynxdtn:aps-lan -o plan.json
    repro-plan explain plan.json        # placements + §3 rationale
    repro-plan diff plan.json --substrates   # sim-vs-live parity check
    repro-plan diff a.json b.json            # plan-vs-plan drift
    repro-plan lower plan.json --target live # affinity + thread counts
    repro-run plan.json                      # v1/v2/v3 all load
    repro-run --plan plan.json --trace-out trace.json
    repro-live --plan plan.json --chunks 12

(The original no-subcommand form ``repro-plan --stream ... -o out``
still works and means ``generate``.)

``repro-telemetry`` exercises the unified observability layer on either
substrate and dumps/exports what it collected::

    repro-telemetry dump --substrate live --format prom
    repro-telemetry export --substrate sim -o trace.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, get_experiment


def experiment_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the paper's figures/tables on the simulator.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="exhibit id (fig5, fig8, ...) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps, single repetitions"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failed: list[str] = []
    results = {}
    for name in names:
        run = get_experiment(name)
        t0 = time.time()
        result = run(quick=args.quick, seed=args.seed)
        results[name] = result
        print(result.render())
        print(f"[{name}: {time.time() - t0:.1f}s]")
        print()
        if not result.all_claims_hold():
            failed.append(name)
    if args.experiment == "all":
        from repro.experiments.summary import render_summary

        print(render_summary(results))
    if failed:
        print(f"FAILED claims in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def live_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-live",
        description="Run the live (real threads + sockets) pipeline: "
        "in-process by default, or as a TCP endpoint with "
        "--listen / --connect (run the receiver first).",
    )
    parser.add_argument("--chunks", type=int, default=12)
    parser.add_argument(
        "--codec",
        default=None,
        metavar="SPEC",
        help="codec spec: a name, preset, or 'name:k=v,...' string "
        "(e.g. zlib:level=1, bz2, adaptive:allowed=zlib|null) "
        "(default: the plan's codec policy, else zlib)",
    )
    parser.add_argument("--compress-threads", type=int, default=2)
    parser.add_argument("--decompress-threads", type=int, default=2)
    parser.add_argument("--connections", type=int, default=2)
    parser.add_argument(
        "--receiver-mode",
        choices=("eventloop", "threads"),
        default=None,
        help="how the receiver multiplexes connections: selector-driven "
        "reactor shards (eventloop) or one thread per accepted socket "
        "(threads) (default: the plan's execution policy, else eventloop)",
    )
    parser.add_argument(
        "--receiver-shards",
        type=int,
        default=None,
        metavar="N",
        help="reactor shards in eventloop mode; 0 = one per core "
        "(default: the plan's execution policy, else 0)",
    )
    parser.add_argument(
        "--mode",
        choices=("thread", "process"),
        default=None,
        help="execution mode for the in-process loopback: 'thread' "
        "(default) keeps one GIL-bound process; 'process' runs one "
        "compressor process per NUMA domain over shared-memory rings "
        "(default: the plan's execution mode, else thread; see "
        "docs/multiprocess.md)",
    )
    parser.add_argument(
        "--domains",
        type=int,
        default=None,
        help="compressor domains with --mode process "
        "(default: one per compress thread)",
    )
    parser.add_argument(
        "--batch-frames",
        type=int,
        default=None,
        help="frames coalesced per queue drain / vectored send "
        "(default: the plan's batch_frames, else 1)",
    )
    parser.add_argument(
        "--batch-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="extra time a sender waits to top a partial batch up "
        "before flushing (default 0)",
    )
    parser.add_argument(
        "--detector",
        default="240x256",
        help="detector shape ROWSxCOLS (small by default: pure-Python codecs)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="run as the receiving endpoint (the upstream gateway)",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="run as the sending endpoint against a --listen receiver",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="collect telemetry and write a Chrome trace_event JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=None,
        metavar="N",
        help="flow tracing: head-sample every Nth chunk per stream at "
        "the feeder and follow it across threads, processes, and the "
        "wire (see docs/tracing.md; the plan's trace node can set this "
        "too)",
    )
    parser.add_argument(
        "--trace-cap",
        type=int,
        default=None,
        metavar="N",
        help="with --trace-sample: stop starting new traces for a "
        "stream after N (bounds trace volume on long runs)",
    )
    parser.add_argument(
        "--flow-out",
        metavar="PATH",
        help="write a Chrome trace with flow-event arrows linking each "
        "sampled chunk's spans across threads (implies tracing "
        "telemetry; best with --trace-sample)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="collect telemetry and write Prometheus text exposition",
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="KIND[:k=v,...]",
        help="inject a sender-side transport fault (chaos testing); "
        "repeatable. Kinds: corrupt, truncate, drop, delay. Keys: "
        "at=<frame>, conn=<connection>, delay=<s>, count=<n>. "
        "Example: drop:at=5",
    )
    parser.add_argument(
        "--obs-port",
        type=int,
        metavar="PORT",
        help="serve /metrics /healthz /report /events on 127.0.0.1:PORT "
        "while the pipeline runs (0 = ephemeral; watch with repro-top)",
    )
    parser.add_argument(
        "--autotune",
        action="store_true",
        help="run the closed-loop controller: watchdog signals become "
        "plan deltas (scale workers, respawn a stage, retune "
        "batch_frames) applied to the running pipeline without restart "
        "(see docs/autotuning.md)",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        help="write every structured event (lifecycle, retries, faults, "
        "watchdog alerts) to PATH as JSON lines",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the stage-attributed sampling profiler and fold "
        "per-stage self-time into the pipeline report",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        help="with --profile: also write collapsed-stack flamegraph text",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the run result as JSON (shared result envelope)",
    )
    parser.add_argument(
        "--plan",
        metavar="PATH",
        help="take thread counts, connections, and CPU affinity from a "
        "plan file (v1/v2/v3) via the planner's live lowering",
    )
    parser.add_argument(
        "--stream",
        metavar="ID",
        help="stream id within --plan (required for multi-stream plans)",
    )
    parser.add_argument(
        "--host-cpus",
        type=int,
        default=None,
        help="host CPU count for the --plan affinity folding "
        "(default: this host's)",
    )
    args = parser.parse_args(argv)
    if args.listen and args.connect:
        parser.error("--listen and --connect are mutually exclusive")
    if args.stream and not args.plan:
        parser.error("--stream only makes sense with --plan")
    if args.mode == "process" and (args.listen or args.connect):
        parser.error("--mode process runs the in-process loopback; "
                     "it cannot combine with --listen / --connect")
    if args.mode == "process" and args.fault:
        parser.error("--fault drives the resilient TCP endpoints; "
                     "process-mode fault testing lives in the chaos suite")
    if args.domains is not None and args.domains < 1:
        parser.error("--domains must be >= 1")
    if args.autotune and (args.listen or args.connect):
        parser.error("--autotune drives the in-process pipelines; the "
                     "remote endpoints have no reconfiguration surface yet")
    if args.autotune and args.fault:
        parser.error("--fault runs over the remote endpoints, which "
                     "--autotune does not drive yet")

    lowered = None
    plan_obj = None
    if args.plan:
        from repro.plan.passes import build_live
        from repro.plan.serialize import load_plan

        plan_obj = load_plan(args.plan)
        lowered = build_live(
            plan_obj,
            args.stream,
            codec=args.codec,
            host_cpus=args.host_cpus,
        )
        args.compress_threads = lowered.config.compress_threads
        args.decompress_threads = lowered.config.decompress_threads
        args.connections = lowered.config.connections
        print(
            f"plan {args.plan}: stream {lowered.stream_id!r} -> "
            f"compress={args.compress_threads} "
            f"decompress={args.decompress_threads} "
            f"connections={args.connections} "
            f"codec={lowered.config.codec}"
        )
    # --codec overrides the plan's codec policy node; no flag and no
    # plan means today's zlib default.
    codec = args.codec
    if codec is None:
        codec = lowered.config.codec if lowered is not None else "zlib"
    if args.listen and args.fault:
        parser.error("--fault is sender-side; use it with --connect or "
                     "the in-process loopback, not --listen")

    # --batch-frames overrides the plan's knob; otherwise the plan (or
    # the default of 1, today's frame-at-a-time behaviour) decides.
    batch_frames = args.batch_frames
    if batch_frames is None:
        batch_frames = (
            lowered.config.batch_frames if lowered is not None else 1
        )
    if batch_frames < 1:
        parser.error("--batch-frames must be >= 1")
    if args.batch_linger < 0:
        parser.error("--batch-linger must be >= 0")

    # --receiver-mode/--receiver-shards override the plan's execution
    # policy; no flag and no plan means the event-loop default.
    receiver_mode = args.receiver_mode
    if receiver_mode is None:
        receiver_mode = (
            lowered.config.receiver_mode if lowered is not None
            else "eventloop"
        )
    receiver_shards = args.receiver_shards
    if receiver_shards is None:
        receiver_shards = (
            lowered.config.receiver_shards if lowered is not None else 0
        )
    if receiver_shards < 0:
        parser.error("--receiver-shards must be >= 0")

    # --trace-sample/--trace-cap override the plan's trace policy node;
    # no flag and no plan node means tracing off.
    trace_sample = args.trace_sample
    if trace_sample is None:
        trace_sample = (
            lowered.config.trace_sample if lowered is not None else 0
        )
    if trace_sample < 0:
        parser.error("--trace-sample must be >= 0")
    trace_cap = args.trace_cap
    if trace_cap is None:
        trace_cap = (
            lowered.config.trace_per_stream_cap if lowered is not None else 0
        )
    if trace_cap < 0:
        parser.error("--trace-cap must be >= 0")
    if trace_cap and not trace_sample:
        parser.error("--trace-cap needs --trace-sample")

    from repro.faults import FaultInjector, parse_fault
    from repro.util.errors import ValidationError

    try:
        fault_specs = [parse_fault(text) for text in args.fault]
    except ValidationError as exc:
        parser.error(str(exc))

    if args.profile_out and not args.profile:
        parser.error("--profile-out needs --profile")

    # The plan's ControlNode can turn the loop on without the flag.
    autotune = args.autotune or (
        plan_obj is not None and plan_obj.control.enabled
    )
    wants_obs = (
        args.obs_port is not None
        or args.events_out
        or args.profile
        or autotune
    )
    telemetry = None
    if (
        args.trace_out
        or args.flow_out
        or args.metrics_out
        or fault_specs
        or wants_obs
        or trace_sample
    ):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    injector = (
        FaultInjector(fault_specs, telemetry=telemetry)
        if fault_specs
        else None
    )

    # The observability plane: event stream, watchdog, profiler, HTTP
    # endpoints — all optional, all reading the shared Telemetry.
    obs: dict = {}
    if telemetry is not None and wants_obs:
        from repro.obs import (
            EventBus,
            ObservabilityServer,
            SamplingProfiler,
            Watchdog,
        )
        from repro.util.log import attach_event_bus

        if args.obs_port is not None or args.events_out or autotune:
            bus = EventBus(source="live", jsonl_path=args.events_out)
            telemetry.attach_events(bus)
            obs["bus"] = bus
            obs["log_handler"] = attach_event_bus(bus)
            obs["watchdog"] = Watchdog(telemetry).start()
        if autotune:
            from repro.control import Controller
            from repro.plan.ir import ControlNode

            node = (
                plan_obj.control
                if plan_obj is not None and not plan_obj.control.is_default
                else ControlNode(enabled=True)
            )
            # The pipeline starts/stops the controller around its run.
            obs["controller"] = Controller(
                telemetry, node, plan=plan_obj
            )
            print("autotune: controller armed "
                  f"(interval={node.interval:g}s cooldown={node.cooldown:g}s "
                  f"max_workers={node.max_workers})")
        if args.profile:
            obs["profiler"] = SamplingProfiler().start()
        if args.obs_port is not None:
            server = ObservabilityServer(
                telemetry,
                port=args.obs_port,
                events=obs.get("bus"),
                profiler=obs.get("profiler"),
            ).start()
            obs["server"] = server
            print(f"observability endpoints at {server.url} "
                  "(/metrics /healthz /report /events /trace)")

    def write_json(report) -> None:
        if args.json_out:
            from repro.core.results import write_result_json

            write_result_json(report, args.json_out)
            print(f"wrote result to {args.json_out}")

    def finish_obs() -> None:
        watchdog = obs.get("watchdog")
        if watchdog is not None:
            watchdog.stop()
        profiler = obs.get("profiler")
        if profiler is not None:
            profiler.stop()
            print(profiler.render())
            if args.profile_out:
                with open(args.profile_out, "w", encoding="utf-8") as fh:
                    fh.write(profiler.collapsed())
                    fh.write("\n")
                print(f"wrote collapsed stacks to {args.profile_out}")
        server = obs.get("server")
        if server is not None:
            server.mark_finished()
            server.stop()
        handler = obs.get("log_handler")
        if handler is not None:
            from repro.util.log import detach_event_bus

            detach_event_bus(handler)
        bus = obs.get("bus")
        if bus is not None:
            bus.close()
            if args.events_out:
                print(f"wrote {bus.emitted} events to {args.events_out}")

    def finish_telemetry() -> None:
        finish_obs()
        if telemetry is None:
            return
        if args.trace_out:
            n = telemetry.write_chrome_trace(args.trace_out)
            print(f"wrote {n} trace events to {args.trace_out}")
        if args.flow_out:
            from repro.trace import write_flow_trace

            n = write_flow_trace(telemetry.spans.snapshot(), args.flow_out)
            print(f"wrote {n} flow-trace events to {args.flow_out}")
        if trace_sample:
            from repro.trace import assemble

            traces = assemble(telemetry.spans.snapshot())
            n = sum(1 for t in traces if "wire" in t.stage_order())
            print(f"flow tracing: {n} traced chunk journey(s) assembled "
                  f"(1-in-{trace_sample} head sampling)")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(telemetry.prometheus_text())
            print(f"wrote metrics to {args.metrics_out}")
        report = telemetry.pipeline_report()
        profiler = obs.get("profiler")
        if profiler is not None:
            report.profile = profiler.stage_self_seconds()
        if report.stages:
            print(report.render())

    from repro.data import SpheresDataset, SpheresPhantom
    from repro.data.chunking import DatasetChunkSource

    rows, cols = (int(x) for x in args.detector.lower().split("x"))

    def make_source():
        dataset = SpheresDataset(
            SpheresPhantom(
                cylinder_radius=300,
                cylinder_height=240,
                volume_fraction=0.2,
                seed=args.seed,
            ),
            detector_shape=(rows, cols),
            num_projections=max(args.chunks, 1),
            seed=args.seed,
        )
        return DatasetChunkSource("live", dataset, limit=args.chunks).chunks()

    if args.listen:
        from repro.live.remote import ReceiverServer

        host, port = args.listen.rsplit(":", 1)
        server = ReceiverServer(
            host or "0.0.0.0",
            int(port),
            codec=codec,
            connections=args.connections,
            decompress_threads=args.decompress_threads,
            batch_frames=batch_frames,
            mode=receiver_mode,
            shards=receiver_shards,
            telemetry=telemetry,
        )
        print(f"listening on {server.address[0]}:{server.address[1]} "
              f"for {args.connections} connection(s) "
              f"({receiver_mode} receiver)...")
        with server:
            report = server.serve()
        print(report.summary())
        finish_telemetry()
        write_json(report)
        return 0 if report.ok else 1

    if args.connect:
        from repro.live.remote import SenderClient

        host, port = args.connect.rsplit(":", 1)
        client = SenderClient(
            host,
            int(port),
            codec=codec,
            connections=args.connections,
            compress_threads=args.compress_threads,
            batch_frames=batch_frames,
            batch_linger=args.batch_linger,
            telemetry=telemetry,
            injector=injector,
            trace_sample=trace_sample,
            trace_per_stream_cap=trace_cap,
        )
        report = client.run(make_source())
        print(report.summary())
        finish_telemetry()
        write_json(report)
        return 0 if report.ok else 1

    if injector is not None:
        # Faults need the resilient TCP endpoints; run both over
        # loopback (the in-process socketpair pipeline has no recovery).
        import threading

        from repro.live.remote import ReceiverServer, SenderClient

        server = ReceiverServer(
            port=0,
            codec=codec,
            connections=args.connections,
            decompress_threads=args.decompress_threads,
            batch_frames=batch_frames,
            mode=receiver_mode,
            shards=receiver_shards,
            telemetry=telemetry,
        )
        host, port = server.address
        box: dict = {}

        def serve() -> None:
            box["report"] = server.serve()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        client = SenderClient(
            host,
            port,
            codec=codec,
            connections=args.connections,
            compress_threads=args.compress_threads,
            batch_frames=batch_frames,
            batch_linger=args.batch_linger,
            telemetry=telemetry,
            injector=injector,
            trace_sample=trace_sample,
            trace_per_stream_cap=trace_cap,
        )
        sender_report = client.run(make_source())
        thread.join(client.timeouts.join)
        report = box.get("report")
        print(sender_report.summary())
        if report is not None:
            print(report.summary())
        if telemetry is not None:
            print(
                "resilience: retries="
                f"{telemetry.counter_value('transport_retries_total'):.0f} "
                "redeliveries="
                f"{telemetry.counter_value('transport_redeliveries_total'):.0f} "
                "rejected="
                f"{telemetry.counter_value('transport_frames_rejected_total'):.0f} "
                "deduped="
                f"{telemetry.counter_value('transport_frames_deduped_total'):.0f}"
            )
        finish_telemetry()
        write_json(sender_report)
        ok = sender_report.ok and report is not None and report.ok
        return 0 if ok else 1

    import dataclasses

    from repro.live import LiveConfig, LivePipeline

    config = (
        dataclasses.replace(
            lowered.config,
            batch_frames=batch_frames,
            batch_linger=args.batch_linger,
            trace_sample=trace_sample,
            trace_per_stream_cap=trace_cap,
        )
        if lowered is not None
        else LiveConfig(
            codec=codec,
            compress_threads=args.compress_threads,
            decompress_threads=args.decompress_threads,
            connections=args.connections,
            batch_frames=batch_frames,
            batch_linger=args.batch_linger,
            trace_sample=trace_sample,
            trace_per_stream_cap=trace_cap,
        )
    )
    # --mode overrides the plan's execution node; no flag and no plan
    # node means today's thread pipeline.
    mode = args.mode or config.execution_mode
    if mode == "process":
        from repro.mp import ProcessPipeline

        config = dataclasses.replace(
            config,
            execution_mode="process",
            process_domains=(
                args.domains
                if args.domains is not None
                else config.process_domains
            ),
        )
        domains = config.process_domains or config.compress_threads
        print(f"process mode: {domains} compressor domain(s) over "
              "shared-memory rings")
        pipeline: "LivePipeline | ProcessPipeline" = ProcessPipeline(
            config, telemetry=telemetry, controller=obs.get("controller")
        )
    else:
        pipeline = LivePipeline(
            config, telemetry=telemetry, controller=obs.get("controller")
        )
    report = pipeline.run(make_source())
    print(report.summary())
    controller = obs.get("controller")
    if controller is not None:
        if controller.decisions:
            print("autotune decisions: " + "; ".join(controller.decisions))
        else:
            print("autotune: no re-plan needed")
    finish_telemetry()
    write_json(report)
    return 0 if report.ok else 1


def _codec_node_from_args(args, parser):
    """Build the plan's codec policy node from --codec/--codec-adaptive."""
    from repro.plan.ir import CodecNode
    from repro.util.errors import ValidationError

    if args.codec and args.codec_adaptive:
        parser.error("--codec and --codec-adaptive are mutually exclusive")
    if args.probe_interval and not args.codec_adaptive:
        parser.error("--probe-interval needs --codec-adaptive")
    try:
        if args.codec:
            node = CodecNode.from_spec(args.codec)
        elif args.codec_adaptive:
            node = CodecNode(
                name="adaptive",
                allowed=tuple(
                    x for x in args.codec_adaptive.split(",") if x
                ),
                probe_interval=args.probe_interval,
            )
        else:
            return None
        node.spec().create()  # fail fast, before the plan is written
    except ValidationError as exc:
        parser.error(str(exc))
    return node


def _plan_generate(args, parser) -> int:
    from repro.core.generator import ConfigGenerator, StreamRequest, Workload
    from repro.core.serialize import save_scenario
    from repro.experiments.base import paper_testbed
    from repro.plan.lower import lower_sim
    from repro.plan.passes import run_passes
    from repro.plan.serialize import save_plan

    requests = []
    for spec in args.stream:
        parts = spec.split(":")
        if len(parts) != 4:
            parser.error(f"bad --stream {spec!r}: want ID:SENDER:RECEIVER:PATH")
        sid, sender, receiver, path = parts
        requests.append(
            StreamRequest(sid, sender, receiver, path, num_chunks=args.chunks)
        )
    generator = ConfigGenerator(paper_testbed())
    workload = Workload(requests, name="cli", seed=args.seed)
    plan = (
        generator.os_baseline_plan(workload)
        if args.os_baseline
        else generator.generate_plan(workload)
    )
    if args.batch_frames != 1:
        from dataclasses import replace as _replace

        plan = _replace(
            plan,
            streams=tuple(
                _replace(s, batch_frames=args.batch_frames)
                for s in plan.streams
            ),
        )
    codec_node = _codec_node_from_args(args, parser)
    if codec_node is not None:
        from dataclasses import replace as _replace

        plan = _replace(plan, codec=codec_node)
    result = run_passes(plan)
    for warning in result.diagnostics.warnings:
        print(f"warning: {warning.message}", file=sys.stderr)
    if args.scenario:
        save_scenario(lower_sim(result.plan), args.output)
    else:
        save_plan(result.plan, args.output)
    print(f"wrote {plan.name!r} ({len(plan.streams)} streams) "
          f"to {args.output}")
    return 0


def _plan_explain(args) -> int:
    from repro.plan.explain import explain_plan
    from repro.plan.passes import run_passes
    from repro.plan.serialize import load_plan

    plan = load_plan(args.plan)
    result = run_passes(plan, strict=False)
    print(explain_plan(result.plan))
    if result.diagnostics:
        print()
        print(result.diagnostics.render())
    return 0 if result.ok else 1


def _plan_diff(args, parser) -> int:
    from repro.plan.diff import diff_plans, substrate_drift
    from repro.plan.serialize import load_plan

    plan = load_plan(args.plan)
    if args.substrates:
        if args.other is not None:
            parser.error("--substrates compares one plan's two lowerings; "
                         "drop the second plan argument")
        if args.format == "json":
            parser.error("--format json is the structured plan-vs-plan "
                         "delta; --substrates reports placement drift")
        drift = substrate_drift(plan, host_cpus=args.host_cpus)
        if drift:
            print("\n".join(drift))
            return 1
        print(f"plan {plan.name!r}: sim and live lowerings agree "
              "(0 placement drift)")
        return 0
    if args.other is None:
        parser.error("diff needs a second plan (or --substrates)")
    other = load_plan(args.other)
    if args.format == "json":
        # The same delta schema the autotuning controller emits on
        # replan_* events (repro.plan.delta) — machine-checkable drift.
        import json

        from repro.plan.delta import delta_to_dict, plan_delta

        delta = plan_delta(
            plan, other, reason=f"diff {args.plan} -> {args.other}"
        )
        print(json.dumps(delta_to_dict(delta), indent=2, sort_keys=True))
        return 1 if delta else 0
    drift = diff_plans(plan, other)
    if drift:
        print("\n".join(drift))
        return 1
    print("plans are identical")
    return 0


def _plan_lower(args) -> int:
    import json

    from repro.plan.passes import build_live, build_scenario
    from repro.plan.serialize import load_plan

    plan = load_plan(args.plan)
    if args.target == "sim":
        from repro.core.serialize import save_scenario, scenario_to_json

        scenario = build_scenario(plan)
        if args.output:
            save_scenario(scenario, args.output)
            print(f"wrote scenario {scenario.name!r} to {args.output}")
        else:
            print(scenario_to_json(scenario))
        return 0
    lowered = build_live(plan, args.stream, host_cpus=args.host_cpus)
    doc = {
        "stream_id": lowered.stream_id,
        "codec": lowered.config.codec,
        "compress_threads": lowered.config.compress_threads,
        "decompress_threads": lowered.config.decompress_threads,
        "connections": lowered.config.connections,
        "queue_capacity": lowered.config.queue_capacity,
        "batch_frames": lowered.config.batch_frames,
        "affinity": lowered.affinity,
        "stage_counts": lowered.stage_counts,
    }
    text = json.dumps(doc, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.write("\n")
        print(f"wrote live lowering of {lowered.stream_id!r} to {args.output}")
    else:
        print(text)
    return 0


def plan_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description="The pass-based planner (Figure 4): generate a "
        "substrate-neutral pipeline plan, explain its placements, diff "
        "two plans or one plan's two lowerings, or lower it by hand.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate",
        help="plan a workload and write a plan file (format v3)",
    )
    generate.add_argument(
        "--stream",
        action="append",
        required=True,
        metavar="ID:SENDER:RECEIVER:PATH",
        help="stream spec; repeatable. Machines: lynxdtn, updraft1/2, "
        "polaris1/2. Paths: aps-lan, alcf-aps.",
    )
    generate.add_argument("--chunks", type=int, default=250)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument(
        "--batch-frames",
        type=int,
        default=1,
        help="frames coalesced per queue handoff / vectored send — a "
        "plan policy knob lowered to both substrates (default 1)",
    )
    generate.add_argument(
        "--codec",
        default=None,
        metavar="SPEC",
        help="static codec policy for the plan: a name, preset, or "
        "'name:k=v,...' spec string (e.g. zlib:level=1, bz2); "
        "omitted = the default (zlib), which keeps plan files "
        "byte-identical to pre-codec-policy writers",
    )
    generate.add_argument(
        "--codec-adaptive",
        default=None,
        metavar="POOL",
        help="adaptive codec policy: comma-separated candidate codecs "
        "the per-chunk selector may choose among (e.g. zlib,null)",
    )
    generate.add_argument(
        "--probe-interval",
        type=int,
        default=0,
        metavar="N",
        help="with --codec-adaptive: re-probe every N chunks per "
        "entropy band (0 = the codec's default)",
    )
    generate.add_argument(
        "--os-baseline",
        action="store_true",
        help="emit the OS-placement baseline instead of the NUMA-aware plan",
    )
    generate.add_argument(
        "--scenario",
        action="store_true",
        help="write the lowered v2 scenario instead of the v3 plan",
    )
    generate.add_argument("-o", "--output", required=True)

    explain = sub.add_parser(
        "explain",
        help="print a plan with the §3 rationale behind every placement",
    )
    explain.add_argument("plan", help="plan or scenario file (v1/v2/v3)")

    diff = sub.add_parser(
        "diff",
        help="report drift between two plans, or between one plan's "
        "sim and live lowerings (--substrates)",
    )
    diff.add_argument("plan", help="plan or scenario file (v1/v2/v3)")
    diff.add_argument("other", nargs="?", help="second plan to compare")
    diff.add_argument(
        "--substrates",
        action="store_true",
        help="check sim-vs-live lowering parity instead of plan-vs-plan",
    )
    diff.add_argument(
        "--host-cpus",
        type=int,
        default=64,
        help="host CPU count for the live affinity folding (default 64)",
    )
    diff.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="json = the structured PlanDelta document (ops + notes) "
        "the autotuning controller uses; exit 1 on a non-empty delta",
    )

    lower = sub.add_parser(
        "lower", help="lower a plan to one substrate's executable form"
    )
    lower.add_argument("plan", help="plan or scenario file (v1/v2/v3)")
    lower.add_argument(
        "--target", choices=["sim", "live"], required=True
    )
    lower.add_argument(
        "--stream",
        help="stream id for the live lowering (required for multi-stream "
        "plans)",
    )
    lower.add_argument(
        "--host-cpus",
        type=int,
        default=None,
        help="host CPU count for the live affinity folding "
        "(default: this host's)",
    )
    lower.add_argument("-o", "--output")

    # Compatibility: the original repro-plan took --stream/-o directly
    # (no subcommand) and meant "generate".
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-"):
        argv = ["generate", *argv]

    args = parser.parse_args(argv)
    if args.command == "generate":
        return _plan_generate(args, parser)
    if args.command == "explain":
        return _plan_explain(args)
    if args.command == "diff":
        return _plan_diff(args, parser)
    return _plan_lower(args)


def run_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description="Execute a scenario configuration file on the simulator.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help="path to a repro-plan JSON file (scenario v1/v2 or plan v3)",
    )
    parser.add_argument(
        "--plan",
        metavar="PATH",
        help="load the file as a pipeline plan and run it through the "
        "planner's passes and sim lowering (accepts v1/v2/v3)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="collect telemetry on the virtual clock and write a Chrome "
        "trace_event JSON of every simulated stage span",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="collect telemetry and write Prometheus text exposition",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the run result as JSON (shared result envelope)",
    )
    parser.add_argument(
        "--obs-port",
        type=int,
        metavar="PORT",
        help="serve /metrics /healthz /report /events on 127.0.0.1:PORT "
        "while the scenario runs (0 = ephemeral)",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        help="write structured events (lifecycle, faults, virtual-clock "
        "watchdog alerts) to PATH as JSON lines",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="sample the simulator process itself (one thread: profiles "
        "the engine, not the modeled stages)",
    )
    parser.add_argument(
        "--autotune",
        action="store_true",
        help="run the closed-loop controller on the virtual clock: "
        "watchdog signals become plan deltas applied to the simulated "
        "pipeline mid-run — deterministic under the scenario seed "
        "(see docs/autotuning.md)",
    )
    args = parser.parse_args(argv)

    from repro.core.runtime import SimRuntime, run_scenario
    from repro.core.serialize import load_scenario
    from repro.util.tables import Table

    if bool(args.scenario) == bool(args.plan):
        parser.error("pass a scenario file or --plan PATH (not both)")
    plan_obj = None
    if args.plan:
        from repro.plan.passes import build_scenario
        from repro.plan.serialize import load_plan

        plan_obj = load_plan(args.plan)
        scenario = build_scenario(plan_obj)
    else:
        scenario = load_scenario(args.scenario)
    autotune = args.autotune or (
        plan_obj is not None and plan_obj.control.enabled
    )
    wants_obs = args.obs_port is not None or args.events_out or args.profile
    controller = None
    if args.trace_out or args.metrics_out or wants_obs or autotune:
        from repro.telemetry import Telemetry

        tel = Telemetry()
        obs: dict = {}
        watchdog_cfg = None
        if args.obs_port is not None or args.events_out or autotune:
            from repro.obs import EventBus, WatchdogConfig
            from repro.util.log import attach_event_bus

            bus = EventBus(source="sim", jsonl_path=args.events_out)
            tel.attach_events(bus)
            obs["bus"] = bus
            obs["log_handler"] = attach_event_bus(bus)
            # Coarser than the live defaults: these are *virtual*
            # seconds, and every bottleneck check walks the span store.
            watchdog_cfg = WatchdogConfig(
                interval=1.0, stall_after=5.0, backpressure_after=2.0,
                bottleneck_every=10,
            )
        if autotune:
            from repro.control import Controller
            from repro.plan.ir import ControlNode

            node = (
                plan_obj.control
                if plan_obj is not None and not plan_obj.control.is_default
                else ControlNode(enabled=True, interval=1.0, cooldown=2.0)
            )
            controller = Controller(tel, node, plan=plan_obj)
            print("autotune: controller armed on the virtual clock "
                  f"(interval={node.interval:g}s cooldown={node.cooldown:g}s)")
        runtime = SimRuntime(
            scenario, telemetry=tel, watchdog=watchdog_cfg,
            controller=controller,
        )
        if args.obs_port is not None:
            from repro.obs import ObservabilityServer

            server = ObservabilityServer(
                tel, port=args.obs_port, events=obs.get("bus")
            ).start()
            obs["server"] = server
            print(f"observability endpoints at {server.url} "
                  "(/metrics /healthz /report /events /trace)")
        if args.profile:
            from repro.obs import SamplingProfiler

            obs["profiler"] = SamplingProfiler().start()
        result = runtime.run()
        profiler = obs.get("profiler")
        if profiler is not None:
            profiler.stop()
            print(profiler.render())
        server = obs.get("server")
        if server is not None:
            server.mark_finished()
            server.stop()
        handler = obs.get("log_handler")
        if handler is not None:
            from repro.util.log import detach_event_bus

            detach_event_bus(handler)
        bus = obs.get("bus")
        if bus is not None:
            bus.close()
            if args.events_out:
                print(f"wrote {bus.emitted} events to {args.events_out}")
        if args.trace_out:
            n = tel.write_chrome_trace(args.trace_out)
            print(f"wrote {n} trace events to {args.trace_out}")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(tel.prometheus_text())
            print(f"wrote metrics to {args.metrics_out}")
        if controller is not None:
            if controller.decisions:
                print("autotune decisions: "
                      + "; ".join(controller.decisions))
            else:
                print("autotune: no re-plan needed")
        for sid in sorted(result.streams):
            print(tel.pipeline_report(sid).render())
    else:
        result = run_scenario(scenario)
    table = Table(
        headers=["stream", "chunks", "network Gbps", "end-to-end Gbps"],
        title=f"scenario {result.name!r} ({result.sim_time:.2f}s simulated)",
    )
    for sid in sorted(result.streams):
        s = result.streams[sid]
        table.add(sid, s.chunks_delivered, round(s.wire_gbps, 2),
                  round(s.delivered_gbps, 2))
    table.add("TOTAL", "-", round(result.total_wire_gbps, 2),
              round(result.total_delivered_gbps, 2))
    print(table.render())
    if args.json_out:
        from repro.core.results import write_result_json

        write_result_json(result, args.json_out)
        print(f"wrote result to {args.json_out}")
    return 0


def _collect_telemetry(substrate: str, chunks: int, seed: int, codec: str):
    """Run a small canned pipeline on ``substrate``, return its Telemetry."""
    from repro.telemetry import Telemetry

    if substrate == "live":
        from repro.data import SpheresDataset, SpheresPhantom
        from repro.data.chunking import DatasetChunkSource
        from repro.live import LiveConfig, LivePipeline

        dataset = SpheresDataset(
            SpheresPhantom(
                cylinder_radius=300,
                cylinder_height=240,
                volume_fraction=0.2,
                seed=seed,
            ),
            detector_shape=(64, 64),
            num_projections=max(chunks, 1),
            seed=seed,
        )
        source = DatasetChunkSource("live", dataset, limit=chunks).chunks()
        telemetry = Telemetry()
        pipeline = LivePipeline(LiveConfig(codec=codec), telemetry=telemetry)
        report = pipeline.run(source)
        if not report.ok:
            raise SystemExit(f"live run failed: {'; '.join(report.errors)}")
        return telemetry

    from repro.core.generator import ConfigGenerator, StreamRequest, Workload
    from repro.core.runtime import SimRuntime
    from repro.experiments.base import paper_testbed

    workload = Workload(
        [
            StreamRequest(
                "det1", "updraft1", "lynxdtn", "aps-lan", num_chunks=chunks
            )
        ],
        name="telemetry-cli",
        seed=seed,
    )
    scenario = ConfigGenerator(paper_testbed()).generate(workload)
    runtime = SimRuntime(scenario, telemetry=True)
    runtime.run()
    return runtime.telemetry


def telemetry_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Exercise the unified telemetry layer: run a small "
        "pipeline on either substrate and dump metrics or export a trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--substrate",
            choices=["live", "sim"],
            default="live",
            help="real threads+sockets, or the virtual-clock simulator",
        )
        p.add_argument("--chunks", type=int, default=8)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--codec", default="zlib", help="live substrate codec")

    dump = sub.add_parser(
        "dump", help="print collected metrics and the pipeline report"
    )
    common(dump)
    dump.add_argument(
        "--format",
        choices=["prom", "json", "report"],
        default="report",
        help="prom = Prometheus text exposition, json = metric snapshot, "
        "report = per-stage service/queue-wait table",
    )

    export = sub.add_parser(
        "export", help="write the run's spans as Chrome trace_event JSON"
    )
    common(export)
    export.add_argument("-o", "--output", required=True, metavar="PATH")

    args = parser.parse_args(argv)
    telemetry = _collect_telemetry(
        args.substrate, args.chunks, args.seed, args.codec
    )

    if args.command == "dump":
        if args.format == "prom":
            print(telemetry.prometheus_text(), end="")
        elif args.format == "json":
            import json

            print(json.dumps(telemetry.json_snapshot(), indent=2))
        else:
            print(telemetry.pipeline_report().render())
        return 0

    n = telemetry.write_chrome_trace(args.output)
    print(f"wrote {n} trace events to {args.output}")
    print(telemetry.pipeline_report().render())
    return 0


def bench_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the pinned hot-path benchmarks (queue handoff, "
        "framing, loopback pipeline, sim scenario) and write "
        "BENCH_pipeline.json with throughput and latency percentiles.",
    )
    parser.add_argument(
        "-o", "--out",
        default="BENCH_pipeline.json",
        metavar="PATH",
        help="where to write the JSON report (default: %(default)s)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced iteration counts (CI trend job / smoke runs)",
    )
    parser.add_argument(
        "--no-pin",
        action="store_true",
        help="skip best-effort CPU pinning of the benchmark thread",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="report the loopback speedup but never fail on it",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        help="stream suite lifecycle events to this JSONL file",
    )
    args = parser.parse_args(argv)

    from repro.bench import run_suite

    report = run_suite(
        quick=args.quick, pinned=not args.no_pin, gate=not args.no_gate,
        events_out=args.events_out,
    )
    report.save(args.out)
    print(report.render())
    print(f"wrote {args.out}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(experiment_main())
