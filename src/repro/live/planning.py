"""Bridge from simulated plans to live-thread affinity.

Closes the paper's loop on a real host: the configuration generator
plans placements against a *modelled* machine; this module translates
that plan into best-effort CPU pins for the live pipeline's worker
threads.  On hosts with fewer CPUs than the modelled machine, modelled
cores map onto host CPUs by global index modulo the host's CPU count —
preserving the *grouping* (which stages share cores, which are apart)
even when the absolute layout cannot exist.

Placement remains advisory on the live path (DESIGN.md §2: live mode
proves logic, not performance), but running `LivePipeline` with a
planned affinity exercises the same artifacts end to end.
"""

from __future__ import annotations

import os

from repro.core.config import StageKind, StreamConfig
from repro.hw.topology import MachineSpec
from repro.util.errors import ConfigurationError

#: live-pipeline stage names -> (scenario stage, which machine side).
_LIVE_STAGES: dict[str, StageKind] = {
    "feed": StageKind.INGEST,
    "compress": StageKind.COMPRESS,
    "send": StageKind.SEND,
    "recv": StageKind.RECV,
    "decompress": StageKind.DECOMPRESS,
}


def affinity_from_stream(
    stream: StreamConfig,
    sender: MachineSpec,
    receiver: MachineSpec,
    *,
    host_cpus: int | None = None,
) -> dict[str, list[int]]:
    """Map one stream's placements to `LiveConfig.affinity` hints.

    Only pinned/socket/split placements translate (OS-managed stages are
    left unpinned, which is exactly what they mean).  Returns a dict
    suitable for :class:`repro.live.runtime.LiveConfig`.
    """
    ncpu = host_cpus if host_cpus is not None else (os.cpu_count() or 1)
    if ncpu < 1:
        raise ConfigurationError("host reports no CPUs")
    out: dict[str, list[int]] = {}
    for live_name, kind in _LIVE_STAGES.items():
        stage = stream.stages().get(kind)
        if stage is None or stage.placement.kind == "os":
            continue
        machine = sender if kind.sender_side else receiver
        p = stage.placement
        if p.kind == "cores":
            cores = list(p.cores)
        else:
            cores = [
                c for s in p.sockets for c in machine.cores_of(s)
            ]
        cps = machine.sockets[0].cores
        cpus = sorted({c.global_index(cps) % ncpu for c in cores})
        if cpus:
            out[live_name] = cpus
    return out
