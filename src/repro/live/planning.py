"""Bridge from simulated plans to live-thread affinity (deprecated).

The modulo host-mapping this module used to implement now lives in the
plan layer's live lowering (:func:`repro.plan.lower.stream_affinity`),
where it is applied to :class:`~repro.plan.ir.StreamNode` placements —
the substrate-neutral form both runtimes lower from.

:func:`affinity_from_stream` survives as a compatibility shim: it lifts
the given :class:`~repro.core.config.StreamConfig` into the IR and
delegates, producing byte-identical affinity maps.  New code should
lower a plan instead (:func:`repro.plan.lower.lower_live` or
:func:`repro.plan.passes.build_live`).
"""

from __future__ import annotations

import warnings

from repro.core.config import StreamConfig
from repro.hw.topology import MachineSpec


def affinity_from_stream(
    stream: StreamConfig,
    sender: MachineSpec,
    receiver: MachineSpec,
    *,
    host_cpus: int | None = None,
) -> dict[str, list[int]]:
    """Map one stream's placements to `LiveConfig.affinity` hints.

    .. deprecated::
        Use :func:`repro.plan.lower.lower_live` (or
        :func:`repro.plan.lower.stream_affinity` for one stream); this
        shim lifts the config into the plan IR and delegates.
    """
    warnings.warn(
        "affinity_from_stream is deprecated; lower a PipelinePlan via "
        "repro.plan.lower.lower_live / stream_affinity instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.plan.ingest import stream_from_config
    from repro.plan.lower import stream_affinity

    return stream_affinity(
        stream_from_config(stream), sender, receiver, host_cpus=host_cpus
    )
