"""Bounded, closable queues for the live pipeline threads.

The paper's stages hand chunks through thread-safe queues; this module
provides the thread safety plus the end-of-stream protocol every stage
needs: a producer-side ``close()`` that wakes all consumers immediately
(no polling), with items drained first.

The queue is built on a ``deque`` guarded by one lock and two condition
variables rather than ``queue.Queue`` so that:

* the closed-check and the enqueue stay atomic, yet a producer waiting
  out backpressure parks on ``_not_full`` with the lock *released* —
  other producers and all consumers keep moving;
* the final ``close()`` can ``notify_all`` both conditions, so blocked
  consumers observe :class:`Closed` at once instead of on a poll tick;
* :meth:`put_many`/:meth:`get_many` move a whole batch under a single
  lock round-trip, which is the queue-side half of the pipeline's frame
  batching (the transport-side half lives in
  :meth:`repro.live.transport.FramedSender.send_many`).

Timeouts raise :class:`repro.util.errors.QueueTimeout` (never stdlib
``queue.Empty``/``queue.Full``), and ``timeout=0`` means "try once,
without blocking".

With a :class:`~repro.telemetry.Telemetry` attached (and a ``name``),
every put/get publishes the instantaneous depth to the
``pipeline_queue_depth{queue=...}`` gauge, whose high-water mark is the
practical signal for sizing the paper's bounded queues.  Batch
operations publish once per batch (and feed the
``pipeline_batch_size{site=...}`` histogram), so the gauge cost is
amortized along with the lock.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Iterable
from time import monotonic
from typing import Any

from repro.util.errors import QueueTimeout, ValidationError


class Closed(Exception):
    """Raised by :meth:`ClosableQueue.get` after drain + close."""


class ClosableQueue:
    """Bounded FIFO with multi-producer close semantics.

    ``close()`` may be called several times (one per producer); the
    queue only closes when ``producers`` many closes arrived.  Consumers
    keep draining buffered items and then see :class:`Closed` — the
    final close wakes every blocked consumer immediately.
    """

    def __init__(
        self,
        capacity: int = 8,
        producers: int = 1,
        *,
        name: str = "queue",
        telemetry=None,
    ) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        if producers < 1:
            raise ValidationError("producers must be >= 1")
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._open_producers = producers
        self._sealed = False
        #: Deepest the queue has ever been (also on the telemetry gauge
        #: as ``high_water`` when one is attached).
        self.max_depth = 0
        self._telemetry = telemetry
        self._gauge = (
            telemetry.queue_gauge(name) if telemetry is not None else None
        )

    # -- internals (call with self._lock held) --------------------------

    def _observe_depth_locked(self) -> int:
        depth = len(self._items)
        if depth > self.max_depth:
            self.max_depth = depth
        if self._gauge is not None:
            self._gauge.set(depth)
        return depth

    def _record_batch(self, site: str, size: int) -> None:
        if self._telemetry is not None:
            record = getattr(self._telemetry, "record_batch", None)
            if record is not None:
                record(site, size)

    @staticmethod
    def _deadline(timeout: float | None) -> float | None:
        return None if timeout is None else monotonic() + timeout

    def _wait_for_space_locked(
        self, timeout: float | None, deadline: float | None
    ) -> None:
        """Block (lock released) until one slot frees up.

        Raises :class:`QueueTimeout` on expiry and
        :class:`ValidationError` if the queue seals while waiting.
        """
        while len(self._items) >= self.capacity:
            if self._sealed:
                raise ValidationError("put() on a fully closed queue")
            if timeout is None:
                self._not_full.wait()
            else:
                remaining = (
                    deadline - monotonic() if deadline is not None else 0.0
                )
                if remaining <= 0 or not self._not_full.wait(remaining):
                    raise QueueTimeout(
                        f"put() timed out after {timeout}s "
                        f"(queue {self.name!r} full at {self.capacity})"
                    )
        if self._sealed:
            raise ValidationError("put() on a fully closed queue")

    # -- producer side ---------------------------------------------------

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Enqueue; blocks on a full queue (backpressure).

        The closed check and the enqueue are atomic under the queue
        lock, so a ``put()`` can never race a final ``close()``: either
        the put lands before the queue seals, or it observes the seal
        and raises.  While waiting out backpressure the lock is
        *released* (condition wait), so other producers and consumers
        are never serialized behind one blocked put.  ``timeout=0``
        tries once and raises :class:`QueueTimeout` if full.
        """
        with self._not_full:
            if self._sealed:
                raise ValidationError("put() on a fully closed queue")
            self._wait_for_space_locked(timeout, self._deadline(timeout))
            self._items.append(item)
            self._not_empty.notify()
            self._observe_depth_locked()

    def put_many(
        self, items: Iterable[Any], timeout: float | None = None
    ) -> int:
        """Enqueue a batch under one lock round-trip; returns the count.

        Blocks for space as :meth:`put` does (one shared deadline for
        the whole batch).  On timeout with *some* items enqueued the
        partial count comes back — callers advance and retry; on
        timeout with nothing enqueued :class:`QueueTimeout` is raised.
        """
        batch = list(items)
        if not batch:
            return 0
        deadline = self._deadline(timeout)
        with self._not_full:
            if self._sealed:
                raise ValidationError("put() on a fully closed queue")
            done = 0
            while done < len(batch):
                try:
                    self._wait_for_space_locked(timeout, deadline)
                except QueueTimeout:
                    if done:
                        break
                    raise QueueTimeout(
                        f"put_many() timed out with {len(batch)} items "
                        f"unenqueued (queue {self.name!r})"
                    ) from None
                room = self.capacity - len(self._items)
                take = min(room, len(batch) - done)
                self._items.extend(batch[done:done + take])
                done += take
                self._not_empty.notify(take)
            self._observe_depth_locked()
            self._record_batch(f"{self.name}.put", done)
        return done

    def add_producers(self, n: int = 1) -> None:
        """Register ``n`` more producers on a still-open queue.

        The reconfiguration hook: scaling a stage *up* registers the
        new workers' closes before they spawn, so the close count stays
        balanced and the queue can't seal early underneath live
        producers.  Raises :class:`ValidationError` once sealed —
        there is nothing left to produce into.
        """
        if n < 1:
            raise ValidationError("add_producers() needs n >= 1")
        with self._lock:
            if self._sealed:
                raise ValidationError(
                    "add_producers() on a fully closed queue"
                )
            self._open_producers += n

    def close(self) -> None:
        """One producer is done; the last close seals the queue.

        The final close wakes every consumer blocked in :meth:`get` /
        :meth:`get_many` (they drain buffered items, then see
        :class:`Closed`) and every producer parked on backpressure
        (they raise :class:`ValidationError`).
        """
        with self._lock:
            if self._open_producers <= 0:
                raise ValidationError("close() called more times than producers")
            self._open_producers -= 1
            if self._open_producers == 0:
                self._sealed = True
                self._not_empty.notify_all()
                self._not_full.notify_all()

    # -- consumer side ---------------------------------------------------

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue; raises :class:`Closed` once drained and closed.

        ``timeout=None`` blocks until an item arrives or the queue
        closes; ``timeout=0`` tries once without blocking; any other
        timeout raises :class:`QueueTimeout` on expiry.
        """
        with self._not_empty:
            self._wait_for_item_locked(timeout, self._deadline(timeout))
            item = self._items.popleft()
            self._not_full.notify()
            self._observe_depth_locked()
            return item

    def get_many(
        self,
        max_items: int,
        timeout: float | None = None,
        *,
        linger: float = 0.0,
    ) -> list[Any]:
        """Dequeue up to ``max_items`` under one lock round-trip.

        Blocks for the *first* item exactly as :meth:`get` does, then
        greedily drains whatever else is buffered.  With ``linger > 0``
        the call keeps waiting up to that many extra seconds to top the
        batch up to ``max_items`` (it returns early when the queue
        closes).  Always returns at least one item; raises
        :class:`Closed` once drained and closed.
        """
        if max_items < 1:
            raise ValidationError("max_items must be >= 1")
        with self._not_empty:
            self._wait_for_item_locked(timeout, self._deadline(timeout))
            batch = [self._items.popleft()]
            while len(batch) < max_items and self._items:
                batch.append(self._items.popleft())
            if linger > 0.0:
                deadline = monotonic() + linger
                while len(batch) < max_items and not self._sealed:
                    remaining = deadline - monotonic()
                    if remaining <= 0 or not self._not_empty.wait(remaining):
                        break
                    while len(batch) < max_items and self._items:
                        batch.append(self._items.popleft())
            self._not_full.notify(len(batch))
            self._observe_depth_locked()
            self._record_batch(f"{self.name}.get", len(batch))
            return batch

    def _wait_for_item_locked(
        self, timeout: float | None, deadline: float | None
    ) -> None:
        """Block (lock released) until an item is buffered.

        Raises :class:`Closed` if the queue is drained and sealed, and
        :class:`QueueTimeout` on expiry.
        """
        while not self._items:
            if self._sealed:
                raise Closed
            if timeout is None:
                self._not_empty.wait()
            else:
                remaining = (
                    deadline - monotonic() if deadline is not None else 0.0
                )
                if remaining <= 0 or not self._not_empty.wait(remaining):
                    raise QueueTimeout(
                        f"get() timed out after {timeout}s "
                        f"(queue {self.name!r} empty)"
                    )

    # -- introspection ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._sealed

    def qsize(self) -> int:
        return len(self._items)

    def sample_occupancy(self) -> int:
        """Publish and return the current depth (for external samplers)."""
        with self._lock:
            return self._observe_depth_locked()
