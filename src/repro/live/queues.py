"""Bounded, closable queues for the live pipeline threads.

The paper's stages hand chunks through thread-safe queues; Python's
``queue.Queue`` provides the thread safety, this wrapper adds the
end-of-stream protocol every stage needs: a producer-side ``close()``
that wakes all consumers exactly once each, with items drained first.

With a :class:`~repro.telemetry.Telemetry` attached (and a ``name``),
every put/get publishes the instantaneous depth to the
``pipeline_queue_depth{queue=...}`` gauge, whose high-water mark is the
practical signal for sizing the paper's bounded queues.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.util.errors import ValidationError


class Closed(Exception):
    """Raised by :meth:`ClosableQueue.get` after drain + close."""


class ClosableQueue:
    """Bounded FIFO with multi-producer close semantics.

    ``close()`` may be called several times (one per producer); the
    queue only closes when ``producers`` many closes arrived.  Consumers
    keep draining buffered items and then see :class:`Closed`.
    """

    _SENTINEL = object()

    def __init__(
        self,
        capacity: int = 8,
        producers: int = 1,
        *,
        name: str = "queue",
        telemetry=None,
    ) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        if producers < 1:
            raise ValidationError("producers must be >= 1")
        self.name = name
        self._q: queue.Queue[Any] = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._open_producers = producers
        self._closed = threading.Event()
        #: Deepest the queue has ever been (also on the telemetry gauge
        #: as ``high_water`` when one is attached).
        self.max_depth = 0
        self._gauge = (
            telemetry.queue_gauge(name) if telemetry is not None else None
        )

    def _observe_depth(self) -> int:
        depth = self._q.qsize()
        if depth > self.max_depth:
            self.max_depth = depth
        if self._gauge is not None:
            self._gauge.set(depth)
        return depth

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Enqueue; blocks on a full queue (backpressure).

        The closed check and the enqueue are atomic under ``_lock`` so a
        ``put()`` can never race a final ``close()``: either the put
        lands before the queue seals, or it observes the seal and
        raises.  (``close()`` of *other* producers may block behind a
        put that is waiting out backpressure — harmless, since those
        producers are done producing, and consumers drain without the
        lock.)
        """
        with self._lock:
            if self._closed.is_set():
                raise ValidationError("put() on a fully closed queue")
            self._q.put(item, timeout=timeout)
        self._observe_depth()

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue; raises :class:`Closed` once drained and closed."""
        while True:
            if self._closed.is_set():
                # Drain without blocking; anything left still counts.
                try:
                    item = self._q.get_nowait()
                except queue.Empty:
                    raise Closed from None
            else:
                try:
                    item = self._q.get(timeout=timeout or 0.1)
                except queue.Empty:
                    if timeout is not None:
                        raise
                    continue
            self._observe_depth()
            if item is self._SENTINEL:
                raise Closed
            return item

    def close(self) -> None:
        """One producer is done; the last close seals the queue."""
        with self._lock:
            if self._open_producers <= 0:
                raise ValidationError("close() called more times than producers")
            self._open_producers -= 1
            if self._open_producers == 0:
                self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def qsize(self) -> int:
        return self._q.qsize()

    def sample_occupancy(self) -> int:
        """Publish and return the current depth (for external samplers)."""
        return self._observe_depth()
