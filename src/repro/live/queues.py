"""Bounded, closable queues for the live pipeline threads.

The paper's stages hand chunks through thread-safe queues; Python's
``queue.Queue`` provides the thread safety, this wrapper adds the
end-of-stream protocol every stage needs: a producer-side ``close()``
that wakes all consumers exactly once each, with items drained first.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.util.errors import ValidationError


class Closed(Exception):
    """Raised by :meth:`ClosableQueue.get` after drain + close."""


class ClosableQueue:
    """Bounded FIFO with multi-producer close semantics.

    ``close()`` may be called several times (one per producer); the
    queue only closes when ``producers`` many closes arrived.  Consumers
    keep draining buffered items and then see :class:`Closed`.
    """

    _SENTINEL = object()

    def __init__(self, capacity: int = 8, producers: int = 1) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        if producers < 1:
            raise ValidationError("producers must be >= 1")
        self._q: queue.Queue[Any] = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._open_producers = producers
        self._closed = threading.Event()

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Enqueue; blocks on a full queue (backpressure)."""
        if self._closed.is_set():
            raise ValidationError("put() on a fully closed queue")
        self._q.put(item, timeout=timeout)

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue; raises :class:`Closed` once drained and closed."""
        while True:
            if self._closed.is_set():
                # Drain without blocking; anything left still counts.
                try:
                    item = self._q.get_nowait()
                except queue.Empty:
                    raise Closed from None
            else:
                try:
                    item = self._q.get(timeout=timeout or 0.1)
                except queue.Empty:
                    if timeout is not None:
                        raise
                    continue
            if item is self._SENTINEL:
                raise Closed
            return item

    def close(self) -> None:
        """One producer is done; the last close seals the queue."""
        with self._lock:
            if self._open_producers <= 0:
                raise ValidationError("close() called more times than producers")
            self._open_producers -= 1
            if self._open_producers == 0:
                self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def qsize(self) -> int:
        return self._q.qsize()
