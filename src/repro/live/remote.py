"""Two-endpoint live pipeline over real TCP.

The in-process :class:`~repro.live.runtime.LivePipeline` wires sender
and receiver through socketpairs; this module splits them into network
endpoints so the paper's Figure-10 shape (sender machine → receiver
machine, x TCP connections) runs for real:

- :class:`ReceiverServer` — listens, accepts the expected number of
  connections, runs receive + decompression workers, delivers to a sink;
- :class:`SenderClient` — reads chunks from a source, compresses, and
  ships them over its connections.

Used by ``repro-live --listen`` / ``--connect`` and by the integration
tests (both endpoints in one process over localhost).
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.compress.codec import Codec, get_codec
from repro.data.chunking import Chunk
from repro.live import workers
from repro.live.queues import ClosableQueue
from repro.live.transport import FramedReceiver, FramedSender
from repro.util.errors import TransportError, ValidationError


@dataclass
class EndpointReport:
    """Outcome of one endpoint's run."""

    role: str
    chunks: int
    payload_bytes: int
    wire_bytes: int
    elapsed: float
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "ok" if self.ok else f"ERRORS: {'; '.join(self.errors)}"
        return (
            f"{self.role}: chunks={self.chunks} "
            f"payload={self.payload_bytes / 1e6:.2f}MB "
            f"wire={self.wire_bytes / 1e6:.2f}MB "
            f"elapsed={self.elapsed:.2f}s [{status}]"
        )


class ReceiverServer:
    """Accepts sender connections and runs the receiver-side stages."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        codec: Codec | str = "zlib",
        connections: int = 1,
        decompress_threads: int = 2,
        queue_capacity: int = 8,
        accept_timeout: float = 30.0,
        join_timeout: float = 120.0,
        telemetry=None,
    ) -> None:
        if connections < 1:
            raise ValidationError("connections must be >= 1")
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self.connections = connections
        self.decompress_threads = decompress_threads
        self.queue_capacity = queue_capacity
        self.accept_timeout = accept_timeout
        self.join_timeout = join_timeout
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.thread_counts.update(
                {"recv": connections, "decompress": decompress_threads}
            )
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(accept_timeout)

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound (port resolves 0 → ephemeral)."""
        return self._listener.getsockname()[:2]

    def serve(
        self, sink: Callable[[str, int, bytes], None] | None = None
    ) -> EndpointReport:
        """Accept the expected connections and run to end-of-stream."""
        t0 = time.perf_counter()
        stats = {
            "recv": workers.StageStats("recv"),
            "decompress": workers.StageStats("decompress"),
        }
        delivered = {"chunks": 0, "bytes": 0}
        lock = threading.Lock()

        def counting_sink(stream_id: str, index: int, data: bytes) -> None:
            with lock:
                delivered["chunks"] += 1
                delivered["bytes"] += len(data)
            if sink is not None:
                sink(stream_id, index, data)

        wireq = ClosableQueue(
            self.queue_capacity,
            producers=self.connections,
            name="wireq",
            telemetry=self.telemetry,
        )
        threads: list[threading.Thread] = []
        errors: list[str] = []
        try:
            conns = []
            for _ in range(self.connections):
                conn, _addr = self._listener.accept()
                conns.append(conn)
        except TimeoutError:
            errors.append(
                f"timed out waiting for {self.connections} connections"
            )
            return EndpointReport("receiver", 0, 0, 0,
                                  time.perf_counter() - t0, errors)
        finally:
            self._listener.close()

        for i, conn in enumerate(conns):
            threads.append(
                threading.Thread(
                    target=workers.receiver,
                    args=(
                        FramedReceiver(conn, telemetry=self.telemetry),
                        wireq,
                        stats["recv"],
                    ),
                    kwargs={"telemetry": self.telemetry},
                    name=f"recv-{i}",
                    daemon=True,
                )
            )
        for i in range(self.decompress_threads):
            threads.append(
                threading.Thread(
                    target=workers.decompressor,
                    args=(self.codec, wireq, stats["decompress"], counting_sink),
                    kwargs={"telemetry": self.telemetry},
                    name=f"decompress-{i}",
                    daemon=True,
                )
            )
        for t in threads:
            t.start()
        for t in threads:
            t.join(self.join_timeout)
            if t.is_alive():
                errors.append(f"thread {t.name} did not finish")
        for s in stats.values():
            errors.extend(s.errors)
        return EndpointReport(
            role="receiver",
            chunks=delivered["chunks"],
            payload_bytes=delivered["bytes"],
            wire_bytes=stats["recv"].bytes_in,
            elapsed=time.perf_counter() - t0,
            errors=errors,
        )


class SenderClient:
    """Compresses chunks and ships them over TCP connections."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        codec: Codec | str = "zlib",
        connections: int = 1,
        compress_threads: int = 2,
        queue_capacity: int = 8,
        connect_timeout: float = 30.0,
        join_timeout: float = 120.0,
        telemetry=None,
    ) -> None:
        if connections < 1:
            raise ValidationError("connections must be >= 1")
        self.host = host
        self.port = port
        self.codec = get_codec(codec) if isinstance(codec, str) else codec
        self.connections = connections
        self.compress_threads = compress_threads
        self.queue_capacity = queue_capacity
        self.connect_timeout = connect_timeout
        self.join_timeout = join_timeout
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.thread_counts.update(
                {"feed": 1, "compress": compress_threads, "send": connections}
            )

    def run(self, source: Iterable[Chunk]) -> EndpointReport:
        """Stream every chunk of ``source`` to the receiver."""
        t0 = time.perf_counter()
        stats = {
            "feed": workers.StageStats("feed"),
            "compress": workers.StageStats("compress"),
            "send": workers.StageStats("send"),
        }
        rawq = ClosableQueue(
            self.queue_capacity, producers=1, name="rawq",
            telemetry=self.telemetry,
        )
        sendq = ClosableQueue(
            self.queue_capacity, producers=self.compress_threads,
            name="sendq", telemetry=self.telemetry,
        )
        errors: list[str] = []
        try:
            senders = [
                FramedSender(
                    socket.create_connection(
                        (self.host, self.port), timeout=self.connect_timeout
                    ),
                    telemetry=self.telemetry,
                )
                for _ in range(self.connections)
            ]
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        for s in senders:
            s.sock.settimeout(None)

        threads = [
            threading.Thread(
                target=workers.feeder,
                args=(source, rawq, stats["feed"]),
                kwargs={"telemetry": self.telemetry},
                name="feeder",
                daemon=True,
            )
        ]
        for i in range(self.compress_threads):
            threads.append(
                threading.Thread(
                    target=workers.compressor,
                    args=(self.codec, rawq, sendq, stats["compress"]),
                    kwargs={"telemetry": self.telemetry},
                    name=f"compress-{i}",
                    daemon=True,
                )
            )
        for i, tx in enumerate(senders):
            threads.append(
                threading.Thread(
                    target=workers.sender,
                    args=(tx, sendq, stats["send"]),
                    kwargs={"compressed": True, "telemetry": self.telemetry},
                    name=f"send-{i}",
                    daemon=True,
                )
            )
        for t in threads:
            t.start()
        for t in threads:
            t.join(self.join_timeout)
            if t.is_alive():
                errors.append(f"thread {t.name} did not finish")
        for s in stats.values():
            errors.extend(s.errors)
        return EndpointReport(
            role="sender",
            chunks=stats["send"].chunks,
            payload_bytes=stats["feed"].bytes_in,
            wire_bytes=stats["send"].bytes_out,
            elapsed=time.perf_counter() - t0,
            errors=errors,
        )
