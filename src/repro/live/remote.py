"""Two-endpoint live pipeline over real TCP, with fault recovery.

The in-process :class:`~repro.live.runtime.LivePipeline` wires sender
and receiver through socketpairs; this module splits them into network
endpoints so the paper's Figure-10 shape (sender machine → receiver
machine, x TCP connections) runs for real:

- :class:`ReceiverServer` — listens, accepts (and re-accepts)
  connections, deduplicates redelivered chunks, acknowledges every
  frame, runs receive + decompression workers, delivers to a sink;
- :class:`SenderClient` — reads chunks from a source, compresses, and
  ships them over resilient connections that reconnect with capped
  exponential backoff and replay whatever the receiver never
  acknowledged.

Together they implement wire-format v2 (``docs/resilience.md``): at
-least-once transmission plus receiver-side dedup on (stream, index)
gives exactly-once delivery at the sink, which the chaos integration
test (``tests/integration/test_chaos.py``) holds them to while
connections are killed and frames corrupted mid-stream.

Used by ``repro-live --listen`` / ``--connect`` / ``--fault`` and by
the integration tests (both endpoints in one process over localhost).
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.compress.codec import Codec, CodecSpec, resolve_codec
from repro.data.chunking import Chunk
from repro.faults.policy import RetryPolicy, TimeoutPolicy
from repro.live import workers
from repro.live.dedup import StreamDedup
from repro.live.eventloop import (
    DEFAULT_STREAM_BUDGET,
    EventLoopPlane,
    default_shards,
    run_accept_loop,
)
from repro.live.queues import ClosableQueue
from repro.live.transport import Frame, FramedReceiver, FramedSender
from repro.telemetry.facade import as_telemetry
from repro.telemetry.spans import stage_span
from repro.util.errors import (
    FrameIntegrityError,
    TransportError,
    ValidationError,
)


@dataclass
class EndpointReport:
    """Outcome of one endpoint's run.

    Implements the shared result protocol
    (:class:`repro.core.results.RunResult`): ``ok``, ``summary()``,
    ``to_dict()``.
    """

    role: str
    chunks: int
    payload_bytes: int
    wire_bytes: int
    elapsed: float
    errors: list[str] = field(default_factory=list)
    #: Unified metrics/spans for the run (None when telemetry was off).
    telemetry: "object | None" = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "ok" if self.ok else f"ERRORS: {'; '.join(self.errors)}"
        return (
            f"{self.role}: chunks={self.chunks} "
            f"payload={self.payload_bytes / 1e6:.2f}MB "
            f"wire={self.wire_bytes / 1e6:.2f}MB "
            f"elapsed={self.elapsed:.2f}s [{status}]"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "role": self.role,
            "ok": self.ok,
            "chunks": self.chunks,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "elapsed": self.elapsed,
            "errors": list(self.errors),
        }


class ReceiverServer:
    """Accepts sender connections and runs the receiver-side stages.

    Connection loss is survivable: the listener stays open until every
    logical sender connection has delivered its end-of-stream and
    closed cleanly, so a sender that reconnects mid-stream is simply
    re-accepted.  Redelivered chunks are deduplicated on
    (stream, index) before they reach the decompressors, and every
    accepted frame is acknowledged back to the sender (wire-format v2).

    Two receive planes share those semantics (the chaos suite runs
    against both):

    - ``mode="eventloop"`` (default) — a fixed pool of selector-driven
      reactor shards multiplexes every connection
      (:mod:`repro.live.eventloop`), with RSS-style stream→shard
      placement and per-stream fair-share backpressure; scales to
      thousands of streams per core.
    - ``mode="threads"`` — the legacy one-handler-thread-per-socket
      fallback.

    The listener socket binds in ``__init__``; use :meth:`close` (or
    the context-manager form) when :meth:`serve` is never reached.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        codec: Codec | CodecSpec | str = "zlib",
        connections: int = 1,
        decompress_threads: int = 2,
        queue_capacity: int = 8,
        batch_frames: int = 1,
        mode: str = "eventloop",
        shards: int = 0,
        stream_budget_bytes: int = DEFAULT_STREAM_BUDGET,
        timeouts: TimeoutPolicy | None = None,
        telemetry: "bool | object" = False,
    ) -> None:
        if connections < 1:
            raise ValidationError("connections must be >= 1")
        if batch_frames < 1:
            raise ValidationError("batch_frames must be >= 1")
        if mode not in ("eventloop", "threads"):
            raise ValidationError(
                f"mode must be 'eventloop' or 'threads', not {mode!r}"
            )
        if shards < 0:
            raise ValidationError("shards must be >= 0")
        if stream_budget_bytes < 1:
            raise ValidationError("stream_budget_bytes must be >= 1")
        self.codec = resolve_codec(codec)
        self.connections = connections
        self.decompress_threads = decompress_threads
        self.queue_capacity = queue_capacity
        self.batch_frames = batch_frames
        self.mode = mode
        self.shards = shards or default_shards()
        self.stream_budget_bytes = stream_budget_bytes
        self.timeouts = timeouts or TimeoutPolicy()
        self.telemetry = as_telemetry(telemetry)
        if self.telemetry is not None:
            recv_threads = self.shards if mode == "eventloop" else connections
            self.telemetry.thread_counts.update(
                {"recv": recv_threads, "decompress": decompress_threads}
            )
        #: Open sockets of the thread-mode accept loop (pruned as
        #: handlers close them; bounded under reconnect churn).
        self._live_conns: list[socket.socket] = []
        self._closed = False
        self._listener = socket.create_server((host, port))

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound (port resolves 0 → ephemeral)."""
        return self._listener.getsockname()[:2]

    def close(self) -> None:
        """Release the listener; idempotent, safe before/after serve()."""
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "ReceiverServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def serve(
        self, sink: Callable[[str, int, bytes], None] | None = None
    ) -> EndpointReport:
        """Accept connections (and re-connections) to end-of-stream."""
        t0 = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.emit_event(
                "run_start",
                "receiver serving",
                runner="ReceiverServer",
                connections=self.connections,
                decompress_threads=self.decompress_threads,
                receiver_mode=self.mode,
                shards=self.shards if self.mode == "eventloop" else 0,
            )
        stats = {
            "recv": workers.StageStats("recv"),
            "decompress": workers.StageStats("decompress"),
        }
        delivered = {"chunks": 0, "bytes": 0}
        lock = threading.Lock()
        # serve() is the only producer: the receive plane feeds it
        # frames, and it seals the queue once every logical connection
        # finished.
        wireq = ClosableQueue(
            self.queue_capacity,
            producers=1,
            name="wireq",
            telemetry=self.telemetry,
        )
        plane: EventLoopPlane | None = None
        if self.mode == "eventloop":
            plane = EventLoopPlane(
                shards=self.shards,
                wireq=wireq,
                recv_stats=stats["recv"],
                telemetry=self.telemetry,
                stream_budget_bytes=self.stream_budget_bytes,
            )

        def counting_sink(stream_id: str, index: int, data: bytes) -> None:
            with lock:
                delivered["chunks"] += 1
                delivered["bytes"] += len(data)
            if sink is not None:
                sink(stream_id, index, data)
            if plane is not None:
                plane.on_delivered(stream_id, index)

        dedup = StreamDedup()
        state = {"finished": 0, "progress": 0}
        state_lock = threading.Lock()

        def bump_progress() -> None:
            with state_lock:
                state["progress"] += 1

        def handler(conn: socket.socket) -> None:
            """One accepted socket: frames in, ACKs out, until EOF.

            A session finishes a *logical* connection only when it saw
            end-of-stream AND a clean EOF — the sender half-closes only
            after all its frames were acknowledged, so a session that
            dies earlier will be resumed by a re-accepted connection.
            """
            rx = FramedReceiver(conn, telemetry=self.telemetry)
            ack_tx = FramedSender(conn)
            track = threading.current_thread().name
            saw_eos = False
            try:
                while True:
                    with stage_span(self.telemetry, "recv", track=track) as sp:
                        frame = rx.recv()
                        if frame is None or frame.eos or frame.ack:
                            sp.discard = True
                        else:
                            sp.stream_id = frame.stream_id
                            sp.chunk_id = frame.index
                    if frame is None:
                        break
                    bump_progress()
                    if frame.ack:
                        continue  # senders don't ACK; tolerate and move on
                    if frame.traced and not frame.eos:
                        workers._note_wire(self.telemetry, frame)
                    if frame.eos:
                        saw_eos = True
                        ack_tx.send(Frame.ack_for(frame))
                        continue
                    with state_lock:
                        fresh = dedup.claim(frame.stream_id, frame.index)
                    if not fresh:
                        if self.telemetry is not None:
                            self.telemetry.record_dedup()
                    else:
                        stats["recv"].record(
                            len(frame.payload), len(frame.payload), sp.duration
                        )
                        if self.telemetry is not None:
                            self.telemetry.record_chunk(
                                "recv", frame.stream_id, len(frame.payload)
                            )
                        wireq.put(frame)
                    ack_tx.send(Frame.ack_for(frame))
            except FrameIntegrityError:
                # The byte stream can't be trusted for framing any more:
                # drop the connection, let the sender replay.
                if self.telemetry is not None:
                    self.telemetry.record_rejected()
            except (TransportError, OSError):
                pass  # connection lost; the sender reconnects
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
                with state_lock:
                    if saw_eos:
                        state["finished"] += 1
                    state["progress"] += 1

        threads: list[threading.Thread] = []
        for i in range(self.decompress_threads):
            threads.append(
                threading.Thread(
                    target=workers.decompressor,
                    args=(self.codec, wireq, stats["decompress"], counting_sink),
                    kwargs={
                        "telemetry": self.telemetry,
                        "batch_frames": self.batch_frames,
                    },
                    name=f"decompress-{i}",
                    daemon=True,
                )
            )
        for t in threads:
            t.start()

        errors: list[str] = []
        handler_threads: list[threading.Thread] = []
        self._live_conns = []
        accepted = 0
        if plane is not None:
            plane.start()
            try:
                accepted = run_accept_loop(
                    plane,
                    self._listener,
                    connections=self.connections,
                    accept_timeout=self.timeouts.accept,
                    errors=errors,
                )
            finally:
                self.close()
            errors.extend(plane.stop(self.timeouts.join))
        else:
            self._listener.settimeout(min(0.25, self.timeouts.accept / 2))
            last_progress = -1
            last_change = time.monotonic()
            try:
                while True:
                    with state_lock:
                        finished = state["finished"]
                        progress = state["progress"]
                    if finished >= self.connections:
                        break
                    now = time.monotonic()
                    if progress != last_progress:
                        last_progress = progress
                        last_change = now
                    elif now - last_change > self.timeouts.accept:
                        errors.append(
                            f"timed out waiting for {self.connections} "
                            f"connections to finish ({finished} complete, "
                            f"{accepted} accepted)"
                        )
                        break
                    # Handlers close their sockets when a session ends;
                    # prune those here so reconnect churn can't retain
                    # dead socket objects for the whole run.
                    self._live_conns = [
                        c for c in self._live_conns if c.fileno() != -1
                    ]
                    try:
                        conn, _addr = self._listener.accept()
                    except (TimeoutError, socket.timeout):
                        continue
                    except OSError as exc:
                        errors.append(f"accept failed: {exc}")
                        break
                    bump_progress()
                    self._live_conns.append(conn)
                    t = threading.Thread(
                        target=handler,
                        args=(conn,),
                        name=f"recv-{accepted}",
                        daemon=True,
                    )
                    accepted += 1
                    handler_threads.append(t)
                    t.start()
            finally:
                self.close()

            if errors:
                # Gave up waiting: unblock handlers stuck in recv() so
                # the joins below return promptly.
                for conn in self._live_conns:
                    try:
                        conn.close()
                    except OSError:
                        pass
            for t in handler_threads:
                t.join(self.timeouts.join)
                if t.is_alive():
                    errors.append(f"thread {t.name} did not finish")
        wireq.close()
        for t in threads:
            t.join(self.timeouts.join)
            if t.is_alive():
                errors.append(f"thread {t.name} did not finish")
        for s in stats.values():
            errors.extend(s.errors)
        if self.telemetry is not None:
            self.telemetry.emit_event(
                "run_end",
                "receiver finished",
                severity="info" if not errors else "error",
                runner="ReceiverServer",
                ok=not errors,
                chunks=delivered["chunks"],
                elapsed_s=round(time.perf_counter() - t0, 6),
            )
        return EndpointReport(
            role="receiver",
            chunks=delivered["chunks"],
            payload_bytes=delivered["bytes"],
            wire_bytes=stats["recv"].bytes_in,
            elapsed=time.perf_counter() - t0,
            errors=errors,
            telemetry=self.telemetry,
        )


class SenderClient:
    """Compresses chunks and ships them over resilient TCP connections.

    Each connection runs :func:`repro.live.workers.resilient_sender`:
    frames are retained until acknowledged, dead connections are
    re-dialed with ``retry``'s capped exponential backoff, and the
    unacknowledged tail is replayed in order.  An optional
    :class:`~repro.faults.FaultInjector` sabotages outgoing frames for
    chaos testing.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        codec: Codec | CodecSpec | str = "zlib",
        connections: int = 1,
        compress_threads: int = 2,
        queue_capacity: int = 8,
        batch_frames: int = 1,
        batch_linger: float = 0.0,
        timeouts: TimeoutPolicy | None = None,
        retry: RetryPolicy | None = None,
        injector=None,
        telemetry: "bool | object" = False,
        trace_sample: int = 0,
        trace_per_stream_cap: int = 0,
    ) -> None:
        if connections < 1:
            raise ValidationError("connections must be >= 1")
        if batch_frames < 1:
            raise ValidationError("batch_frames must be >= 1")
        if batch_linger < 0:
            raise ValidationError("batch_linger must be >= 0")
        if trace_sample < 0:
            raise ValidationError("trace_sample must be >= 0")
        if trace_per_stream_cap < 0:
            raise ValidationError("trace_per_stream_cap must be >= 0")
        self.host = host
        self.port = port
        self.codec = resolve_codec(codec)
        self.connections = connections
        self.compress_threads = compress_threads
        self.queue_capacity = queue_capacity
        self.batch_frames = batch_frames
        self.batch_linger = batch_linger
        self.timeouts = timeouts or TimeoutPolicy()
        self.retry = retry or RetryPolicy()
        self.injector = injector
        self.telemetry = as_telemetry(telemetry)
        self.trace_sample = trace_sample
        self.trace_per_stream_cap = trace_per_stream_cap
        if self.telemetry is not None:
            self.telemetry.thread_counts.update(
                {"feed": 1, "compress": compress_threads, "send": connections}
            )

    def _dial(self, index: int) -> FramedSender:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeouts.connect
        )
        sock.settimeout(None)
        return FramedSender(
            sock,
            telemetry=self.telemetry,
            injector=self.injector,
            connection=index,
        )

    def run(self, source: Iterable[Chunk]) -> EndpointReport:
        """Stream every chunk of ``source`` to the receiver."""
        t0 = time.perf_counter()
        if self.telemetry is not None:
            self.telemetry.emit_event(
                "run_start",
                f"sender dialing {self.host}:{self.port}",
                runner="SenderClient",
                connections=self.connections,
                compress_threads=self.compress_threads,
            )
        stats = {
            "feed": workers.StageStats("feed"),
            "compress": workers.StageStats("compress"),
            "send": workers.StageStats("send"),
        }
        rawq = ClosableQueue(
            self.queue_capacity, producers=1, name="rawq",
            telemetry=self.telemetry,
        )
        sendq = ClosableQueue(
            self.queue_capacity, producers=self.compress_threads,
            name="sendq", telemetry=self.telemetry,
        )
        errors: list[str] = []
        senders: list[FramedSender] = []
        try:
            for i in range(self.connections):
                senders.append(self._dial(i))
        except OSError as exc:
            # Don't leak the connections that did dial before the
            # failure — close them before surfacing the error.
            for tx in senders:
                try:
                    tx.sock.close()
                except OSError:
                    pass
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc

        sampler = None
        if self.telemetry is not None and self.trace_sample > 0:
            from repro.trace import HeadSampler

            sampler = HeadSampler(self.trace_sample, self.trace_per_stream_cap)
        threads = [
            threading.Thread(
                target=workers.feeder,
                args=(source, rawq, stats["feed"]),
                kwargs={
                    "telemetry": self.telemetry,
                    "batch_frames": self.batch_frames,
                    "sampler": sampler,
                },
                name="feeder",
                daemon=True,
            )
        ]
        for i in range(self.compress_threads):
            threads.append(
                threading.Thread(
                    target=workers.compressor,
                    args=(self.codec, rawq, sendq, stats["compress"]),
                    kwargs={
                        "telemetry": self.telemetry,
                        "batch_frames": self.batch_frames,
                    },
                    name=f"compress-{i}",
                    daemon=True,
                )
            )
        for i, tx in enumerate(senders):
            threads.append(
                threading.Thread(
                    target=workers.resilient_sender,
                    args=(tx, _Redial(self, i), sendq, stats["send"]),
                    kwargs={
                        "compressed": True,
                        "retry": self.retry,
                        "drain_timeout": self.timeouts.drain,
                        "telemetry": self.telemetry,
                        "batch_frames": self.batch_frames,
                        "batch_linger": self.batch_linger,
                    },
                    name=f"send-{i}",
                    daemon=True,
                )
            )
        for t in threads:
            t.start()
        for t in threads:
            t.join(self.timeouts.join)
            if t.is_alive():
                errors.append(f"thread {t.name} did not finish")
        for s in stats.values():
            errors.extend(s.errors)
        if self.telemetry is not None:
            self.telemetry.emit_event(
                "run_end",
                "sender finished",
                severity="info" if not errors else "error",
                runner="SenderClient",
                ok=not errors,
                chunks=stats["send"].chunks,
                elapsed_s=round(time.perf_counter() - t0, 6),
            )
        return EndpointReport(
            role="sender",
            chunks=stats["send"].chunks,
            payload_bytes=stats["feed"].bytes_in,
            wire_bytes=stats["send"].bytes_out,
            elapsed=time.perf_counter() - t0,
            errors=errors,
            telemetry=self.telemetry,
        )


class _Redial:
    """Picklable-friendly reconnect callable for one connection index."""

    def __init__(self, client: SenderClient, index: int) -> None:
        self.client = client
        self.index = index

    def __call__(self) -> FramedSender:
        return self.client._dial(self.index)
