"""Best-effort CPU affinity for live pipeline threads.

On Linux, ``os.sched_setaffinity(0, ...)`` binds the *calling thread*
(tid 0 means "current task"), which is exactly what the paper's
``numa_bind()`` usage needs at thread granularity.  Hosts without the
syscall (macOS) or with a single CPU degrade to a no-op — the live path
is about pipeline correctness, not placement performance (DESIGN.md §2).
"""

from __future__ import annotations

import os
from collections.abc import Iterable


def supports_affinity() -> bool:
    """Whether this host can pin threads at all."""
    return hasattr(os, "sched_setaffinity") and os.cpu_count() not in (None, 1)


def pin_current_thread(cpus: Iterable[int]) -> bool:
    """Pin the calling thread to ``cpus``; returns True when applied.

    CPUs outside the host's range are dropped; an empty usable set (or a
    host without affinity support) leaves placement untouched.
    """
    wanted = set(int(c) for c in cpus)
    if not supports_affinity():
        return False
    ncpu = os.cpu_count() or 1
    usable = {c for c in wanted if 0 <= c < ncpu}
    if not usable:
        return False
    try:
        os.sched_setaffinity(0, usable)
        return True
    except OSError:
        return False


def current_affinity() -> set[int] | None:
    """The calling thread's CPU set, or None when unsupported."""
    if not hasattr(os, "sched_getaffinity"):
        return None
    try:
        return set(os.sched_getaffinity(0))
    except OSError:  # pragma: no cover - platform quirk
        return None
