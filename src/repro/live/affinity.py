"""Best-effort CPU affinity for live pipeline threads.

On Linux, ``os.sched_setaffinity(0, ...)`` binds the *calling thread*
(tid 0 means "current task"), which is exactly what the paper's
``numa_bind()`` usage needs at thread granularity.  Hosts without the
syscall (macOS) or with a single CPU degrade to a no-op — the live path
is about pipeline correctness, not placement performance (DESIGN.md §2).

Placement stays advisory, but it is no longer *silent*: when a
telemetry object rides along, :func:`pin_current_thread` records the
CPU set it actually applied in the ``repro_affinity_cpus{role}``
gauge — out-of-range CPUs the plan asked for are dropped, and the
gap between requested and applied is exactly the placement drift an
operator needs to see (in both thread and process modes).
"""

from __future__ import annotations

import os
from collections.abc import Iterable


def supports_affinity() -> bool:
    """Whether this host can pin threads at all."""
    return hasattr(os, "sched_setaffinity") and os.cpu_count() not in (None, 1)


def pin_current_thread(
    cpus: Iterable[int],
    *,
    role: str | None = None,
    telemetry: "object | None" = None,
) -> bool:
    """Pin the calling thread to ``cpus``; returns True when applied.

    CPUs outside the host's range are dropped; an empty usable set (or a
    host without affinity support) leaves placement untouched.  With
    ``role`` and ``telemetry`` given, the size of the set *actually
    applied* lands in the ``repro_affinity_cpus{role}`` gauge (0 when
    nothing was applied), so dropped CPUs are observable rather than
    silent.
    """
    wanted = set(int(c) for c in cpus)

    def _report(ncpus: int) -> None:
        if telemetry is not None and role is not None:
            telemetry.record_affinity(role, ncpus)  # type: ignore[attr-defined]

    if not supports_affinity():
        _report(0)
        return False
    ncpu = os.cpu_count() or 1
    usable = {c for c in wanted if 0 <= c < ncpu}
    if not usable:
        _report(0)
        return False
    try:
        os.sched_setaffinity(0, usable)
    except OSError:
        _report(0)
        return False
    applied = current_affinity()
    _report(len(applied) if applied is not None else len(usable))
    return True


def current_affinity() -> set[int] | None:
    """The calling thread's CPU set, or None when unsupported."""
    if not hasattr(os, "sched_getaffinity"):
        return None
    try:
        return set(os.sched_getaffinity(0))
    except OSError:  # pragma: no cover - platform quirk
        return None
