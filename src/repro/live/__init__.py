"""Live runtime: the pipeline with real threads, sockets and codecs.

The simulator (:mod:`repro.core`) answers the paper's *performance*
questions; this package proves the pipeline *logic* end-to-end on the
host it runs on: real worker threads connected by bounded queues, real
LZ4 (or zlib) compression, framed chunk transport over TCP/Unix
sockets, per-chunk checksums, and best-effort CPU affinity via
``sched_setaffinity`` where the host allows it.

Python's GIL means live throughput numbers say nothing about the
paper's claims (DESIGN.md §2); integrity and plumbing are what this
path verifies — and what `examples/live_pipeline.py` demonstrates.

Resilience (``docs/resilience.md``): the TCP endpoints survive
connection loss and frame corruption — the sender reconnects with
capped exponential backoff (:class:`~repro.faults.RetryPolicy`) and
replays unacknowledged frames, the receiver deduplicates and ACKs.
Chaos-test them by attaching a :class:`~repro.faults.FaultInjector`.
"""

from repro.faults.policy import RetryPolicy, TimeoutPolicy
from repro.live.affinity import current_affinity, pin_current_thread
from repro.live.remote import EndpointReport, ReceiverServer, SenderClient
from repro.live.queues import Closed, ClosableQueue
from repro.live.runtime import LiveConfig, LivePipeline, LiveReport
from repro.live.transport import Frame, FramedReceiver, FramedSender

__all__ = [
    "ClosableQueue",
    "EndpointReport",
    "ReceiverServer",
    "RetryPolicy",
    "SenderClient",
    "TimeoutPolicy",
    "Closed",
    "Frame",
    "FramedReceiver",
    "FramedSender",
    "LiveConfig",
    "LivePipeline",
    "LiveReport",
    "current_affinity",
    "pin_current_thread",
]
