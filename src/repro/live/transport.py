"""Framed chunk transport over sockets — the zeroMQ stand-in.

Wire format of one frame (all integers little-endian)::

    magic     u32   0x52435046 ("RCPF")
    stream    u16   stream id length, followed by that many bytes
    index     u32   chunk index within the stream
    flags     u16   bit 0: payload is compressed; bit 1: end-of-stream
    orig_len  u32   uncompressed payload length
    checksum  u32   xxhash32 of the (possibly compressed) payload
    length    u32   payload length
    payload   bytes

End-of-stream frames carry an empty payload.  The receiver verifies the
checksum before handing the frame up; a mismatch or malformed header
raises :class:`~repro.util.errors.TransportError` (fail loudly — a
corrupted scientific chunk must never be silently delivered).
"""

from __future__ import annotations

import socket
import struct
from dataclasses import dataclass

from repro.compress.xxhash import xxhash32
from repro.util.errors import TransportError

MAGIC = 0x52435046
_HEADER = struct.Struct("<IH")  # magic, stream-id length
_BODY = struct.Struct("<IHIII")  # index, flags, orig_len, checksum, length

FLAG_COMPRESSED = 0x1
FLAG_EOS = 0x2

#: Refuse absurd frames before allocating for them.
MAX_FRAME_PAYLOAD = 256 * 1024 * 1024
MAX_STREAM_ID = 4096


@dataclass(frozen=True)
class Frame:
    """One transported chunk (or end-of-stream marker)."""

    stream_id: str
    index: int
    payload: bytes
    compressed: bool = False
    orig_len: int = 0
    eos: bool = False

    @classmethod
    def end_of_stream(cls, stream_id: str) -> "Frame":
        return cls(stream_id=stream_id, index=0, payload=b"", eos=True)


class FramedSender:
    """Serializes frames onto a connected socket.

    With a :class:`~repro.telemetry.Telemetry` attached, every frame
    bumps ``transport_frames_total{direction="tx"}`` and
    ``transport_bytes_total{direction="tx"}`` (header + payload — the
    actual wire footprint).
    """

    def __init__(self, sock: socket.socket, *, telemetry=None) -> None:
        self.sock = sock
        self.telemetry = telemetry

    def send(self, frame: Frame) -> None:
        sid = frame.stream_id.encode()
        if len(sid) > MAX_STREAM_ID:
            raise TransportError(f"stream id too long ({len(sid)} bytes)")
        flags = (FLAG_COMPRESSED if frame.compressed else 0) | (
            FLAG_EOS if frame.eos else 0
        )
        parts = [
            _HEADER.pack(MAGIC, len(sid)),
            sid,
            _BODY.pack(
                frame.index,
                flags,
                frame.orig_len,
                xxhash32(frame.payload),
                len(frame.payload),
            ),
            frame.payload,
        ]
        wire = b"".join(parts)
        try:
            self.sock.sendall(wire)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        if self.telemetry is not None:
            self.telemetry.record_frame("tx", len(wire))

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass


class FramedReceiver:
    """Parses frames off a connected socket.

    Mirrors :class:`FramedSender`'s counters on the ``rx`` direction.
    """

    def __init__(self, sock: socket.socket, *, telemetry=None) -> None:
        self.sock = sock
        self.telemetry = telemetry

    def _read_exact(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                part = self.sock.recv(min(remaining, 1 << 20))
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not part:
                raise TransportError(
                    f"connection closed mid-frame ({remaining} of {n} bytes missing)"
                )
            chunks.append(part)
            remaining -= len(part)
        return b"".join(chunks)

    def recv(self) -> Frame | None:
        """Next frame, or None on clean connection shutdown."""
        try:
            head = self.sock.recv(_HEADER.size, socket.MSG_WAITALL)
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not head:
            return None
        if len(head) < _HEADER.size:
            head += self._read_exact(_HEADER.size - len(head))
        magic, sid_len = _HEADER.unpack(head)
        if magic != MAGIC:
            raise TransportError(f"bad frame magic 0x{magic:08X}")
        if sid_len > MAX_STREAM_ID:
            raise TransportError(f"stream id length {sid_len} exceeds limit")
        sid = self._read_exact(sid_len).decode()
        index, flags, orig_len, checksum, length = _BODY.unpack(
            self._read_exact(_BODY.size)
        )
        if length > MAX_FRAME_PAYLOAD:
            raise TransportError(f"frame payload {length} exceeds limit")
        payload = self._read_exact(length) if length else b""
        if xxhash32(payload) != checksum:
            raise TransportError(
                f"checksum mismatch on {sid}#{index} ({length} bytes)"
            )
        if self.telemetry is not None:
            self.telemetry.record_frame(
                "rx", _HEADER.size + sid_len + _BODY.size + length
            )
        return Frame(
            stream_id=sid,
            index=index,
            payload=payload,
            compressed=bool(flags & FLAG_COMPRESSED),
            orig_len=orig_len,
            eos=bool(flags & FLAG_EOS),
        )

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def socket_pipe(*, telemetry=None) -> tuple[FramedSender, FramedReceiver]:
    """An in-process transport (socketpair) for local pipelines/tests."""
    a, b = socket.socketpair()
    return (
        FramedSender(a, telemetry=telemetry),
        FramedReceiver(b, telemetry=telemetry),
    )
