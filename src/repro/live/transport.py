"""Framed chunk transport over sockets — the zeroMQ stand-in.

Wire format v2 of one frame (all integers little-endian)::

    magic     u32   0x52435046 ("RCPF")
    stream    u16   stream id length, followed by that many bytes
    index     u32   chunk index within the stream
    flags     u16   bit 0: payload is compressed; bit 1: end-of-stream;
                    bit 2: acknowledgement (v2); bit 3: flow-traced
                    (v2.2 — an 8-byte timestamp trailer follows the
                    payload); bits 8-15: codec wire id (v2.1; 0 = the
                    codec the pipeline was configured with, so
                    static-codec senders emit unchanged bytes)
    orig_len  u32   uncompressed payload length
    checksum  u32   CRC-32 (zlib) of the (possibly compressed) payload
    length    u32   payload length
    payload   bytes
    trailer   f64   sender wall clock at frame build — present only
                    when bit 3 is set; untraced frames are byte-
                    identical to v2.1

The frame checksum is ``zlib.crc32`` — computed in C at memory speed —
rather than the pure-Python xxhash32 the LZ4 frame format mandates:
checksumming every payload twice per hop must not be the pipeline
bottleneck, and the transport owns its own format.  (LZ4 frames keep
xxHash32; that is part of *their* spec.)

End-of-stream frames carry an empty payload.  v2 adds the ACK frame
(bit 2): an empty-payload frame the *receiver* sends back on the same
socket, echoing the (stream, index, eos) it just accepted — the
resilient sender retains every frame until its ACK arrives and replays
the unacknowledged tail after a reconnect (``docs/resilience.md``).
v1 peers never set bit 2, so data frames parse identically.

Frames are self-delimiting, so a batched send of N frames puts exactly
the same bytes on the wire as N sequential sends — batching changes
syscall count, never the format.

The hot path is zero-copy on the send side: the small header blob and
the (possibly multi-megabyte) payload stay separate buffers handed to
``socket.sendmsg`` as an iovec, so the payload is never copied into a
joined wire string (:meth:`FramedSender.send_many`).  The legacy
join-and-``sendall`` path survives for two callers: fault injection
(which must mangle contiguous wire bytes) and the ``repro-bench``
baseline (``vectored=False`` reproduces the pre-optimization copy
path).  The receive side parses out of a reusable buffer with
``memoryview``/``unpack_from`` — header fields are decoded in place and
large payload tails are read straight into their destination
``bytearray`` via ``recv_into`` (no per-read chunk list, no join).

The receiver verifies the checksum before handing the frame up; a
mismatch or malformed header raises
:class:`~repro.util.errors.FrameIntegrityError` (fail loudly — a
corrupted scientific chunk must never be silently delivered), while
connection failures raise plain
:class:`~repro.util.errors.TransportError`.

A :class:`~repro.faults.FaultInjector` can be attached to a
:class:`FramedSender`; it is consulted before every frame goes out and
may corrupt the wire bytes, truncate the frame, drop the connection, or
delay the send (chaos testing).
"""

from __future__ import annotations

import socket
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.util.errors import FrameIntegrityError, TransportError

MAGIC = 0x52435046
_HEADER = struct.Struct("<IH")  # magic, stream-id length
_BODY = struct.Struct("<IHIII")  # index, flags, orig_len, checksum, length

FLAG_COMPRESSED = 0x1
FLAG_EOS = 0x2
FLAG_ACK = 0x4
#: Bit 3 (v2.2): the frame belongs to a sampled flow trace and carries
#: a fixed-size timestamp trailer *after* the payload.  Untraced frames
#: never set the bit and never carry the trailer, so they stay
#: byte-identical to v2.1 — tracing costs zero wire bytes when off.
FLAG_TRACED = 0x8
#: Bits 8-15 of the flags word carry the codec wire id (0 = configured
#: codec) so adaptive senders can switch codec per frame and the
#: receiver still picks the right decompressor.
CODEC_SHIFT = 8

#: Trailer of a traced frame: the sender's wall clock when the frame
#: was built.  The receiver pairs it with its own arrival stamp to
#: derive wire time and the sender/receiver clock offset
#: (:mod:`repro.trace`).  Excluded from the payload checksum — it is
#: observability metadata, not scientific data.
TRACE_TRAILER = struct.Struct("<d")

#: Refuse absurd frames before allocating for them.
MAX_FRAME_PAYLOAD = 256 * 1024 * 1024
MAX_STREAM_ID = 4096

#: Buffers per ``sendmsg`` call.  POSIX guarantees IOV_MAX >= 16; Linux
#: allows 1024, but past a few dozen the syscall amortization is flat.
_IOV_GROUP = 64

#: Read-ahead granularity of the receiver's reusable buffer.
_READ_SIZE = 1 << 16


@dataclass(frozen=True)
class Frame:
    """One transported chunk (or end-of-stream / ACK marker)."""

    stream_id: str
    index: int
    payload: bytes
    compressed: bool = False
    orig_len: int = 0
    eos: bool = False
    ack: bool = False
    #: Wire id of the codec that produced the payload; 0 means "the
    #: codec the pipeline was configured with" (the legacy encoding).
    codec_id: int = 0
    #: Flow-trace membership (v2.2).  A traced frame carries
    #: ``sent_at`` — the sender's wall clock when the frame was built —
    #: in a trailer after the payload.
    traced: bool = False
    sent_at: float = 0.0

    @classmethod
    def end_of_stream(cls, stream_id: str) -> "Frame":
        return cls(stream_id=stream_id, index=0, payload=b"", eos=True)

    @classmethod
    def ack_for(cls, frame: "Frame") -> "Frame":
        """The acknowledgement the receiver returns for ``frame``."""
        return cls(
            stream_id=frame.stream_id,
            index=frame.index,
            payload=b"",
            eos=frame.eos,
            ack=True,
        )

    @property
    def key(self) -> tuple[str, int, bool]:
        """Identity used for ACK matching and receiver-side dedup."""
        return (self.stream_id, self.index, self.eos)


def encode_frame_header(frame: Frame) -> bytes:
    """The complete wire header (magic + stream id + body) for ``frame``.

    The payload is deliberately *not* included: the sender transmits
    ``(header, payload)`` as separate iovec entries so large payloads
    are never copied into a joined wire string.
    """
    sid = frame.stream_id.encode()
    if len(sid) > MAX_STREAM_ID:
        raise TransportError(f"stream id too long ({len(sid)} bytes)")
    if len(frame.payload) > MAX_FRAME_PAYLOAD:
        raise TransportError(
            f"frame payload {len(frame.payload)} exceeds limit"
        )
    if not 0 <= frame.codec_id <= 255:
        raise TransportError(f"codec id {frame.codec_id} outside [0, 255]")
    flags = (
        (FLAG_COMPRESSED if frame.compressed else 0)
        | (FLAG_EOS if frame.eos else 0)
        | (FLAG_ACK if frame.ack else 0)
        | (FLAG_TRACED if frame.traced else 0)
        | (frame.codec_id << CODEC_SHIFT)
    )
    return (
        _HEADER.pack(MAGIC, len(sid))
        + sid
        + _BODY.pack(
            frame.index,
            flags,
            frame.orig_len,
            zlib.crc32(frame.payload),
            len(frame.payload),
        )
    )


def encode_frame_trailer(frame: Frame) -> bytes:
    """The post-payload trailer: empty unless the frame is traced."""
    if not frame.traced:
        return b""
    return TRACE_TRAILER.pack(frame.sent_at)


class FramedSender:
    """Serializes frames onto a connected socket.

    With a :class:`~repro.telemetry.Telemetry` attached, every frame
    bumps ``transport_frames_total{direction="tx"}`` and
    ``transport_bytes_total{direction="tx"}`` (header + payload — the
    actual wire footprint), and every :meth:`send_many` batch feeds the
    ``pipeline_batch_size{site="wire.tx"}`` histogram.
    """

    #: Class-wide default; ``repro-bench`` flips the per-instance
    #: ``vectored`` flag to measure the legacy copy path.
    DEFAULT_VECTORED = True

    def __init__(
        self,
        sock: socket.socket,
        *,
        telemetry=None,
        injector=None,
        connection: int = 0,
        vectored: bool | None = None,
    ) -> None:
        self.sock = sock
        self.telemetry = telemetry
        #: Optional :class:`~repro.faults.FaultInjector` (chaos testing).
        self.injector = injector
        #: Connection index reported to the injector.
        self.connection = connection
        #: Use ``sendmsg`` vectored I/O (header + payload as separate
        #: buffers).  ``False`` restores the join-and-``sendall`` copy
        #: path — kept as the benchmark baseline.
        self.vectored = (
            self.DEFAULT_VECTORED if vectored is None else vectored
        ) and hasattr(sock, "sendmsg")

    def send(self, frame: Frame) -> None:
        self.send_many((frame,))

    def send_many(self, frames: Sequence[Frame]) -> None:
        """Transmit a batch of frames with as few syscalls as possible.

        The wire bytes are identical to sending each frame on its own
        (frames are self-delimiting); only the syscall count changes.
        With a fault injector attached, frames go one at a time through
        the contiguous-copy path so the injector can mangle bytes.
        """
        if not frames:
            return
        if self.injector is not None or not self.vectored:
            for frame in frames:
                self._send_copy(frame)
        else:
            buffers: list[bytes] = []
            sizes: list[int] = []
            for frame in frames:
                head = encode_frame_header(frame)
                buffers.append(head)
                size = len(head)
                if frame.payload:
                    buffers.append(frame.payload)
                    size += len(frame.payload)
                if frame.traced:
                    tail = encode_frame_trailer(frame)
                    buffers.append(tail)
                    size += len(tail)
                sizes.append(size)
            self._sendv(buffers)
            if self.telemetry is not None:
                for size in sizes:
                    self.telemetry.record_frame("tx", size)
        if self.telemetry is not None and len(frames) > 1:
            record = getattr(self.telemetry, "record_batch", None)
            if record is not None:
                record("wire.tx", len(frames))

    def _sendv(self, buffers: list[bytes]) -> None:
        """Vectored transmit with partial-send recovery."""
        pending = [memoryview(b) for b in buffers if b]
        try:
            while pending:
                sent = self.sock.sendmsg(pending[:_IOV_GROUP])
                while sent:
                    head = pending[0]
                    if sent >= len(head):
                        sent -= len(head)
                        pending.pop(0)
                    else:
                        pending[0] = head[sent:]
                        sent = 0
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    def _send_copy(self, frame: Frame) -> None:
        """Legacy path: join header + payload and ``sendall`` the copy.

        Required when an injector must see (and mangle) the contiguous
        wire bytes; also the ``repro-bench`` pre-optimization baseline.
        """
        wire = (
            encode_frame_header(frame)
            + frame.payload
            + encode_frame_trailer(frame)
        )
        if self.injector is not None:
            spec = self.injector.on_send(frame, self.connection)
            if spec is not None:
                wire = self._sabotage(spec, wire)
        try:
            self.sock.sendall(wire)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        if self.telemetry is not None:
            self.telemetry.record_frame("tx", len(wire))

    def _sabotage(self, spec, wire: bytes) -> bytes:
        """Apply one injected fault; returns the (possibly mangled) wire
        bytes, or raises :class:`TransportError` for connection faults."""
        if spec.kind == "delay":
            time.sleep(spec.delay)
            return wire
        if spec.kind == "corrupt":
            mangled = bytearray(wire)
            mangled[-1] ^= 0xFF  # payload tail, or checksum when empty
            return bytes(mangled)
        if spec.kind == "truncate":
            try:
                self.sock.sendall(wire[: max(1, len(wire) // 2)])
            except OSError:
                pass
            self._abort()
            raise TransportError("injected fault: frame truncated mid-send")
        if spec.kind == "drop":
            self._abort()
            raise TransportError("injected fault: connection dropped")
        raise TransportError(f"unknown injected fault {spec.kind!r}")

    def _abort(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass


class FramedReceiver:
    """Parses frames off a connected socket.

    Maintains a reusable receive buffer: header fields are decoded in
    place with ``unpack_from`` (no per-field allocations) and payload
    bytes beyond what is already buffered are read directly into their
    destination buffer with ``recv_into``.  Because the buffer may hold
    read-ahead bytes, callers multiplexing on the raw socket (e.g. the
    resilient sender's ACK collection) must consult :attr:`pending`
    before trusting ``select`` — a whole frame may already be buffered
    in userspace.

    Mirrors :class:`FramedSender`'s counters on the ``rx`` direction.
    """

    def __init__(self, sock: socket.socket, *, telemetry=None) -> None:
        self.sock = sock
        self.telemetry = telemetry
        self._buf = bytearray()
        self._pos = 0
        self._scratch = bytearray(_READ_SIZE)

    @property
    def pending(self) -> bool:
        """True when read-ahead bytes are buffered in userspace."""
        return len(self._buf) > self._pos

    def feed(self, data: bytes | bytearray | memoryview) -> None:
        """Append bytes obtained elsewhere (event-loop / non-blocking use).

        The event-loop receiver plane owns the ``recv`` syscalls (its
        selector decides *when* to read); the bytes it gets are fed here
        and parsed with :meth:`next_frame`.  Mixing :meth:`feed` with
        the blocking :meth:`recv` is safe — both consume the same
        buffer.
        """
        if self._pos:
            # Compact consumed bytes before growing the buffer.
            del self._buf[: self._pos]
            self._pos = 0
        self._buf += data

    def next_frame(self) -> Frame | None:
        """Parse one frame from buffered bytes, without touching the socket.

        Returns None when the buffer holds only a partial frame — the
        bytes stay put and parsing resumes exactly where it left off on
        the next :meth:`feed` (partial-frame resume).  Raises
        :class:`FrameIntegrityError` on a bad magic / oversized header
        or a checksum mismatch, same as :meth:`recv`.
        """
        have = len(self._buf) - self._pos
        if have < _HEADER.size:
            return None
        magic, sid_len = _HEADER.unpack_from(self._buf, self._pos)
        if magic != MAGIC:
            raise FrameIntegrityError(f"bad frame magic 0x{magic:08X}")
        if sid_len > MAX_STREAM_ID:
            raise FrameIntegrityError(
                f"stream id length {sid_len} exceeds limit"
            )
        head = _HEADER.size + sid_len + _BODY.size
        if have < head:
            return None
        index, flags, orig_len, checksum, length = _BODY.unpack_from(
            self._buf, self._pos + _HEADER.size + sid_len
        )
        if length > MAX_FRAME_PAYLOAD:
            raise FrameIntegrityError(
                f"frame payload {length} exceeds limit"
            )
        traced = bool(flags & FLAG_TRACED)
        tail = TRACE_TRAILER.size if traced else 0
        if have < head + length + tail:
            return None
        pos = self._pos + _HEADER.size
        sid = bytes(self._buf[pos : pos + sid_len]).decode()
        pos += sid_len + _BODY.size
        if length:
            with memoryview(self._buf) as mv:
                payload = bytes(mv[pos : pos + length])
        else:
            payload = b""
        if zlib.crc32(payload) != checksum:
            raise FrameIntegrityError(
                f"checksum mismatch on {sid}#{index} ({length} bytes)"
            )
        sent_at = 0.0
        if traced:
            (sent_at,) = TRACE_TRAILER.unpack_from(self._buf, pos + length)
        self._pos = pos + length + tail
        if self._pos == len(self._buf):
            del self._buf[:]
            self._pos = 0
        if self.telemetry is not None:
            self.telemetry.record_frame("rx", head + length + tail)
        return Frame(
            stream_id=sid,
            index=index,
            payload=payload,
            compressed=bool(flags & FLAG_COMPRESSED),
            orig_len=orig_len,
            eos=bool(flags & FLAG_EOS),
            ack=bool(flags & FLAG_ACK),
            codec_id=flags >> CODEC_SHIFT,
            traced=traced,
            sent_at=sent_at,
        )

    def _fill(self, need: int, *, eof_ok: bool = False) -> bool:
        """Ensure ``need`` unconsumed bytes are buffered.

        Returns False on a clean EOF at a frame boundary when
        ``eof_ok``; raises :class:`TransportError` on mid-frame EOF.
        """
        while len(self._buf) - self._pos < need:
            try:
                n = self.sock.recv_into(self._scratch)
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if n == 0:
                have = len(self._buf) - self._pos
                if eof_ok and have == 0:
                    return False
                raise TransportError(
                    f"connection closed mid-frame "
                    f"({need - have} of {need} bytes missing)"
                )
            if self._pos:
                # Compact consumed bytes before growing the buffer.
                del self._buf[: self._pos]
                self._pos = 0
            self._buf += memoryview(self._scratch)[:n]
        return True

    def recv(self) -> Frame | None:
        """Next frame, or None on clean connection shutdown."""
        if self.pending:
            # A whole frame may already sit in the read-ahead buffer.
            frame = self.next_frame()
            if frame is not None:
                return frame
        if not self._fill(_HEADER.size, eof_ok=True):
            return None
        magic, sid_len = _HEADER.unpack_from(self._buf, self._pos)
        if magic != MAGIC:
            raise FrameIntegrityError(f"bad frame magic 0x{magic:08X}")
        if sid_len > MAX_STREAM_ID:
            raise FrameIntegrityError(
                f"stream id length {sid_len} exceeds limit"
            )
        self._fill(_HEADER.size + sid_len + _BODY.size)
        self._pos += _HEADER.size
        sid = bytes(self._buf[self._pos : self._pos + sid_len]).decode()
        self._pos += sid_len
        index, flags, orig_len, checksum, length = _BODY.unpack_from(
            self._buf, self._pos
        )
        self._pos += _BODY.size
        if length > MAX_FRAME_PAYLOAD:
            raise FrameIntegrityError(
                f"frame payload {length} exceeds limit"
            )
        payload = self._read_payload(length) if length else b""
        if zlib.crc32(payload) != checksum:
            raise FrameIntegrityError(
                f"checksum mismatch on {sid}#{index} ({length} bytes)"
            )
        traced = bool(flags & FLAG_TRACED)
        sent_at = 0.0
        tail = 0
        if traced:
            tail = TRACE_TRAILER.size
            self._fill(tail)
            (sent_at,) = TRACE_TRAILER.unpack_from(self._buf, self._pos)
            self._pos += tail
        if self._pos == len(self._buf):
            del self._buf[:]
            self._pos = 0
        if self.telemetry is not None:
            self.telemetry.record_frame(
                "rx", _HEADER.size + sid_len + _BODY.size + length + tail
            )
        return Frame(
            stream_id=sid,
            index=index,
            payload=payload,
            compressed=bool(flags & FLAG_COMPRESSED),
            orig_len=orig_len,
            eos=bool(flags & FLAG_EOS),
            ack=bool(flags & FLAG_ACK),
            codec_id=flags >> CODEC_SHIFT,
            traced=traced,
            sent_at=sent_at,
        )

    def _read_payload(self, length: int) -> bytes:
        """Assemble the payload: buffered bytes first, then read the
        remainder straight into the destination (no chunk list/join)."""
        buffered = len(self._buf) - self._pos
        if buffered >= length:
            with memoryview(self._buf) as mv:
                payload = bytes(mv[self._pos : self._pos + length])
            self._pos += length
            return payload
        dest = bytearray(length)
        with memoryview(dest) as mv:
            if buffered:
                mv[:buffered] = memoryview(self._buf)[
                    self._pos : self._pos + buffered
                ]
                self._pos += buffered
            filled = buffered
            while filled < length:
                try:
                    n = self.sock.recv_into(mv[filled:])
                except OSError as exc:
                    raise TransportError(f"recv failed: {exc}") from exc
                if n == 0:
                    raise TransportError(
                        f"connection closed mid-frame "
                        f"({length - filled} of {length} bytes missing)"
                    )
                filled += n
        return bytes(dest)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def socket_pipe(*, telemetry=None) -> tuple[FramedSender, FramedReceiver]:
    """An in-process transport (socketpair) for local pipelines/tests."""
    a, b = socket.socketpair()
    return (
        FramedSender(a, telemetry=telemetry),
        FramedReceiver(b, telemetry=telemetry),
    )


def frames_payload_bytes(frames: Iterable[Frame]) -> int:
    """Total payload bytes across ``frames`` (batch accounting helper)."""
    return sum(len(f.payload) for f in frames)
