"""Framed chunk transport over sockets — the zeroMQ stand-in.

Wire format v2 of one frame (all integers little-endian)::

    magic     u32   0x52435046 ("RCPF")
    stream    u16   stream id length, followed by that many bytes
    index     u32   chunk index within the stream
    flags     u16   bit 0: payload is compressed; bit 1: end-of-stream;
                    bit 2: acknowledgement (v2)
    orig_len  u32   uncompressed payload length
    checksum  u32   xxhash32 of the (possibly compressed) payload
    length    u32   payload length
    payload   bytes

End-of-stream frames carry an empty payload.  v2 adds the ACK frame
(bit 2): an empty-payload frame the *receiver* sends back on the same
socket, echoing the (stream, index, eos) it just accepted — the
resilient sender retains every frame until its ACK arrives and replays
the unacknowledged tail after a reconnect (``docs/resilience.md``).
v1 peers never set bit 2, so data frames parse identically.

The receiver verifies the checksum before handing the frame up; a
mismatch or malformed header raises
:class:`~repro.util.errors.FrameIntegrityError` (fail loudly — a
corrupted scientific chunk must never be silently delivered), while
connection failures raise plain
:class:`~repro.util.errors.TransportError`.

A :class:`~repro.faults.FaultInjector` can be attached to a
:class:`FramedSender`; it is consulted before every frame goes out and
may corrupt the wire bytes, truncate the frame, drop the connection, or
delay the send (chaos testing).
"""

from __future__ import annotations

import socket
import struct
import time
from dataclasses import dataclass

from repro.compress.xxhash import xxhash32
from repro.util.errors import FrameIntegrityError, TransportError

MAGIC = 0x52435046
_HEADER = struct.Struct("<IH")  # magic, stream-id length
_BODY = struct.Struct("<IHIII")  # index, flags, orig_len, checksum, length

FLAG_COMPRESSED = 0x1
FLAG_EOS = 0x2
FLAG_ACK = 0x4

#: Refuse absurd frames before allocating for them.
MAX_FRAME_PAYLOAD = 256 * 1024 * 1024
MAX_STREAM_ID = 4096


@dataclass(frozen=True)
class Frame:
    """One transported chunk (or end-of-stream / ACK marker)."""

    stream_id: str
    index: int
    payload: bytes
    compressed: bool = False
    orig_len: int = 0
    eos: bool = False
    ack: bool = False

    @classmethod
    def end_of_stream(cls, stream_id: str) -> "Frame":
        return cls(stream_id=stream_id, index=0, payload=b"", eos=True)

    @classmethod
    def ack_for(cls, frame: "Frame") -> "Frame":
        """The acknowledgement the receiver returns for ``frame``."""
        return cls(
            stream_id=frame.stream_id,
            index=frame.index,
            payload=b"",
            eos=frame.eos,
            ack=True,
        )

    @property
    def key(self) -> tuple[str, int, bool]:
        """Identity used for ACK matching and receiver-side dedup."""
        return (self.stream_id, self.index, self.eos)


class FramedSender:
    """Serializes frames onto a connected socket.

    With a :class:`~repro.telemetry.Telemetry` attached, every frame
    bumps ``transport_frames_total{direction="tx"}`` and
    ``transport_bytes_total{direction="tx"}`` (header + payload — the
    actual wire footprint).
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        telemetry=None,
        injector=None,
        connection: int = 0,
    ) -> None:
        self.sock = sock
        self.telemetry = telemetry
        #: Optional :class:`~repro.faults.FaultInjector` (chaos testing).
        self.injector = injector
        #: Connection index reported to the injector.
        self.connection = connection

    def send(self, frame: Frame) -> None:
        sid = frame.stream_id.encode()
        if len(sid) > MAX_STREAM_ID:
            raise TransportError(f"stream id too long ({len(sid)} bytes)")
        if len(frame.payload) > MAX_FRAME_PAYLOAD:
            raise TransportError(
                f"frame payload {len(frame.payload)} exceeds limit"
            )
        flags = (
            (FLAG_COMPRESSED if frame.compressed else 0)
            | (FLAG_EOS if frame.eos else 0)
            | (FLAG_ACK if frame.ack else 0)
        )
        parts = [
            _HEADER.pack(MAGIC, len(sid)),
            sid,
            _BODY.pack(
                frame.index,
                flags,
                frame.orig_len,
                xxhash32(frame.payload),
                len(frame.payload),
            ),
            frame.payload,
        ]
        wire = b"".join(parts)
        if self.injector is not None:
            spec = self.injector.on_send(frame, self.connection)
            if spec is not None:
                wire = self._sabotage(spec, wire)
        try:
            self.sock.sendall(wire)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        if self.telemetry is not None:
            self.telemetry.record_frame("tx", len(wire))

    def _sabotage(self, spec, wire: bytes) -> bytes:
        """Apply one injected fault; returns the (possibly mangled) wire
        bytes, or raises :class:`TransportError` for connection faults."""
        if spec.kind == "delay":
            time.sleep(spec.delay)
            return wire
        if spec.kind == "corrupt":
            mangled = bytearray(wire)
            mangled[-1] ^= 0xFF  # payload tail, or checksum when empty
            return bytes(mangled)
        if spec.kind == "truncate":
            try:
                self.sock.sendall(wire[: max(1, len(wire) // 2)])
            except OSError:
                pass
            self._abort()
            raise TransportError("injected fault: frame truncated mid-send")
        if spec.kind == "drop":
            self._abort()
            raise TransportError("injected fault: connection dropped")
        raise TransportError(f"unknown injected fault {spec.kind!r}")

    def _abort(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass


class FramedReceiver:
    """Parses frames off a connected socket.

    Mirrors :class:`FramedSender`'s counters on the ``rx`` direction.
    """

    def __init__(self, sock: socket.socket, *, telemetry=None) -> None:
        self.sock = sock
        self.telemetry = telemetry

    def _read_exact(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                part = self.sock.recv(min(remaining, 1 << 20))
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not part:
                raise TransportError(
                    f"connection closed mid-frame ({remaining} of {n} bytes missing)"
                )
            chunks.append(part)
            remaining -= len(part)
        return b"".join(chunks)

    def recv(self) -> Frame | None:
        """Next frame, or None on clean connection shutdown."""
        try:
            head = self.sock.recv(_HEADER.size, socket.MSG_WAITALL)
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not head:
            return None
        if len(head) < _HEADER.size:
            head += self._read_exact(_HEADER.size - len(head))
        magic, sid_len = _HEADER.unpack(head)
        if magic != MAGIC:
            raise FrameIntegrityError(f"bad frame magic 0x{magic:08X}")
        if sid_len > MAX_STREAM_ID:
            raise FrameIntegrityError(
                f"stream id length {sid_len} exceeds limit"
            )
        sid = self._read_exact(sid_len).decode()
        index, flags, orig_len, checksum, length = _BODY.unpack(
            self._read_exact(_BODY.size)
        )
        if length > MAX_FRAME_PAYLOAD:
            raise FrameIntegrityError(
                f"frame payload {length} exceeds limit"
            )
        payload = self._read_exact(length) if length else b""
        if xxhash32(payload) != checksum:
            raise FrameIntegrityError(
                f"checksum mismatch on {sid}#{index} ({length} bytes)"
            )
        if self.telemetry is not None:
            self.telemetry.record_frame(
                "rx", _HEADER.size + sid_len + _BODY.size + length
            )
        return Frame(
            stream_id=sid,
            index=index,
            payload=payload,
            compressed=bool(flags & FLAG_COMPRESSED),
            orig_len=orig_len,
            eos=bool(flags & FLAG_EOS),
            ack=bool(flags & FLAG_ACK),
        )

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def socket_pipe(*, telemetry=None) -> tuple[FramedSender, FramedReceiver]:
    """An in-process transport (socketpair) for local pipelines/tests."""
    a, b = socket.socketpair()
    return (
        FramedSender(a, telemetry=telemetry),
        FramedReceiver(b, telemetry=telemetry),
    )
