"""Worker-thread bodies for the live pipeline.

Each function is the target of one ``threading.Thread`` and mirrors a
Figure-2 stage: pull from the upstream queue, work, push downstream,
close on end-of-stream.  Failures are captured into the shared
:class:`StageStats` rather than dying silently inside a thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.compress.codec import Codec
from repro.data.chunking import Chunk
from repro.live.affinity import pin_current_thread
from repro.live.queues import ClosableQueue, Closed
from repro.live.transport import Frame, FramedReceiver, FramedSender


@dataclass
class StageStats:
    """Thread-safe per-stage accounting."""

    name: str
    chunks: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    busy_seconds: float = 0.0
    errors: list[str] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, bytes_in: int, bytes_out: int, elapsed: float) -> None:
        with self._lock:
            self.chunks += 1
            self.bytes_in += bytes_in
            self.bytes_out += bytes_out
            self.busy_seconds += elapsed

    def fail(self, message: str) -> None:
        with self._lock:
            self.errors.append(message)


def _maybe_pin(cpus: list[int] | None) -> None:
    if cpus:
        pin_current_thread(cpus)


def feeder(
    source: Iterable[Chunk],
    outq: ClosableQueue,
    stats: StageStats,
    cpus: list[int] | None = None,
) -> None:
    """Pushes source chunks into the pipeline (the data generator)."""
    _maybe_pin(cpus)
    try:
        for chunk in source:
            t0 = time.perf_counter()
            payload = chunk.payload
            if payload is None:
                raise ValueError(f"live chunks need payloads ({chunk.stream_id}#{chunk.index})")
            outq.put(chunk)
            stats.record(len(payload), len(payload), time.perf_counter() - t0)
    except Exception as exc:  # noqa: BLE001 - thread boundary
        stats.fail(f"feeder: {exc!r}")
    finally:
        outq.close()


def compressor(
    codec: Codec,
    inq: ClosableQueue,
    outq: ClosableQueue,
    stats: StageStats,
    cpus: list[int] | None = None,
) -> None:
    """{C}: compress chunk payloads."""
    _maybe_pin(cpus)
    try:
        while True:
            try:
                chunk = inq.get()
            except Closed:
                break
            t0 = time.perf_counter()
            chunk.wire_payload = codec.compress(chunk.payload)
            stats.record(
                len(chunk.payload),
                len(chunk.wire_payload),
                time.perf_counter() - t0,
            )
            outq.put(chunk)
    except Exception as exc:  # noqa: BLE001
        stats.fail(f"compressor: {exc!r}")
    finally:
        outq.close()


def sender(
    transport: FramedSender,
    inq: ClosableQueue,
    stats: StageStats,
    *,
    compressed: bool,
    cpus: list[int] | None = None,
) -> None:
    """{S}: one TCP connection's sending thread."""
    _maybe_pin(cpus)
    stream_ids: set[str] = set()
    try:
        while True:
            try:
                chunk = inq.get()
            except Closed:
                break
            payload = chunk.wire_payload if compressed else chunk.payload
            t0 = time.perf_counter()
            transport.send(
                Frame(
                    stream_id=chunk.stream_id,
                    index=chunk.index,
                    payload=payload,
                    compressed=compressed,
                    orig_len=len(chunk.payload),
                )
            )
            stream_ids.add(chunk.stream_id)
            stats.record(len(payload), len(payload), time.perf_counter() - t0)
        for sid in stream_ids or {"-"}:
            transport.send(Frame.end_of_stream(sid))
    except Exception as exc:  # noqa: BLE001
        stats.fail(f"sender: {exc!r}")
    finally:
        transport.close()


def receiver(
    transport: FramedReceiver,
    outq: ClosableQueue,
    stats: StageStats,
    cpus: list[int] | None = None,
) -> None:
    """{R}: one TCP connection's receiving thread."""
    _maybe_pin(cpus)
    try:
        while True:
            t0 = time.perf_counter()
            frame = transport.recv()
            if frame is None or frame.eos:
                break
            stats.record(len(frame.payload), len(frame.payload), time.perf_counter() - t0)
            outq.put(frame)
    except Exception as exc:  # noqa: BLE001
        stats.fail(f"receiver: {exc!r}")
    finally:
        outq.close()


def decompressor(
    codec: Codec,
    inq: ClosableQueue,
    stats: StageStats,
    sink: Callable[[str, int, bytes], None],
    cpus: list[int] | None = None,
) -> None:
    """{D}: decompress received frames and deliver to the sink."""
    _maybe_pin(cpus)
    try:
        while True:
            try:
                frame = inq.get()
            except Closed:
                break
            t0 = time.perf_counter()
            data = (
                codec.decompress(frame.payload)
                if frame.compressed
                else frame.payload
            )
            if frame.orig_len and len(data) != frame.orig_len:
                raise ValueError(
                    f"{frame.stream_id}#{frame.index}: decompressed to "
                    f"{len(data)} bytes, expected {frame.orig_len}"
                )
            stats.record(len(frame.payload), len(data), time.perf_counter() - t0)
            sink(frame.stream_id, frame.index, data)
    except Exception as exc:  # noqa: BLE001
        stats.fail(f"decompressor: {exc!r}")
