"""Worker-thread bodies for the live pipeline.

Each function is the target of one ``threading.Thread`` and mirrors a
Figure-2 stage: pull from the upstream queue, work, push downstream,
close on end-of-stream.  Failures are captured into the shared
:class:`StageStats` rather than dying silently inside a thread.

Per-chunk timing goes through the shared telemetry span idiom
(:func:`repro.telemetry.stage_span`): one context manager both feeds
the legacy :class:`StageStats` and — when a
:class:`~repro.telemetry.Telemetry` is attached — records a wall-clock
span plus the canonical pipeline counters, so a live run produces the
same observability surface as a simulated one.
"""

from __future__ import annotations

import select
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterable, Sequence

from repro.compress.codec import Codec, decompressor_for, wire_codec_name
from repro.data.chunking import Chunk
from repro.faults.policy import RetryPolicy
from repro.live.affinity import pin_current_thread
from repro.live.queues import ClosableQueue, Closed
from repro.live.stageset import Knobs
from repro.live.transport import Frame, FramedReceiver, FramedSender
from repro.telemetry.spans import stage_span
from repro.util.errors import QueueTimeout, TransportError

#: How often a stoppable worker wakes from an idle queue to re-check
#: its stop event (seconds) — bounds scale-down/respawn latency.
STOP_POLL_SECONDS = 0.1


@dataclass
class StageStats:
    """Thread-safe per-stage accounting."""

    name: str
    chunks: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    busy_seconds: float = 0.0
    errors: list[str] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, bytes_in: int, bytes_out: int, elapsed: float) -> None:
        with self._lock:
            self.chunks += 1
            self.bytes_in += bytes_in
            self.bytes_out += bytes_out
            self.busy_seconds += elapsed

    def fail(self, message: str) -> None:
        with self._lock:
            self.errors.append(message)


def _maybe_pin(
    cpus: list[int] | None, role: str | None = None, telemetry=None
) -> None:
    if cpus:
        pin_current_thread(cpus, role=role, telemetry=telemetry)


def _finish(
    stats: StageStats,
    telemetry,
    stage: str,
    stream_id: str,
    bytes_in: int,
    bytes_out: int,
    elapsed: float,
) -> None:
    """Book one chunk into the legacy stats and the shared telemetry."""
    stats.record(bytes_in, bytes_out, elapsed)
    if telemetry is not None:
        telemetry.record_chunk(stage, stream_id, bytes_in)


def _record_codec(telemetry, stage: str, stream_id: str, name: str) -> None:
    """Bump the codec-choice counter when the telemetry supports it."""
    if telemetry is not None:
        record = getattr(telemetry, "record_codec", None)
        if record is not None:
            record(stage, stream_id, name)


def feeder(
    source: Iterable[Chunk],
    outq: ClosableQueue,
    stats: StageStats,
    cpus: list[int] | None = None,
    *,
    telemetry=None,
    batch_frames: int = 1,
    knobs: Knobs | None = None,
    sampler=None,
) -> None:
    """Pushes source chunks into the pipeline (the data generator).

    ``batch_frames > 1`` groups chunks into one ``put_many`` handoff
    (one lock round-trip, one span); 1 keeps the historical
    chunk-at-a-time behaviour.  ``knobs`` makes the knob hot-swappable.

    ``sampler`` (a :class:`repro.trace.HeadSampler`) is where flow
    tracing begins: the feeder assigns each head-sampled chunk its
    trace context before the chunk enters the pipeline, and every
    downstream hop merely forwards the mark.
    """
    _maybe_pin(cpus, "feed", telemetry)
    track = threading.current_thread().name
    it = iter(source)
    try:
        while True:
            bf = knobs.batch_frames if knobs is not None else batch_frames
            batch = list(islice(it, bf))
            if not batch:
                break
            head = batch[0]
            for chunk in batch:
                if chunk.payload is None:
                    raise ValueError(
                        f"live chunks need payloads "
                        f"({chunk.stream_id}#{chunk.index})"
                    )
                if sampler is not None and chunk.trace is None:
                    chunk.trace = sampler.sample_chunk(
                        chunk.stream_id, chunk.index
                    )
                    # Attribute the batch span to the sampled chunk, so
                    # a traced chunk's journey starts at the feeder even
                    # when it is not the batch head.
                    if chunk.trace is not None and head.trace is None:
                        head = chunk
            with stage_span(
                telemetry, "feed", stream_id=head.stream_id,
                chunk_id=head.index, track=track,
            ) as sp:
                done = 0
                while done < len(batch):
                    done += outq.put_many(batch[done:])
            per_chunk = sp.duration / len(batch)
            for chunk in batch:
                n = len(chunk.payload)
                _finish(stats, telemetry, "feed", chunk.stream_id,
                        n, n, per_chunk)
    except Exception as exc:  # noqa: BLE001 - thread boundary
        stats.fail(f"feeder: {exc!r}")
    finally:
        outq.close()


def compressor(
    codec: Codec,
    inq: ClosableQueue,
    outq: ClosableQueue,
    stats: StageStats,
    cpus: list[int] | None = None,
    *,
    telemetry=None,
    batch_frames: int = 1,
    knobs: Knobs | None = None,
    stop: threading.Event | None = None,
) -> None:
    """{C}: compress chunk payloads.

    ``batch_frames > 1`` drains up to that many chunks per queue lock
    round-trip and forwards them with one :meth:`put_many`; each chunk
    is still compressed (and accounted) individually.

    ``knobs`` makes ``batch_frames`` hot-swappable (re-read before
    every drain, lock-free); ``stop`` makes the worker stoppable at a
    batch boundary — set between drains, it exits cleanly and its
    ``finally``-close balances the downstream producer count, which is
    how the controller scales this stage down without losing chunks.
    """
    _maybe_pin(cpus, "compress", telemetry)
    track = threading.current_thread().name
    try:
        while True:
            if stop is not None and stop.is_set():
                break
            bf = knobs.batch_frames if knobs is not None else batch_frames
            try:
                if stop is not None:
                    chunks = inq.get_many(bf, timeout=STOP_POLL_SECONDS)
                else:
                    chunks = inq.get_many(bf)
            except QueueTimeout:
                continue
            except Closed:
                break
            for chunk in chunks:
                with stage_span(
                    telemetry, "compress", stream_id=chunk.stream_id,
                    chunk_id=chunk.index, track=track,
                ) as sp:
                    chunk.wire_payload, chunk.codec_id = (
                        codec.compress_with_id(chunk.payload)
                    )
                _finish(stats, telemetry, "compress", chunk.stream_id,
                        len(chunk.payload), len(chunk.wire_payload),
                        sp.duration)
                _record_codec(
                    telemetry, "compress", chunk.stream_id,
                    wire_codec_name(chunk.codec_id)
                    if chunk.codec_id
                    else codec.name,
                )
            outq.put_many(chunks)
    except Exception as exc:  # noqa: BLE001
        stats.fail(f"compressor: {exc!r}")
    finally:
        outq.close()


def _chunk_frame(chunk: Chunk, *, compressed: bool) -> Frame:
    payload = chunk.wire_payload if compressed else chunk.payload
    traced = chunk.trace is not None
    return Frame(
        stream_id=chunk.stream_id,
        index=chunk.index,
        payload=payload,
        compressed=compressed,
        orig_len=len(chunk.payload),
        codec_id=chunk.codec_id if compressed else 0,
        traced=traced,
        # Frames are built in the sender thread immediately before
        # transmit, so this stamp is the start of the wire interval
        # (it deliberately includes the send syscall — overlap is
        # documented in repro.trace).
        sent_at=time.perf_counter() if traced else 0.0,
    )


def _batch_head(chunks: Sequence) -> "Chunk":
    """The chunk a batch span is attributed to: the first traced one
    (so a sampled chunk's journey has no batch-identity holes), else
    the batch head."""
    for chunk in chunks:
        if chunk.trace is not None:
            return chunk
    return chunks[0]


def _note_wire(telemetry, frame: Frame, *, arrived: float | None = None) -> None:
    """Record the wire span + clock-align sample of one traced frame.

    The span runs from the sender's trailer stamp to arrival on the
    receiver's clock.  On a loopback pipeline both stamps share one
    monotonic clock so the interval is exact; across hosts the pair
    also feeds the telemetry's :class:`~repro.trace.ClockAlign`
    estimator, whose offset bound the ``/trace`` endpoint reports.
    """
    if telemetry is None or not frame.traced:
        return
    now = arrived if arrived is not None else time.perf_counter()
    align = getattr(telemetry, "trace_align", None)
    if align is not None:
        align.observe(frame.sent_at, now)
    start = min(frame.sent_at, now) if frame.sent_at > 0 else now
    record = getattr(telemetry, "record_span", None)
    if record is not None:
        record(
            "wire", start, now,
            stream_id=frame.stream_id, chunk_id=frame.index,
        )


def sender(
    transport: FramedSender,
    inq: ClosableQueue,
    stats: StageStats,
    *,
    compressed: bool,
    cpus: list[int] | None = None,
    telemetry=None,
    batch_frames: int = 1,
    batch_linger: float = 0.0,
    knobs: Knobs | None = None,
) -> None:
    """{S}: one TCP connection's sending thread.

    With ``batch_frames > 1`` the sender coalesces: it drains up to
    that many chunks from the queue in one lock round-trip (lingering
    ``batch_linger`` seconds to top the batch up) and transmits them
    with one vectored :meth:`~repro.live.transport.FramedSender.send_many`.
    The wire bytes are identical to ``batch_frames=1``; only the
    syscall and lock counts change.  The batch flushes on size, on the
    linger timeout, and on queue close (the final partial batch is
    sent before the EOS frames).  ``knobs`` makes ``batch_frames`` and
    ``batch_linger`` hot-swappable (re-read before every drain).
    """
    _maybe_pin(cpus, "send", telemetry)
    track = threading.current_thread().name
    stream_ids: set[str] = set()
    try:
        while True:
            bf = knobs.batch_frames if knobs is not None else batch_frames
            lg = knobs.batch_linger if knobs is not None else batch_linger
            try:
                chunks = inq.get_many(bf, linger=lg)
            except Closed:
                break
            frames = [_chunk_frame(c, compressed=compressed) for c in chunks]
            head = _batch_head(chunks)
            with stage_span(
                telemetry, "send", stream_id=head.stream_id,
                chunk_id=head.index, track=track,
            ) as sp:
                transport.send_many(frames)
            per_chunk = sp.duration / len(chunks)
            for frame in frames:
                stream_ids.add(frame.stream_id)
                _finish(stats, telemetry, "send", frame.stream_id,
                        len(frame.payload), len(frame.payload), per_chunk)
        for sid in stream_ids or {"-"}:
            transport.send(Frame.end_of_stream(sid))
    except Exception as exc:  # noqa: BLE001
        stats.fail(f"sender: {exc!r}")
    finally:
        transport.close()


def resilient_sender(
    transport: FramedSender,
    reconnect: Callable[[], FramedSender],
    inq: ClosableQueue,
    stats: StageStats,
    *,
    compressed: bool,
    retry: RetryPolicy,
    drain_timeout: float = 30.0,
    cpus: list[int] | None = None,
    telemetry=None,
    batch_frames: int = 1,
    batch_linger: float = 0.0,
) -> None:
    """{S} with recovery: one TCP connection's at-least-once sender.

    Every frame is retained until the receiver's ACK comes back on the
    same socket; a send failure (or a dead connection discovered while
    draining ACKs) triggers a reconnect with capped exponential backoff
    (``retry``) followed by an in-order replay of the unacknowledged
    tail.  The receiver deduplicates on (stream, index), which turns
    at-least-once delivery into exactly-once at the sink.

    ``reconnect`` must return a fresh connected :class:`FramedSender`
    (same telemetry/injector wiring as ``transport``); it is only
    called after the initial connection dies.  When no faults fire the
    hot path is one ``send`` plus a zero-timeout ``select`` per chunk.
    """
    _maybe_pin(cpus, "send", telemetry)
    track = threading.current_thread().name
    unacked: "OrderedDict[tuple[str, int, bool], Frame]" = OrderedDict()
    state: dict = {"tx": transport, "rx": FramedReceiver(transport.sock)}

    def _drop_connection() -> None:
        tx = state["tx"]
        if tx is not None:
            try:
                tx.sock.close()
            except OSError:
                pass
        state["tx"] = state["rx"] = None

    def _reconnect() -> None:
        last: Exception | None = None
        for attempt in range(retry.max_attempts):
            if attempt:
                # Back off only *between* failed attempts — when the
                # endpoint is immediately reachable, attempt 0 must not
                # add dead time to the recovery path.
                time.sleep(retry.backoff(attempt - 1))
            if telemetry is not None:
                telemetry.record_retry()
                telemetry.emit_event(
                    "transport_retry",
                    f"reconnect attempt {attempt + 1}/{retry.max_attempts} "
                    f"on {track}",
                    severity="warning",
                    worker=track,
                    attempt=attempt + 1,
                    unacked=len(unacked),
                )
            try:
                tx = reconnect()
                state["tx"], state["rx"] = tx, FramedReceiver(tx.sock)
                for frame in list(unacked.values()):
                    tx.send(frame)
                    if telemetry is not None:
                        telemetry.record_redelivery()
                return
            except (TransportError, OSError) as exc:
                last = exc
                _drop_connection()
        raise TransportError(
            f"reconnect gave up after {retry.max_attempts} attempts: {last}"
        )

    def _collect_acks(timeout: float) -> None:
        """Pop acknowledged frames; raises when the connection is dead."""
        tx, rx = state["tx"], state["rx"]
        if tx is None:
            raise TransportError("not connected")
        while unacked:
            # The buffered receiver may already hold a whole ACK frame
            # in userspace — select() only sees the kernel buffer.
            if not rx.pending:
                try:
                    ready, _, _ = select.select([tx.sock], [], [], timeout)
                except (OSError, ValueError) as exc:
                    raise TransportError(f"connection lost: {exc}") from exc
                if not ready:
                    return
            frame = rx.recv()
            if frame is None:
                raise TransportError("connection closed while awaiting acks")
            if frame.ack:
                unacked.pop(frame.key, None)
            timeout = 0.0

    def _deliver_many(frames: Sequence[Frame]) -> None:
        """Transmit a batch (or queue for replay); never loses frames."""
        for frame in frames:
            unacked[frame.key] = frame
        while True:
            tx = state["tx"]
            if tx is None:
                _reconnect()  # replays unacked, including these frames
                return
            try:
                tx.send_many(frames)
                return
            except (TransportError, OSError):
                _drop_connection()

    def _deliver(frame: Frame) -> None:
        _deliver_many((frame,))

    stream_ids: set[str] = set()
    try:
        while True:
            try:
                chunks = inq.get_many(batch_frames, linger=batch_linger)
            except Closed:
                break
            frames = [_chunk_frame(c, compressed=compressed) for c in chunks]
            head = _batch_head(chunks)
            with stage_span(
                telemetry, "send", stream_id=head.stream_id,
                chunk_id=head.index, track=track,
            ) as sp:
                _deliver_many(frames)
            per_chunk = sp.duration / len(chunks)
            for frame in frames:
                stream_ids.add(frame.stream_id)
                _finish(stats, telemetry, "send", frame.stream_id,
                        len(frame.payload), len(frame.payload), per_chunk)
            try:
                _collect_acks(0.0)
            except (TransportError, OSError):
                _drop_connection()
        for sid in sorted(stream_ids) or ["-"]:
            _deliver(Frame.end_of_stream(sid))
        deadline = time.monotonic() + drain_timeout
        while unacked:
            if time.monotonic() > deadline:
                raise TransportError(
                    f"{len(unacked)} frames unacknowledged after "
                    f"{drain_timeout}s"
                )
            try:
                _collect_acks(0.2)
            except (TransportError, OSError):
                _drop_connection()
                _reconnect()
    except Exception as exc:  # noqa: BLE001 - thread boundary
        stats.fail(f"sender: {exc!r}")
    finally:
        tx = state["tx"]
        if tx is not None:
            tx.close()


def receiver(
    transport: FramedReceiver,
    outq: ClosableQueue,
    stats: StageStats,
    cpus: list[int] | None = None,
    *,
    telemetry=None,
    batch_frames: int = 1,
    knobs: Knobs | None = None,
) -> None:
    """{R}: one TCP connection's receiving thread.

    With ``batch_frames > 1``, after each blocking ``recv`` any whole
    frames already sitting in the receiver's userspace buffer join the
    same ``put_many`` handoff — the downstream mirror of the sender's
    vectored batch, with no extra waiting (buffered frames are free).
    ``knobs`` makes the knob hot-swappable.
    """
    _maybe_pin(cpus, "recv", telemetry)
    track = threading.current_thread().name
    try:
        done = False
        while not done:
            bf = knobs.batch_frames if knobs is not None else batch_frames
            batch: list[Frame] = []
            with stage_span(telemetry, "recv", track=track) as sp:
                frame = transport.recv()
                if frame is None or frame.eos:
                    sp.discard = True
                    done = True
                else:
                    sp.stream_id = frame.stream_id
                    sp.chunk_id = frame.index
                    batch.append(frame)
                    while len(batch) < bf and transport.pending:
                        nxt = transport.recv()
                        if nxt is None or nxt.eos:
                            done = True
                            break
                        batch.append(nxt)
                    # The wire interval ends when the frame came off
                    # the socket — not at sp.start, which is when this
                    # thread began *waiting* for it.
                    arrived = time.perf_counter()
                    tagged = False
                    for f in batch:
                        if f.traced:
                            if not tagged:
                                sp.stream_id = f.stream_id
                                sp.chunk_id = f.index
                                tagged = True
                            _note_wire(telemetry, f, arrived=arrived)
            if not batch:
                break
            per_chunk = sp.duration / len(batch)
            for frame in batch:
                _finish(stats, telemetry, "recv", frame.stream_id,
                        len(frame.payload), len(frame.payload), per_chunk)
            put = 0
            while put < len(batch):
                put += outq.put_many(batch[put:])
    except Exception as exc:  # noqa: BLE001
        stats.fail(f"receiver: {exc!r}")
    finally:
        outq.close()


def decompressor(
    codec: Codec,
    inq: ClosableQueue,
    stats: StageStats,
    sink: Callable[[str, int, bytes], None],
    cpus: list[int] | None = None,
    *,
    telemetry=None,
    batch_frames: int = 1,
    knobs: Knobs | None = None,
    stop: threading.Event | None = None,
) -> None:
    """{D}: decompress received frames and deliver to the sink.

    ``batch_frames > 1`` drains up to that many frames per queue lock
    round-trip; each frame is still decompressed and delivered
    individually (sink ordering is unchanged).  ``knobs`` and ``stop``
    behave as in :func:`compressor` (there is no downstream queue, so
    stopping is just a clean exit between batches).
    """
    _maybe_pin(cpus, "decompress", telemetry)
    track = threading.current_thread().name
    try:
        while True:
            if stop is not None and stop.is_set():
                break
            bf = knobs.batch_frames if knobs is not None else batch_frames
            try:
                if stop is not None:
                    frames = inq.get_many(bf, timeout=STOP_POLL_SECONDS)
                else:
                    frames = inq.get_many(bf)
            except QueueTimeout:
                continue
            except Closed:
                break
            for frame in frames:
                _decompress_one(
                    codec, frame, stats, sink,
                    telemetry=telemetry, track=track,
                )
    except Exception as exc:  # noqa: BLE001
        stats.fail(f"decompressor: {exc!r}")


def _decompress_one(
    codec: Codec,
    frame: Frame,
    stats: StageStats,
    sink: Callable[[str, int, bytes], None],
    *,
    telemetry,
    track: str,
) -> None:
    with stage_span(
        telemetry, "decompress", stream_id=frame.stream_id,
        chunk_id=frame.index, track=track,
    ) as sp:
        if not frame.compressed:
            data = frame.payload
        else:
            # Frames stamped with a codec wire id decode with *that*
            # codec — how adaptive senders switch per chunk without
            # renegotiating; id 0 falls back to the configured codec.
            dec = decompressor_for(frame.codec_id) if frame.codec_id else codec
            data = dec.decompress(frame.payload)
            _record_codec(
                telemetry, "decompress", frame.stream_id,
                wire_codec_name(frame.codec_id)
                if frame.codec_id
                else codec.name,
            )
    if frame.orig_len and len(data) != frame.orig_len:
        raise ValueError(
            f"{frame.stream_id}#{frame.index}: decompressed to "
            f"{len(data)} bytes, expected {frame.orig_len}"
        )
    _finish(stats, telemetry, "decompress", frame.stream_id,
            len(frame.payload), len(data), sp.duration)
    sink(frame.stream_id, frame.index, data)
