"""Assemble and run a live (real-thread) pipeline on this host.

:class:`LivePipeline` wires Figure 2 with actual OS threads::

    feeder -> [C x compress] -> sendq -> {S_i ==socketpair==> R_i} ->
    wireq -> [D x decompress] -> sink

One socketpair per send/receive pair models the paper's "x TCP
streams"; substitute real TCP sockets by constructing the workers from
:mod:`repro.live.transport` directly (see ``examples/live_pipeline.py``
for the two-process variant).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.compress.codec import Codec, CodecSpec, resolve_codec
from repro.data.chunking import Chunk
from repro.faults.policy import TimeoutPolicy
from repro.live import workers
from repro.live.queues import ClosableQueue
from repro.live.stageset import Knobs, StageSet
from repro.live.transport import socket_pipe
from repro.telemetry.facade import as_telemetry
from repro.util.errors import ValidationError


@dataclass
class LiveConfig:
    """Thread counts and codec for a live run."""

    #: Codec spec string: a registry name (``"zlib"``), a parameterized
    #: spec (``"zlib:level=6"``), or the adaptive selector
    #: (``"adaptive:allowed=zlib|null"``) — see docs/compression.md.
    codec: str = "zlib"
    compress_threads: int = 2
    decompress_threads: int = 2
    connections: int = 1
    queue_capacity: int = 8
    #: Optional stage -> CPU list affinity hints (best-effort).
    affinity: dict[str, list[int]] = field(default_factory=dict)
    #: Frames coalesced per queue drain / vectored send (1 = today's
    #: one-at-a-time behaviour; wire bytes are identical either way).
    batch_frames: int = 1
    #: Extra seconds a sender waits to top a partial batch up before
    #: flushing (0 = flush whatever one drain returned).
    batch_linger: float = 0.0
    #: Fail the run if any chunk is missing or duplicated at the sink.
    verify: bool = True
    #: All timeout knobs in one place (see repro.faults.TimeoutPolicy).
    timeouts: TimeoutPolicy | None = None
    #: "thread" keeps today's in-process pipeline; "process" runs one
    #: compressor *process* per NUMA domain over shared-memory rings
    #: (see :mod:`repro.mp` and docs/multiprocess.md).
    execution_mode: str = "thread"
    #: Compressor domains in process mode (0 = one per compress thread
    #: the plan asked for).
    process_domains: int = 0
    #: Records each shared-memory ring buffers (per domain, per
    #: direction) — the process-mode analogue of ``queue_capacity``.
    ring_capacity: int = 8
    #: Slot size of each ring; must fit one packed chunk record.
    ring_slot_bytes: int = 1 << 20
    #: multiprocessing start method for worker processes ("spawn" is
    #: the portable default; "fork" starts faster where it is safe).
    mp_start_method: str = "spawn"
    #: How a ReceiverServer lowered from this config multiplexes its
    #: connections: "eventloop" (selector-driven reactor shards) or
    #: "threads" (legacy one thread per accepted socket).
    receiver_mode: str = "eventloop"
    #: Reactor shards in eventloop mode (0 = auto: one per core the
    #: receiver's NUMA domain offers).
    receiver_shards: int = 0
    #: Flow-trace head sampling: every Nth chunk per stream gets a
    #: trace context at the feeder (0 = tracing off; requires
    #: telemetry to be attached to take effect).
    trace_sample: int = 0
    #: Max traces started per stream (0 = unbounded).
    trace_per_stream_cap: int = 0

    def __post_init__(self) -> None:
        for name in ("compress_threads", "decompress_threads", "connections",
                     "batch_frames"):
            if getattr(self, name) < 1:
                raise ValidationError(f"{name} must be >= 1")
        if self.batch_linger < 0:
            raise ValidationError("batch_linger must be >= 0")
        if self.execution_mode not in ("thread", "process"):
            raise ValidationError(
                f"execution_mode must be 'thread' or 'process', "
                f"not {self.execution_mode!r}"
            )
        if self.process_domains < 0:
            raise ValidationError("process_domains must be >= 0")
        if self.ring_capacity < 1:
            raise ValidationError("ring_capacity must be >= 1")
        if self.mp_start_method not in ("spawn", "fork", "forkserver"):
            raise ValidationError(
                f"unknown mp_start_method {self.mp_start_method!r}"
            )
        if self.receiver_mode not in ("eventloop", "threads"):
            raise ValidationError(
                f"receiver_mode must be 'eventloop' or 'threads', "
                f"not {self.receiver_mode!r}"
            )
        if self.receiver_shards < 0:
            raise ValidationError("receiver_shards must be >= 0")
        if self.trace_sample < 0:
            raise ValidationError("trace_sample must be >= 0")
        if self.trace_per_stream_cap < 0:
            raise ValidationError("trace_per_stream_cap must be >= 0")
        self.timeouts = self.timeouts or TimeoutPolicy()


@dataclass
class LiveReport:
    """Outcome of one live pipeline run.

    Implements the shared result protocol
    (:class:`repro.core.results.RunResult`): ``ok``, ``summary()``,
    ``to_dict()``.
    """

    chunks: int
    bytes_in: int
    wire_bytes: int
    bytes_out: int
    elapsed: float
    stage_stats: dict[str, workers.StageStats]
    errors: list[str]
    #: Unified metrics/spans for the run (None when telemetry was off).
    telemetry: "object | None" = None

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def compression_ratio(self) -> float:
        return self.bytes_in / self.wire_bytes if self.wire_bytes else 1.0

    @property
    def goodput_MBps(self) -> float:
        return self.bytes_out / self.elapsed / 1e6 if self.elapsed > 0 else 0.0

    def summary(self) -> str:
        lines = [
            f"chunks={self.chunks} in={self.bytes_in / 1e6:.1f}MB "
            f"wire={self.wire_bytes / 1e6:.1f}MB out={self.bytes_out / 1e6:.1f}MB",
            f"ratio={self.compression_ratio:.2f} elapsed={self.elapsed:.2f}s "
            f"goodput={self.goodput_MBps:.1f} MB/s",
        ]
        for name, s in self.stage_stats.items():
            lines.append(
                f"  {name}: chunks={s.chunks} busy={s.busy_seconds:.2f}s"
            )
        if self.errors:
            lines.append("ERRORS: " + "; ".join(self.errors))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "chunks": self.chunks,
            "bytes_in": self.bytes_in,
            "wire_bytes": self.wire_bytes,
            "bytes_out": self.bytes_out,
            "elapsed": self.elapsed,
            "compression_ratio": self.compression_ratio,
            "goodput_MBps": self.goodput_MBps,
            "stages": {
                name: {
                    "chunks": s.chunks,
                    "bytes_in": s.bytes_in,
                    "bytes_out": s.bytes_out,
                    "busy_seconds": s.busy_seconds,
                }
                for name, s in self.stage_stats.items()
            },
            "errors": list(self.errors),
        }


class LivePipeline:
    """Single-host pipeline over in-process socketpairs.

    Pass a :class:`~repro.telemetry.Telemetry` to collect wall-clock
    spans, stage counters, queue-occupancy gauges and transport totals
    for the run; it is echoed back on the :class:`LiveReport`.
    """

    def __init__(
        self,
        config: LiveConfig | None = None,
        codec: "Codec | CodecSpec | str | None" = None,
        *,
        telemetry: "bool | object" = False,
        controller: "object | None" = None,
    ):
        self.config = config or LiveConfig()
        self.codec = resolve_codec(
            codec if codec is not None else self.config.codec
        )
        self.telemetry = as_telemetry(telemetry)
        #: Optional :class:`repro.control.Controller`; bound to this
        #: run's stage sets and started/stopped around :meth:`run`.
        self.controller = controller

    def run(
        self,
        source: Iterable[Chunk],
        sink: Callable[[str, int, bytes], None] | None = None,
        *,
        telemetry: "bool | object | None" = None,
    ) -> LiveReport:
        """Stream every chunk of ``source`` through the full pipeline.

        ``telemetry`` follows the blessed shape (``docs/telemetry.md``):
        ``True`` builds a fresh :class:`~repro.telemetry.Telemetry`,
        an instance is shared, ``False`` disables collection for this
        run, and ``None`` (default) inherits the pipeline's own.
        """
        cfg = self.config
        delivered: dict[tuple[str, int], int] = {}
        delivered_lock = threading.Lock()
        expected: dict[tuple[str, int], int] = {}
        bytes_out = [0]

        def default_sink(stream_id: str, index: int, data: bytes) -> None:
            with delivered_lock:
                delivered[(stream_id, index)] = (
                    delivered.get((stream_id, index), 0) + 1
                )
                bytes_out[0] += len(data)

        user_sink = sink

        def counting_sink(stream_id: str, index: int, data: bytes) -> None:
            default_sink(stream_id, index, data)
            if user_sink is not None:
                user_sink(stream_id, index, data)

        def tracked_source() -> Iterable[Chunk]:
            for chunk in source:
                if chunk.payload is None:
                    raise ValidationError("live pipeline chunks need payloads")
                expected[(chunk.stream_id, chunk.index)] = len(chunk.payload)
                yield chunk

        tel = self.telemetry if telemetry is None else as_telemetry(telemetry)
        if tel is not None:
            tel.thread_counts.update(
                {
                    "feed": 1,
                    "compress": cfg.compress_threads,
                    "send": cfg.connections,
                    "recv": cfg.connections,
                    "decompress": cfg.decompress_threads,
                }
            )
        stats = {
            name: workers.StageStats(name)
            for name in ("feed", "compress", "send", "recv", "decompress")
        }
        rawq = ClosableQueue(
            cfg.queue_capacity, producers=1, name="rawq", telemetry=tel
        )
        sendq = ClosableQueue(
            cfg.queue_capacity,
            producers=cfg.compress_threads,
            name="sendq",
            telemetry=tel,
        )
        wireq = ClosableQueue(
            cfg.queue_capacity,
            producers=cfg.connections,
            name="wireq",
            telemetry=tel,
        )

        aff = cfg.affinity
        knobs = Knobs(
            batch_frames=cfg.batch_frames, batch_linger=cfg.batch_linger
        )

        def _thread(name: str, target, *args, **kwargs) -> threading.Thread:
            return threading.Thread(
                target=target, args=args, kwargs=kwargs, name=name,
                daemon=True,
            )

        sampler = None
        if tel is not None and cfg.trace_sample > 0:
            from repro.trace import HeadSampler

            sampler = HeadSampler(
                cfg.trace_sample, cfg.trace_per_stream_cap
            )

        def feed_factory(i: int, stop: threading.Event) -> threading.Thread:
            return _thread(
                "feeder", workers.feeder, tracked_source(), rawq,
                stats["feed"], aff.get("feed"), telemetry=tel, knobs=knobs,
                sampler=sampler,
            )

        def compress_factory(
            i: int, stop: threading.Event
        ) -> threading.Thread:
            return _thread(
                f"compress-{i}", workers.compressor, self.codec, rawq,
                sendq, stats["compress"], aff.get("compress"),
                telemetry=tel, knobs=knobs, stop=stop,
            )

        def connection_factory(
            i: int, stop: threading.Event
        ) -> list[threading.Thread]:
            tx, rx = socket_pipe(telemetry=tel)
            return [
                _thread(
                    f"send-{i}", workers.sender, tx, sendq, stats["send"],
                    compressed=True, cpus=aff.get("send"), telemetry=tel,
                    knobs=knobs,
                ),
                _thread(
                    f"recv-{i}", workers.receiver, rx, wireq, stats["recv"],
                    aff.get("recv"), telemetry=tel, knobs=knobs,
                ),
            ]

        def decompress_factory(
            i: int, stop: threading.Event
        ) -> threading.Thread:
            return _thread(
                f"decompress-{i}", workers.decompressor, self.codec, wireq,
                stats["decompress"], counting_sink, aff.get("decompress"),
                telemetry=tel, knobs=knobs, stop=stop,
            )

        stages = {
            "feed": StageSet("feed", feed_factory, count=1),
            "compress": StageSet(
                "compress",
                compress_factory,
                count=cfg.compress_threads,
                downstream=sendq,
                scalable=True,
            ),
            "send": StageSet(
                "send", connection_factory, count=cfg.connections
            ),
            "decompress": StageSet(
                "decompress",
                decompress_factory,
                count=cfg.decompress_threads,
                scalable=True,
            ),
        }

        controller = self.controller
        if controller is not None:
            from repro.control.executor import StageSetExecutor

            controller.bind(
                StageSetExecutor(
                    stages,
                    knobs,
                    queue_map={
                        "rawq": "compress",
                        "wireq": "decompress",
                        "sendq": "send",
                    },
                )
            )

        if tel is not None:
            tel.emit_event(
                "run_start",
                "live pipeline starting",
                runner="LivePipeline",
                codec=self.codec.name,
                connections=cfg.connections,
                compress_threads=cfg.compress_threads,
                decompress_threads=cfg.decompress_threads,
            )
        t0 = time.perf_counter()
        errors: list[str] = []
        try:
            for ss in stages.values():
                ss.start()
            if controller is not None:
                controller.start()
            for ss in stages.values():
                errors.extend(ss.join(cfg.timeouts.join))
        finally:
            if controller is not None:
                controller.stop()
        # The controller may have grown a set while earlier sets were
        # being joined; sweep again now that it is stopped so every
        # late-spawned worker is accounted for (re-joining finished
        # threads is free, and duplicate straggler reports dedupe).
        for ss in stages.values():
            errors.extend(ss.join(cfg.timeouts.join))
        errors = list(dict.fromkeys(errors))
        elapsed = time.perf_counter() - t0

        for s in stats.values():
            errors.extend(s.errors)
        if cfg.verify and not errors:
            missing = set(expected) - set(delivered)
            dupes = {k: n for k, n in delivered.items() if n > 1}
            if missing:
                errors.append(f"{len(missing)} chunks never delivered: "
                              f"{sorted(missing)[:3]}...")
            if dupes:
                errors.append(f"duplicated chunks: {sorted(dupes)[:3]}...")
        if tel is not None:
            tel.emit_event(
                "run_end",
                "live pipeline finished",
                severity="info" if not errors else "error",
                runner="LivePipeline",
                ok=not errors,
                elapsed_s=round(elapsed, 6),
                chunks=stats["decompress"].chunks,
            )
        return LiveReport(
            chunks=stats["decompress"].chunks,
            bytes_in=stats["feed"].bytes_in,
            wire_bytes=stats["send"].bytes_out,
            bytes_out=bytes_out[0],
            elapsed=elapsed,
            stage_stats=stats,
            errors=errors,
            telemetry=tel,
        )
