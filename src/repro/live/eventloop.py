"""Selector-based receiver plane: thousands of streams per core.

The thread-per-connection :class:`~repro.live.remote.ReceiverServer`
collapses long before the ROADMAP's thousands-of-tenants target — a
Python thread per socket is ~8 MB of stack and a scheduler entry each.
This module replaces it with a small fixed pool of **reactor shards**:
each shard is one thread running a non-blocking
``selectors.DefaultSelector`` loop that multiplexes many connections,
parsing frames out of :meth:`FramedReceiver.feed` /
:meth:`~repro.live.transport.FramedReceiver.next_frame` (partial
frames resume where they left off).

Connections are assigned to shards by the plan's RSS-style policy
(:func:`repro.plan.ir.stream_shard` — CRC-32 of the stream id modulo
the shard count): the software analogue of the paper's NIC hash→queue
fan-out (Obs 3/4), so a stream's frames are processed by one shard and
stay cache-local, mirroring BriskStream's relative-location-aware
placement.  A freshly accepted socket is parked on an arbitrary shard
until its first data frame names its stream, then migrates (with its
read-ahead buffer) to the shard the hash picked.

Fair-share backpressure, per tenant: the plane tracks an in-flight
byte budget per stream (claimed but not yet delivered to the sink).  A
slow consumer's streams get their sockets *deferred* — read interest
unregistered, ``repro_receiver_deferred_total{stream}`` bumped, a
watchdog-visible ``backpressure`` event emitted — instead of stalling
the shard, and resume once the decompress side drains below half the
budget.  A full decompress queue likewise defers just the stalled
connection; the shard keeps serving everyone else.

Delivery semantics are identical to thread mode (the chaos suite runs
against both): every accepted frame is ACKed, duplicates are dropped
by the shared :class:`~repro.live.dedup.StreamDedup` watermark, and a
frame is only ACKed after it is safely enqueued — a claimed frame
whose connection dies first is re-parented to the plane and enqueued
from there, never lost.
"""

from __future__ import annotations

import os
import selectors
import socket
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.live.dedup import StreamDedup
from repro.live.transport import Frame, FramedReceiver, encode_frame_header
from repro.live.workers import _note_wire
from repro.plan.ir import stream_shard
from repro.telemetry.spans import stage_span
from repro.util.errors import FrameIntegrityError, QueueTimeout

if TYPE_CHECKING:
    from repro.live.queues import ClosableQueue
    from repro.live.workers import StageStats

#: Bytes pulled off a readable socket per loop visit.
_RECV_SIZE = 1 << 18

#: Selector timeout — the cadence for retrying stalled/orphaned frames.
_TICK = 0.05

#: Default per-stream in-flight byte budget (claimed, not yet at the
#: sink) before the stream's connections are deferred.
DEFAULT_STREAM_BUDGET = 32 << 20


def default_shards(cpu_count: int | None = None) -> int:
    """Auto shard count: one per core this receiver's domain offers."""
    n = cpu_count if cpu_count is not None else os.cpu_count() or 1
    return max(1, min(8, n))


class _Conn:
    """Per-connection state owned by exactly one shard at a time."""

    __slots__ = (
        "sock",
        "rx",
        "out_buf",
        "stream_id",
        "saw_eos",
        "closed",
        "registered",
        "stalled_frame",
        "stalled_since",
        "handoff_frame",
        "budget_deferred",
        "shard",
    )

    def __init__(self, sock: socket.socket, rx: FramedReceiver) -> None:
        self.sock = sock
        self.rx = rx
        self.out_buf = bytearray()
        #: Stream named by the first data frame (migration key).
        self.stream_id: str | None = None
        self.saw_eos = False
        self.closed = False
        self.registered = False
        #: Claimed frame waiting for decompress-queue room; parks the
        #: connection (read interest off) until it lands.
        self.stalled_frame: Frame | None = None
        #: When the stall began — the deferral span's start for traced
        #: frames (0.0 = no stall in progress).
        self.stalled_since = 0.0
        #: Parsed-but-unprocessed frame riding along a shard migration.
        self.handoff_frame: Frame | None = None
        #: Deferred by the per-stream in-flight budget (fair share).
        self.budget_deferred = False
        self.shard: "ReactorShard | None" = None

    @property
    def want_read(self) -> bool:
        return (
            not self.closed
            and self.stalled_frame is None
            and not self.budget_deferred
        )


class _StreamState:
    """Per-tenant accounting: in-flight bytes + deferral episode."""

    __slots__ = ("in_flight", "deferred_conns", "episode")

    def __init__(self) -> None:
        self.in_flight = 0
        self.deferred_conns: set[_Conn] = set()
        self.episode = False


class ReactorShard(threading.Thread):
    """One selector loop multiplexing a slice of the connections."""

    def __init__(self, plane: "EventLoopPlane", index: int) -> None:
        super().__init__(name=f"recv-shard-{index}", daemon=True)
        self.index = index
        self.plane = plane
        self._sel = selectors.DefaultSelector()
        self._wake_rx, self._wake_tx = socket.socketpair()
        self._wake_rx.setblocking(False)
        self._wake_tx.setblocking(False)
        self._sel.register(self._wake_rx, selectors.EVENT_READ, None)
        self._inbox: deque[_Conn] = deque()
        self._inbox_lock = threading.Lock()
        self._conns: set[_Conn] = set()
        self._stalled: set[_Conn] = set()
        self._halt = threading.Event()

    # -- cross-thread handoff -------------------------------------------

    def wake(self) -> None:
        try:
            self._wake_tx.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # a pending wakeup byte already does the job

    def submit(self, conn: _Conn) -> None:
        """Hand a connection (new, migrated, or resumed) to this shard."""
        with self._inbox_lock:
            self._inbox.append(conn)
        self.wake()

    def stop(self) -> None:
        self._halt.set()
        self.wake()

    # -- the loop --------------------------------------------------------

    def run(self) -> None:
        try:
            while not self._halt.is_set():
                self._drain_inbox()
                self._retry_stalled()
                self.plane.flush_orphans(blocking=False)
                for key, mask in self._sel.select(_TICK):
                    if key.data is None:
                        self._drain_wakeup()
                        continue
                    conn: _Conn = key.data
                    if mask & selectors.EVENT_WRITE and not conn.closed:
                        self._flush_out(conn)
                    if mask & selectors.EVENT_READ and not conn.closed:
                        self._on_readable(conn)
        except Exception as exc:  # pragma: no cover - defensive
            self.plane.shard_crashed(self.name, exc)
        finally:
            for conn in list(self._conns):
                self._close_conn(conn)
            self._sel.close()
            self._wake_rx.close()
            self._wake_tx.close()

    def _drain_wakeup(self) -> None:
        try:
            while self._wake_rx.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _drain_inbox(self) -> None:
        while True:
            with self._inbox_lock:
                if not self._inbox:
                    return
                conn = self._inbox.popleft()
            if conn.closed:
                continue
            conn.shard = self
            if conn in self._conns:
                # Resume after a budget deferral.
                conn.budget_deferred = False
                self._update_registration(conn)
                self._drain_frames(conn)
                continue
            self._conns.add(conn)
            handoff = conn.handoff_frame
            if handoff is not None:
                conn.handoff_frame = None
                self._process_data(conn, handoff)
            self._drain_frames(conn)

    def _retry_stalled(self) -> None:
        for conn in list(self._stalled):
            frame = conn.stalled_frame
            if conn.closed or frame is None:
                self._stalled.discard(conn)
                continue
            if not self.plane.enqueue(frame):
                continue
            conn.stalled_frame = None
            self._stalled.discard(conn)
            self._note_defer(conn, frame)
            self._queue_ack(conn, frame)
            self._check_budget(conn, frame.stream_id)
            self._update_registration(conn)
            self._drain_frames(conn)

    # -- selector bookkeeping -------------------------------------------

    def _update_registration(self, conn: _Conn) -> None:
        if conn.closed:
            return
        mask = 0
        if conn.want_read:
            mask |= selectors.EVENT_READ
        if conn.out_buf:
            mask |= selectors.EVENT_WRITE
        if mask and conn.registered:
            self._sel.modify(conn.sock, mask, conn)
        elif mask:
            self._sel.register(conn.sock, mask, conn)
            conn.registered = True
        elif conn.registered:
            self._sel.unregister(conn.sock)
            conn.registered = False

    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        if conn.registered:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conn.registered = False
        conn.closed = True
        self._conns.discard(conn)
        self._stalled.discard(conn)
        try:
            conn.sock.close()
        except OSError:
            pass
        if conn.stalled_frame is not None:
            # Claimed but not yet enqueued: the plane owns it now, so
            # the chunk is delivered even though its ACK never went out
            # (the sender replays; the replay dedups and ACKs).
            self.plane.orphan(conn.stalled_frame)
            conn.stalled_frame = None
        self.plane.conn_closed(conn)

    # -- I/O -------------------------------------------------------------

    def _on_readable(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except BlockingIOError:
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            self._close_conn(conn)
            return
        conn.rx.feed(data)
        self._drain_frames(conn)

    def _flush_out(self, conn: _Conn) -> None:
        try:
            while conn.out_buf:
                sent = conn.sock.send(conn.out_buf)
                del conn.out_buf[:sent]
        except BlockingIOError:
            pass
        except OSError:
            self._close_conn(conn)
            return
        self._update_registration(conn)

    def _queue_ack(self, conn: _Conn, frame: Frame) -> None:
        if conn.closed:
            return
        conn.out_buf += encode_frame_header(Frame.ack_for(frame))
        self._flush_out(conn)

    # -- frame processing ------------------------------------------------

    def _drain_frames(self, conn: _Conn) -> None:
        while not conn.closed and conn.stalled_frame is None:
            try:
                frame = conn.rx.next_frame()
            except FrameIntegrityError:
                # The byte stream can't be trusted for framing any
                # more: drop the connection, let the sender replay.
                self.plane.record_rejected()
                self._close_conn(conn)
                return
            if frame is None:
                self._update_registration(conn)
                return
            self.plane.bump_progress()
            if frame.ack:
                continue  # senders don't ACK; tolerate and move on
            if frame.eos:
                conn.saw_eos = True
                self._queue_ack(conn, frame)
                continue
            if conn.stream_id is None:
                conn.stream_id = frame.stream_id
                target = self.plane.shard_for(frame.stream_id)
                if target is not self:
                    self._migrate(conn, target, frame)
                    return
            self._process_data(conn, frame)
        self._update_registration(conn)

    def _migrate(
        self, conn: _Conn, target: "ReactorShard", frame: Frame
    ) -> None:
        """Move the connection (and its read-ahead) to its home shard.

        The triggering frame travels as the handoff frame so the
        target processes it before draining the rest of the buffer —
        order per connection is preserved, and this shard stops
        touching the state the moment it is submitted.
        """
        if conn.registered:
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conn.registered = False
        self._conns.discard(conn)
        conn.handoff_frame = frame
        target.submit(conn)

    def _process_data(self, conn: _Conn, frame: Frame) -> None:
        plane = self.plane
        if frame.traced:
            _note_wire(plane.telemetry, frame)
        with stage_span(plane.telemetry, "recv", track=self.name) as sp:
            sp.stream_id = frame.stream_id
            sp.chunk_id = frame.index
            fresh = plane.claim(frame)
        if not fresh:
            plane.record_dedup()
            self._queue_ack(conn, frame)
            return
        plane.record_fresh(frame, sp.duration)
        if plane.enqueue(frame):
            self._queue_ack(conn, frame)
        else:
            conn.stalled_frame = frame
            conn.stalled_since = time.perf_counter()
            self._stalled.add(conn)
            plane.note_deferred(frame.stream_id, conn, reason="queue-full")
        self._check_budget(conn, frame.stream_id)

    def _note_defer(self, conn: _Conn, frame: Frame) -> None:
        """Close out a traced frame's deferral episode as a span."""
        since, conn.stalled_since = conn.stalled_since, 0.0
        if not frame.traced or since <= 0:
            return
        tel = self.plane.telemetry
        record = getattr(tel, "record_span", None) if tel is not None else None
        if record is not None:
            record(
                "defer", since, time.perf_counter(),
                stream_id=frame.stream_id, chunk_id=frame.index,
                track=self.name,
            )

    def _check_budget(self, conn: _Conn, stream_id: str) -> None:
        if conn.closed or conn.budget_deferred:
            return
        if self.plane.over_budget(stream_id):
            conn.budget_deferred = True
            self.plane.note_deferred(stream_id, conn, reason="budget")
            self._update_registration(conn)


class EventLoopPlane:
    """The shard pool plus the shared per-stream accounting."""

    def __init__(
        self,
        *,
        shards: int,
        wireq: "ClosableQueue",
        recv_stats: "StageStats",
        telemetry: Any | None = None,
        stream_budget_bytes: int = DEFAULT_STREAM_BUDGET,
    ) -> None:
        self.telemetry = telemetry
        self.wireq = wireq
        self.recv_stats = recv_stats
        self.stream_budget_bytes = stream_budget_bytes
        self._lock = threading.Lock()
        self._dedup = StreamDedup()
        self._pending: dict[tuple[str, int], int] = {}
        self._streams: dict[str, _StreamState] = {}
        self._orphans: deque[Frame] = deque()
        self._finished = 0
        self._progress = 0
        self._deferrals = 0
        self._errors: list[str] = []
        self._round_robin = 0
        self.shards = [
            ReactorShard(self, i) for i in range(max(1, shards))
        ]

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def add_connection(self, sock: socket.socket) -> None:
        """Adopt a freshly accepted socket (round-robin until its first
        data frame names the stream and the RSS hash picks its home)."""
        sock.setblocking(False)
        conn = _Conn(sock, FramedReceiver(sock, telemetry=self.telemetry))
        shard = self.shards[self._round_robin % len(self.shards)]
        self._round_robin += 1
        shard.submit(conn)

    def stop(self, join_timeout: float) -> list[str]:
        """Stop every shard and surface any shard-level errors."""
        for shard in self.shards:
            shard.stop()
        errors: list[str] = []
        for shard in self.shards:
            shard.join(join_timeout)
            if shard.is_alive():
                errors.append(f"thread {shard.name} did not finish")
        self.flush_orphans(blocking=True, timeout=join_timeout)
        with self._lock:
            errors.extend(self._errors)
            if self._orphans:
                errors.append(
                    f"{len(self._orphans)} claimed frames never reached "
                    "the decompress queue"
                )
        return errors

    def shard_crashed(self, name: str, exc: Exception) -> None:
        with self._lock:
            self._errors.append(f"shard {name} crashed: {exc!r}")

    # -- progress / finish accounting (mirrors thread mode) --------------

    @property
    def finished(self) -> int:
        with self._lock:
            return self._finished

    @property
    def progress(self) -> int:
        with self._lock:
            return self._progress

    @property
    def deferrals(self) -> int:
        with self._lock:
            return self._deferrals

    def bump_progress(self) -> None:
        with self._lock:
            self._progress += 1

    def conn_closed(self, conn: _Conn) -> None:
        with self._lock:
            if conn.saw_eos:
                self._finished += 1
            self._progress += 1

    # -- sharding --------------------------------------------------------

    def shard_for(self, stream_id: str) -> ReactorShard:
        return self.shards[stream_shard(stream_id, len(self.shards))]

    # -- dedup + per-tenant budget ---------------------------------------

    def claim(self, frame: Frame) -> bool:
        """Atomically dedup-claim a data frame; True when it is new.

        A claimed frame is owned by the plane until it reaches the
        decompress queue — in-flight bytes are accounted here and
        released by :meth:`on_delivered`.
        """
        size = len(frame.payload)
        with self._lock:
            fresh = self._dedup.claim(frame.stream_id, frame.index)
            if fresh:
                self._pending[(frame.stream_id, frame.index)] = size
                state = self._streams.get(frame.stream_id)
                if state is None:
                    state = self._streams[frame.stream_id] = _StreamState()
                state.in_flight += size
        return fresh

    def over_budget(self, stream_id: str) -> bool:
        with self._lock:
            state = self._streams.get(stream_id)
            return (
                state is not None
                and state.in_flight > self.stream_budget_bytes
            )

    def note_deferred(
        self, stream_id: str, conn: _Conn, *, reason: str
    ) -> None:
        """Record one fair-share deferral (telemetry + watchdog event)."""
        first = False
        with self._lock:
            self._deferrals += 1
            state = self._streams.get(stream_id)
            if state is not None and reason == "budget":
                state.deferred_conns.add(conn)
                if not state.episode:
                    state.episode = True
                    first = True
        if self.telemetry is not None:
            record = getattr(self.telemetry, "record_deferred", None)
            if record is not None:
                record(stream_id)
            if first:
                self.telemetry.emit_event(
                    "backpressure",
                    f"stream {stream_id} over in-flight budget; "
                    "reads deferred",
                    severity="warning",
                    queue=f"recv:{stream_id}",
                    stream=stream_id,
                    budget_bytes=self.stream_budget_bytes,
                )

    def on_delivered(self, stream_id: str, index: int) -> None:
        """Sink callback: release in-flight bytes, resume if drained."""
        resume: list[_Conn] = []
        with self._lock:
            size = self._pending.pop((stream_id, index), 0)
            state = self._streams.get(stream_id)
            if state is None:
                return
            state.in_flight -= size
            if (
                state.episode
                and state.in_flight <= self.stream_budget_bytes // 2
            ):
                state.episode = False
                resume = [c for c in state.deferred_conns if not c.closed]
                state.deferred_conns.clear()
        for conn in resume:
            shard = conn.shard
            if shard is not None:
                shard.submit(conn)

    # -- decompress-queue handoff ----------------------------------------

    def enqueue(self, frame: Frame) -> bool:
        """Non-blocking put toward the decompressors; False when full."""
        try:
            self.wireq.put(frame, timeout=0)
        except QueueTimeout:
            return False
        return True

    def orphan(self, frame: Frame) -> None:
        with self._lock:
            self._orphans.append(frame)

    def flush_orphans(
        self, *, blocking: bool, timeout: float | None = None
    ) -> None:
        """Enqueue claimed frames whose connection died first."""
        while True:
            with self._lock:
                if not self._orphans:
                    return
                frame = self._orphans.popleft()
            try:
                self.wireq.put(frame, timeout=timeout if blocking else 0)
            except QueueTimeout:
                with self._lock:
                    self._orphans.appendleft(frame)
                return

    # -- stats -----------------------------------------------------------

    def record_fresh(self, frame: Frame, duration: float) -> None:
        size = len(frame.payload)
        self.recv_stats.record(size, size, duration)
        if self.telemetry is not None:
            self.telemetry.record_chunk("recv", frame.stream_id, size)

    def record_dedup(self) -> None:
        if self.telemetry is not None:
            self.telemetry.record_dedup()

    def record_rejected(self) -> None:
        if self.telemetry is not None:
            self.telemetry.record_rejected()


def run_accept_loop(
    plane: EventLoopPlane,
    listener: socket.socket,
    *,
    connections: int,
    accept_timeout: float,
    errors: list[str],
) -> int:
    """Accept (and re-accept) sockets until every logical connection
    finished — the event-plane twin of the thread-mode accept loop,
    with the same progress-based timeout and error strings."""
    accepted = 0
    listener.settimeout(min(0.25, accept_timeout / 2))
    last_progress = -1
    last_change = time.monotonic()
    while True:
        finished = plane.finished
        progress = plane.progress
        if finished >= connections:
            break
        now = time.monotonic()
        if progress != last_progress:
            last_progress = progress
            last_change = now
        elif now - last_change > accept_timeout:
            errors.append(
                f"timed out waiting for {connections} "
                f"connections to finish ({finished} complete, "
                f"{accepted} accepted)"
            )
            break
        try:
            conn, _addr = listener.accept()
        except (TimeoutError, socket.timeout):
            continue
        except OSError as exc:
            errors.append(f"accept failed: {exc}")
            break
        plane.bump_progress()
        plane.add_connection(conn)
        accepted += 1
    return accepted
