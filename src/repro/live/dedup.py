"""Bounded receiver-side dedup: contiguous watermark + reorder set.

The v2 resilience protocol is at-least-once transmission plus
receiver-side dedup on ``(stream, index)`` — exactly-once at the sink.
The original implementation kept every accepted key in one ``set``,
which grows O(total chunks) over a run: a real leak at thousands of
streams times long chunk sequences.

:class:`StreamDedup` keeps per-stream state instead: a *contiguous
watermark* ``w`` (every index ``<= w`` has been accepted — the same
shape as the sender's contiguous-ACK horizon) plus a small set of
out-of-order indices above it, absorbed into the watermark as gaps
fill.  Senders emit indices in order per stream, so the out-of-order
set only holds entries while a retransmit window is open; steady-state
memory is O(streams), worst case O(streams + reorder window).
"""

from __future__ import annotations


class StreamDedup:
    """Tracks which ``(stream, index)`` chunks were already accepted.

    Not thread-safe on its own — callers serialize access (the
    thread-mode receiver under its state lock, the event plane under
    its own).
    """

    __slots__ = ("_marks", "_ooo")

    def __init__(self) -> None:
        #: stream id -> highest contiguous index accepted (-1 = none).
        self._marks: dict[str, int] = {}
        #: stream id -> accepted indices above the watermark.
        self._ooo: dict[str, set[int]] = {}

    def claim(self, stream_id: str, index: int) -> bool:
        """Mark ``(stream, index)`` accepted; True when it was new."""
        mark = self._marks.get(stream_id, -1)
        ooo = self._ooo.get(stream_id)
        if index <= mark or (ooo is not None and index in ooo):
            return False
        if index == mark + 1:
            mark += 1
            if ooo:
                while mark + 1 in ooo:
                    mark += 1
                    ooo.remove(mark)
                if not ooo:
                    del self._ooo[stream_id]
            self._marks[stream_id] = mark
        else:
            if ooo is None:
                ooo = self._ooo.setdefault(stream_id, set())
            ooo.add(index)
        return True

    def watermark(self, stream_id: str) -> int:
        """Highest contiguous accepted index (-1 when none yet)."""
        return self._marks.get(stream_id, -1)

    def out_of_order(self, stream_id: str) -> int:
        """Accepted indices currently parked above the watermark."""
        ooo = self._ooo.get(stream_id)
        return len(ooo) if ooo is not None else 0

    def streams(self) -> int:
        return len(self._marks.keys() | self._ooo.keys())
