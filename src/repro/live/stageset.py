"""Stage lifecycle objects: worker sets the controller can cycle.

Historically each pipeline inlined its spawn/join logic — a list of
``threading.Thread`` built in ``run()`` and joined at the end.  That
shape can't be reconfigured: nothing owns "the compress workers" as a
unit, so nothing can scale them or respawn them mid-run.  This module
extracts the lifecycle into two small objects:

- :class:`Knobs` — the scalar knobs workers re-read every loop
  iteration (``batch_frames``, ``batch_linger``).  Plain attribute
  reads/writes are atomic under the GIL, so the controller hot-swaps
  them lock-free while workers run.
- :class:`StageSet` — one stage's worker threads plus the factory that
  makes more.  ``scale_to(n)`` grows the set (registering the new
  producers on the downstream queue *before* they spawn) or shrinks it
  (signalling per-worker stop events; the worker's ``finally``-close
  balances the producer count at its next batch boundary).
  ``respawn()`` is drain-and-respawn: spawn a full replacement
  generation, then stop the old one — the queue serializes the
  handoff, so no chunk is lost and exactly-once accounting holds.

The invariant that makes scaling safe: a downstream
:class:`~repro.live.queues.ClosableQueue` seals when close-count ==
producer-count.  Scale-up calls ``add_producers`` before the new
worker exists; scale-down never touches the count — the stopping
worker's own ``finally: outq.close()`` is the decrement.  Both orders
are race-free against the seal.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.live.queues import ClosableQueue
from repro.util.errors import ValidationError


class Knobs:
    """Hot-swappable scalar knobs, shared by reference with workers.

    Attribute reads and writes are single bytecode operations —
    GIL-atomic — so no lock is needed: workers see the new value at
    their next loop iteration, the lock-free half of the
    reconfiguration protocol.
    """

    __slots__ = ("batch_frames", "batch_linger")

    def __init__(
        self, batch_frames: int = 1, batch_linger: float = 0.0
    ) -> None:
        self.batch_frames = batch_frames
        self.batch_linger = batch_linger


#: factory(index, stop) -> the worker thread(s) for one logical worker.
WorkerFactory = Callable[
    [int, threading.Event], "threading.Thread | Sequence[threading.Thread]"
]


@dataclass
class _Worker:
    """One logical worker: its thread(s) and its private stop event."""

    index: int
    threads: tuple[threading.Thread, ...]
    stop: threading.Event


class StageSet:
    """One stage's worker threads as a reconfigurable unit.

    ``factory(index, stop)`` builds (without starting) the thread or
    threads of logical worker ``index``; indices are monotonic across
    the set's lifetime so thread names like ``compress-3`` never
    collide after a respawn.  ``downstream`` is the queue the workers
    close when they exit (None for sink stages); ``scalable=False``
    turns :meth:`scale_to` into a refusal rather than an error — the
    controller treats that as "pick another lever".
    """

    def __init__(
        self,
        name: str,
        factory: WorkerFactory,
        *,
        count: int,
        downstream: ClosableQueue | None = None,
        scalable: bool = False,
    ) -> None:
        if count < 1:
            raise ValidationError(f"stage {name!r} needs count >= 1")
        self.name = name
        self.factory = factory
        self.downstream = downstream
        self.scalable = scalable
        self._lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._retired: list[_Worker] = []
        self._next_index = 0
        self._started = False
        for _ in range(count):
            self._workers.append(self._make_locked())

    # -- internals (call with self._lock held or before start) -----------

    def _make_locked(self) -> _Worker:
        stop = threading.Event()
        made = self.factory(self._next_index, stop)
        threads = (
            (made,) if isinstance(made, threading.Thread) else tuple(made)
        )
        worker = _Worker(index=self._next_index, threads=threads, stop=stop)
        self._next_index += 1
        return worker

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Start every worker thread (idempotent per worker)."""
        with self._lock:
            self._started = True
            for w in self._workers:
                for t in w.threads:
                    t.start()

    @property
    def count(self) -> int:
        """Logical workers currently meant to be running."""
        with self._lock:
            return len(self._workers)

    def threads(self) -> list[threading.Thread]:
        """Every thread ever spawned (live and retired) — join them all."""
        with self._lock:
            out: list[threading.Thread] = []
            for w in self._workers + self._retired:
                out.extend(w.threads)
            return out

    def join(self, timeout: float | None = None) -> list[str]:
        """Join every thread; returns an error string per straggler."""
        errors: list[str] = []
        for t in self.threads():
            t.join(timeout)
            if t.is_alive():
                errors.append(
                    f"thread {t.name} did not finish (deadlock?)"
                )
        return errors

    # -- reconfiguration --------------------------------------------------

    def scale_to(self, n: int) -> bool:
        """Grow or shrink the set to ``n`` logical workers.

        Scale-up registers the new producers on the downstream queue
        *first*, then spawns fresh workers.  Scale-down flags the
        newest workers' stop events and moves them to the retired list
        — their exit (and ``finally``-close) happens at their next
        batch boundary, so in-flight chunks drain normally.  Returns
        False (no change) when the set is not scalable, ``n`` is the
        current count, or the downstream queue already sealed.
        """
        if n < 1 or not self.scalable:
            return False
        with self._lock:
            current = len(self._workers)
            if n == current or not self._started:
                return False
            if n > current:
                grow = n - current
                if self.downstream is not None:
                    try:
                        self.downstream.add_producers(grow)
                    except ValidationError:
                        return False  # stream already ending
                fresh = [self._make_locked() for _ in range(grow)]
                self._workers.extend(fresh)
                for w in fresh:
                    for t in w.threads:
                        t.start()
            else:
                for _ in range(current - n):
                    w = self._workers.pop()
                    w.stop.set()
                    self._retired.append(w)
        return True

    def respawn(self) -> bool:
        """Drain-and-respawn: replace every worker with a fresh one.

        The replacement generation spawns first (producer count goes
        up by the current count), then the old generation is stopped
        (its closes bring the count back down) — net zero, with both
        generations briefly draining the same upstream queue, so no
        chunk is dropped and no close is missed.  Returns False when
        the downstream queue already sealed (the stream is ending —
        nothing to respawn into).
        """
        with self._lock:
            if not self._started or not self._workers:
                return False
            old = list(self._workers)
            if self.downstream is not None:
                try:
                    self.downstream.add_producers(len(old))
                except ValidationError:
                    return False
            fresh = [self._make_locked() for _ in old]
            self._workers = fresh
            for w in fresh:
                for t in w.threads:
                    t.start()
            for w in old:
                w.stop.set()
                self._retired.append(w)
        return True
