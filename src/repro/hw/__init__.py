"""Hardware models: NUMA topology, memory system, interconnect, NICs.

The split is *description* vs *instantiation*:

- :mod:`repro.hw.topology` defines immutable specs (:class:`MachineSpec`,
  :class:`NicSpec`, :class:`CoreId`) — what the runtime configuration
  generator's knowledge base contains;
- :mod:`repro.hw.machine` turns a spec into live :class:`repro.sim.flows`
  resources (cores, memory controllers, QPI links, LLCs, NIC ports) bound
  to one simulation engine;
- :mod:`repro.hw.presets` carries the concrete machines from the paper's
  §3.1/§4.2 testbed (*lynxdtn*, *updraft1/2*, *polaris1/2*).
"""

from repro.hw.machine import Machine
from repro.hw.memory import MemorySystem
from repro.hw.nic import Nic
from repro.hw.presets import lynxdtn_spec, polaris_spec, updraft_spec
from repro.hw.topology import CoreId, MachineSpec, NicSpec, SocketSpec

__all__ = [
    "CoreId",
    "Machine",
    "MachineSpec",
    "MemorySystem",
    "Nic",
    "NicSpec",
    "SocketSpec",
    "lynxdtn_spec",
    "polaris_spec",
    "updraft_spec",
]
