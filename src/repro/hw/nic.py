"""NIC model: port bandwidth, PCIe link, DMA target, RSS queue steering.

From the paper's §2.2: an arriving packet is DMA'd over PCIe into host
memory *of the socket the NIC is attached to*, then a softIRQ runs on the
core designated for the NIC queue (RSS hashes a flow to a queue; each
queue has an IRQ-affinity core).  The receiving thread finally copies the
payload out of that memory — locally if it runs on the attached socket,
across QPI otherwise.  That asymmetry is the entire mechanism behind the
paper's 15% NUMA-1 receive advantage (Observations 1 and 4).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

from repro.hw.memory import Demands, merge_demands
from repro.hw.topology import CoreId, NicSpec
from repro.sim.flows import Resource
from repro.util.units import gbps_to_bytes_per_s

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.machine import Machine


class Nic:
    """A live NIC bound to a machine's resources."""

    def __init__(self, machine: "Machine", spec: NicSpec) -> None:
        self.machine = machine
        self.spec = spec
        base = f"{machine.spec.name}/{spec.name}"
        rate_Bps = gbps_to_bytes_per_s(spec.rate_gbps)
        self.rx = Resource(f"{base}/rx", rate_Bps, kind="nic", dir="rx")
        self.tx = Resource(f"{base}/tx", rate_Bps, kind="nic", dir="tx")
        self.pcie = Resource(
            f"{base}/pcie",
            gbps_to_bytes_per_s(spec.pcie_gbps),
            kind="pcie",
        )

    @property
    def socket(self) -> int:
        """NUMA domain this NIC is attached to."""
        return self.spec.attached_socket

    # -- RSS / IRQ steering ----------------------------------------------

    def rss_queue(self, stream_id: int | str) -> int:
        """Hash a stream identity onto one of the NIC's RX queues."""
        h = zlib.crc32(str(stream_id).encode())
        return h % self.spec.num_queues

    def softirq_core(self, queue: int) -> CoreId:
        """IRQ-affinity core for a queue.

        ``irq_layout="spread"`` round-robins queues over the attached
        socket's cores (irqbalance); ``"single"`` pins every queue's
        IRQ to core 0 of the attached socket, serializing all kernel RX
        processing there.
        """
        cores = self.machine.spec.cores_of(self.socket)
        if self.spec.irq_layout == "single":
            return cores[0]
        return cores[queue % len(cores)]

    # -- demand builders ---------------------------------------------------

    def rx_wire_demands(self, fraction: float = 1.0) -> Demands:
        """Per-byte demands of a payload crossing the wire into host
        memory: NIC port + PCIe + DMA write into the attached socket's
        memory (no LLC: DDIO/DMA bypasses the reader's cache path here)."""
        return {
            self.rx: fraction,
            self.pcie: fraction,
            self.machine.mc(self.socket): fraction,
        }

    def tx_wire_demands(self, src_socket: int, fraction: float = 1.0) -> Demands:
        """Per-byte demands of transmitting a payload homed on
        ``src_socket``: DMA read (possibly over QPI to the NIC's socket)
        + PCIe + NIC port."""
        m = self.machine
        demands: Demands = {
            self.tx: fraction,
            self.pcie: fraction,
            m.mc(src_socket): fraction,
        }
        if src_socket != self.socket:
            demands = merge_demands(
                demands, {m.interconnect(src_socket, self.socket): fraction}
            )
        return demands
