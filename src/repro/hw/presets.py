"""The paper's testbed machines (§3.1 and §4.2).

- *lynxdtn* — the upstream gateway / receiver: 2× Xeon Gold 6346
  (16 cores @ 3.1 GHz per socket), 512 GB DDR4-3200 per socket, dual-port
  Mellanox ConnectX-6.  The NUMA-0 NIC serves a LUSTRE filesystem on a
  separate network (unused in the study); the streaming NIC (200 Gbps)
  hangs off **NUMA 1** — the fact every placement decision revolves
  around.
- *updraft1/2* — senders with the same organization as lynxdtn but a
  100 Gbps streaming NIC (§3.4: "The sending machine, updraft1, has a NIC
  supporting 100 Gbps").
- *polaris1/2* — senders: one-socket 2.8 GHz AMD EPYC Milan 7543P,
  32 cores, 512 GB DDR4, 100 Gbps NIC.

Bandwidth constants not printed in the paper (memory-controller, LLC,
QPI effective rates) are engineering estimates for these parts; the
calibration audit in EXPERIMENTS.md shows which results are sensitive to
them (only the Figure 9 decompression-contention crossover).
"""

from __future__ import annotations

from repro.hw.topology import MachineSpec, NicSpec, SocketSpec
from repro.util.units import GiB

#: Xeon Gold 6346 socket as configured in lynxdtn/updraft (16x32GB DDR4-3200).
_XEON_6346 = SocketSpec(
    cores=16,
    ghz=3.1,
    memory_bytes=512 * GiB,
    mc_bandwidth=120e9,
    llc_bandwidth=175e9,
)

#: EPYC Milan 7543P socket as configured in polaris nodes.
_EPYC_7543P = SocketSpec(
    cores=32,
    ghz=2.8,
    memory_bytes=512 * GiB,
    mc_bandwidth=160e9,
    llc_bandwidth=280e9,
)


def lynxdtn_spec() -> MachineSpec:
    """The upstream gateway node (receiver in every experiment)."""
    return MachineSpec(
        name="lynxdtn",
        sockets=(_XEON_6346, _XEON_6346),
        nics=(
            NicSpec(
                name="lustre-nic",
                rate_gbps=200.0,
                attached_socket=0,
                usable=False,  # separate LUSTRE network, not studied
            ),
            NicSpec(name="hsn-nic", rate_gbps=200.0, attached_socket=1),
        ),
        qpi_bandwidth=42e9,
        kernel="rhel8-4.18",
    )


def updraft_spec(index: int = 1) -> MachineSpec:
    """updraft1/updraft2 sender nodes (same organization as lynxdtn,
    100 Gbps streaming NIC)."""
    return MachineSpec(
        name=f"updraft{index}",
        sockets=(_XEON_6346, _XEON_6346),
        nics=(NicSpec(name="nic", rate_gbps=100.0, attached_socket=1),),
        qpi_bandwidth=42e9,
        kernel="rhel8-4.18",
    )


def polaris_spec(index: int = 1) -> MachineSpec:
    """polaris1/polaris2 sender nodes (single-socket EPYC, 100 Gbps NIC)."""
    return MachineSpec(
        name=f"polaris{index}",
        sockets=(_EPYC_7543P,),
        nics=(NicSpec(name="nic", rate_gbps=100.0, attached_socket=0),),
        kernel="sles15sp3-5.3",
        reference_ghz=3.1,
    )
