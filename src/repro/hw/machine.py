"""Instantiate a :class:`MachineSpec` as live simulation resources.

One :class:`Machine` owns, per spec:

- a :class:`~repro.sim.flows.CoreResource` per hardware core (capacity
  scaled by clock relative to the calibration reference),
- a memory-controller resource per socket (``kind="memory"``),
- an LLC bandwidth resource per socket (``kind="llc"``),
- a QPI/UPI resource per ordered socket pair (``kind="interconnect"``),
- a :class:`repro.hw.nic.Nic` per NIC spec (rx/tx/pcie resources).

Demand-vector construction for reads/writes that may cross sockets lives
in :class:`repro.hw.memory.MemorySystem`.
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.flows import CoreResource, Resource
from repro.hw.memory import MemorySystem
from repro.hw.nic import Nic
from repro.hw.topology import CoreId, MachineSpec
from repro.util.errors import ValidationError


class Machine:
    """Live resource set for one host inside one simulation."""

    def __init__(
        self,
        engine: Engine,
        spec: MachineSpec,
        *,
        csw_penalty: float = 0.03,
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.cores: dict[CoreId, CoreResource] = {}
        for core in spec.all_cores():
            self.cores[core] = CoreResource(
                f"{spec.name}/{core}",
                capacity=spec.core_speed_factor(core),
                csw_penalty=csw_penalty,
                kind="core",
                machine=spec.name,
                socket=core.socket,
            )
        self.memory_controllers: list[Resource] = [
            Resource(
                f"{spec.name}/mc{s}",
                sock.mc_bandwidth,
                kind="memory",
                machine=spec.name,
                socket=s,
            )
            for s, sock in enumerate(spec.sockets)
        ]
        self.llcs: list[Resource] = [
            Resource(
                f"{spec.name}/llc{s}",
                sock.llc_bandwidth,
                kind="llc",
                machine=spec.name,
                socket=s,
            )
            for s, sock in enumerate(spec.sockets)
        ]
        # One interconnect resource per ordered (src, dst) socket pair.
        # With 2 sockets this is QPI in each direction, matching how the
        # paper describes cross-socket traffic (§2.1).
        self.qpi: dict[tuple[int, int], Resource] = {}
        for src in range(spec.num_sockets):
            for dst in range(spec.num_sockets):
                if src == dst:
                    continue
                self.qpi[(src, dst)] = Resource(
                    f"{spec.name}/qpi{src}->{dst}",
                    spec.qpi_bandwidth,
                    kind="interconnect",
                    machine=spec.name,
                    src=src,
                    dst=dst,
                )
        self.nics: dict[str, Nic] = {
            n.name: Nic(self, n) for n in spec.nics
        }
        self.memory = MemorySystem(self)

    # -- lookups ---------------------------------------------------------

    def core(self, core: CoreId) -> CoreResource:
        try:
            return self.cores[core]
        except KeyError as exc:
            raise ValidationError(
                f"no core {core} on {self.spec.name!r}"
            ) from exc

    def core_names(self) -> list[str]:
        """Resource names of all cores in OS enumeration order."""
        return [self.cores[c].name for c in self.spec.all_cores()]

    def mc(self, socket: int) -> Resource:
        self.spec._check_socket(socket)
        return self.memory_controllers[socket]

    def llc(self, socket: int) -> Resource:
        self.spec._check_socket(socket)
        return self.llcs[socket]

    def interconnect(self, src: int, dst: int) -> Resource:
        if src == dst:
            raise ValidationError("interconnect requires distinct sockets")
        self.spec._check_socket(src)
        self.spec._check_socket(dst)
        return self.qpi[(src, dst)]

    def nic(self, name: str | None = None) -> Nic:
        if name is None:
            return self.nics[self.spec.primary_nic().name]
        try:
            return self.nics[name]
        except KeyError as exc:
            raise ValidationError(
                f"no NIC {name!r} on {self.spec.name!r}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Machine {self.spec.name}: {self.spec.num_sockets} sockets x "
            f"{self.spec.sockets[0].cores} cores, "
            f"{len(self.nics)} NIC(s)>"
        )
