"""Memory-system demand construction (local vs remote access).

The paper's §2.1 model: a core reads/writes its socket's memory through
the local memory controller; touching another socket's memory adds a trip
over QPI plus the remote controller.  :class:`MemorySystem` turns
"execute on socket E, data homed on socket H" into the demand vector the
fluid allocator understands.

All demands are *per byte of payload*; callers scale with fraction
factors for traffic amplification (e.g. a decompressor reads 0.5 byte of
compressed input per byte of output).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.flows import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.machine import Machine

Demands = dict[Resource, float]


def merge_demands(*parts: Demands) -> Demands:
    """Sum demand vectors (resources may repeat across parts)."""
    out: Demands = {}
    for part in parts:
        for r, d in part.items():
            out[r] = out.get(r, 0.0) + d
    return out


class MemorySystem:
    """Builds per-byte demand vectors for NUMA-aware memory traffic."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine

    def read(self, exec_socket: int, home_socket: int, fraction: float = 1.0) -> Demands:
        """Demands for reading ``fraction`` bytes homed on ``home_socket``
        from a core on ``exec_socket``."""
        return self._access(exec_socket, home_socket, fraction, write=False)

    def write(self, exec_socket: int, home_socket: int, fraction: float = 1.0) -> Demands:
        """Demands for writing ``fraction`` bytes homed on ``home_socket``
        from a core on ``exec_socket``."""
        return self._access(exec_socket, home_socket, fraction, write=True)

    def _access(
        self, exec_socket: int, home_socket: int, fraction: float, *, write: bool
    ) -> Demands:
        if fraction < 0:
            raise ValueError(f"fraction must be >= 0, got {fraction}")
        if fraction == 0.0:
            return {}
        m = self.machine
        m.spec._check_socket(exec_socket)
        m.spec._check_socket(home_socket)
        demands: Demands = {
            m.mc(home_socket): fraction,
            m.llc(exec_socket): fraction,
        }
        if exec_socket != home_socket:
            # Reads pull data home->exec; writes push exec->home.
            src, dst = (
                (exec_socket, home_socket) if write else (home_socket, exec_socket)
            )
            link = m.interconnect(src, dst)
            demands[link] = demands.get(link, 0.0) + fraction
        return demands

    def copy(
        self,
        exec_socket: int,
        src_socket: int,
        dst_socket: int,
        fraction: float = 1.0,
    ) -> Demands:
        """Read from ``src_socket`` + write to ``dst_socket`` (a memcpy)."""
        return merge_demands(
            self.read(exec_socket, src_socket, fraction),
            self.write(exec_socket, dst_socket, fraction),
        )
