"""Immutable hardware descriptions (the knowledge-base vocabulary).

A :class:`MachineSpec` is everything the paper's "runtime configuration
generator" knows about a host: socket/core organization, per-socket
memory, interconnect and memory-controller bandwidths, and which NUMA
domain each NIC is attached to.  Placement quality in the paper comes
entirely from exploiting these facts (Observations 1–4), so they are
first-class data here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ValidationError
from repro.util.units import GiB


@dataclass(frozen=True, order=True)
class CoreId:
    """A hardware core addressed as (socket, index-within-socket)."""

    socket: int
    index: int

    def global_index(self, cores_per_socket: int) -> int:
        """Flat core number in OS enumeration order (socket-major)."""
        return self.socket * cores_per_socket + self.index

    def __str__(self) -> str:
        return f"s{self.socket}c{self.index}"


@dataclass(frozen=True)
class NicSpec:
    """One NIC port: its speed, NUMA attachment and queue organization."""

    name: str
    rate_gbps: float
    attached_socket: int
    num_queues: int = 16
    pcie_gbps: float = 252.0  # PCIe 4.0 x16 ≈ 31.5 GB/s
    #: NICs present but unused in the paper's study (lynxdtn's NUMA-0 NIC
    #: serves a LUSTRE filesystem on a separate network).
    usable: bool = True
    #: IRQ-affinity layout for the RX queues: "spread" (irqbalance
    #: round-robins softIRQ cores over the attached socket — §2.2's
    #: RSS/RPS picture) or "single" (every queue's IRQ on core 0 of the
    #: attached socket — the classic misconfiguration that serializes
    #: kernel RX processing on one core).
    irq_layout: str = "spread"

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise ValidationError(f"NIC {self.name!r} rate must be > 0")
        if self.num_queues < 1:
            raise ValidationError(f"NIC {self.name!r} needs >= 1 queue")
        if self.irq_layout not in ("spread", "single"):
            raise ValidationError(
                f"NIC {self.name!r}: irq_layout must be 'spread' or 'single'"
            )


@dataclass(frozen=True)
class SocketSpec:
    """One NUMA domain: cores, local memory, and its bandwidth limits."""

    cores: int
    ghz: float
    memory_bytes: int = 512 * GiB
    #: Effective memory-controller streaming bandwidth (bytes/s).  DDR4-3200
    #: with 8 channels peaks at ~204 GB/s; sustained streaming is lower.
    mc_bandwidth: float = 120e9
    #: Effective last-level-cache bandwidth available to streaming loads
    #: (bytes/s).  Bounds cache-resident traffic of co-located threads —
    #: the intra-socket contention resource of the paper's Observation 3.
    llc_bandwidth: float = 175e9

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValidationError("socket needs >= 1 core")
        if self.ghz <= 0:
            raise ValidationError("socket clock must be > 0")


@dataclass(frozen=True)
class MachineSpec:
    """A complete host description.

    ``reference_ghz`` anchors the cost model: per-byte CPU costs in
    :mod:`repro.core.params` are calibrated for a core at this clock, and
    cores scale linearly with their actual clock.
    """

    name: str
    sockets: tuple[SocketSpec, ...]
    nics: tuple[NicSpec, ...] = ()
    #: QPI/UPI bandwidth per direction between a socket pair (bytes/s).
    #: Intel UPI: 3 links x 10.4 GT/s ≈ 62 GB/s aggregate; effective
    #: streaming share is lower.
    qpi_bandwidth: float = 42e9
    reference_ghz: float = 3.1
    kernel: str = "linux-4.18"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.sockets:
            raise ValidationError(f"machine {self.name!r} needs >= 1 socket")
        for nic in self.nics:
            if not 0 <= nic.attached_socket < len(self.sockets):
                raise ValidationError(
                    f"NIC {nic.name!r} attached to nonexistent socket "
                    f"{nic.attached_socket} on {self.name!r}"
                )

    # -- derived topology facts -----------------------------------------

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    @property
    def total_cores(self) -> int:
        return sum(s.cores for s in self.sockets)

    def cores_of(self, socket: int) -> list[CoreId]:
        """All core ids in one NUMA domain, in index order."""
        self._check_socket(socket)
        return [CoreId(socket, i) for i in range(self.sockets[socket].cores)]

    def all_cores(self) -> list[CoreId]:
        """Every core, socket-major (OS enumeration order)."""
        return [c for s in range(self.num_sockets) for c in self.cores_of(s)]

    def core_ghz(self, core: CoreId) -> float:
        self._check_socket(core.socket)
        return self.sockets[core.socket].ghz

    def core_speed_factor(self, core: CoreId) -> float:
        """Core capacity relative to the calibration reference clock."""
        return self.core_ghz(core) / self.reference_ghz

    def usable_nics(self) -> list[NicSpec]:
        return [n for n in self.nics if n.usable]

    def nic_named(self, name: str) -> NicSpec:
        for n in self.nics:
            if n.name == name:
                return n
        raise ValidationError(f"no NIC named {name!r} on {self.name!r}")

    def primary_nic(self) -> NicSpec:
        """The fastest usable NIC — the streaming NIC in the paper's setup."""
        usable = self.usable_nics()
        if not usable:
            raise ValidationError(f"machine {self.name!r} has no usable NIC")
        return max(usable, key=lambda n: n.rate_gbps)

    def nic_socket(self, nic: NicSpec | None = None) -> int:
        """NUMA domain the (primary) NIC hangs off — Observation 1's key fact."""
        return (nic or self.primary_nic()).attached_socket

    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.num_sockets:
            raise ValidationError(
                f"socket {socket} out of range on {self.name!r} "
                f"(has {self.num_sockets})"
            )
