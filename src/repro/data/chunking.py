"""The unit of streaming work: chunks.

A :class:`Chunk` mirrors the paper's unit of operation (one X-ray
projection, 11.0592 MB).  Two usage modes share the type:

- **simulation**: chunks are metadata (sizes, compression ratio) — the
  fluid simulator moves bytes as numbers;
- **live**: chunks carry a real payload through real threads/sockets.

A :class:`ChunkSource` produces chunks for a stream; the synthetic
source draws per-chunk compression ratios from a calibrated
distribution so simulated wire sizes vary like real projections do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol

from repro.util.errors import ValidationError
from repro.util.rng import make_rng


@dataclass
class Chunk:
    """One unit of streaming work."""

    stream_id: str
    index: int
    nbytes: int
    #: Expected original/compressed ratio (simulation) or actual (live).
    ratio: float = 2.0
    #: Real payload in live mode; None in simulation.
    payload: bytes | None = None
    #: Compressed payload (live) once the compression stage ran.
    wire_payload: bytes | None = None
    #: Wire id of the codec that produced ``wire_payload`` (0 = the
    #: pipeline's configured codec; adaptive compressors set this).
    codec_id: int = 0
    #: Socket the (uncompressed or received) buffer is homed on — set by
    #: the stage that first touches it (first-touch policy).
    home_socket: int | None = None
    #: Flow-trace context assigned by the feeder when this chunk was
    #: head-sampled (:class:`repro.trace.TraceContext`); None for the
    #: untraced majority.  Downstream stages only test for presence.
    trace: "object | None" = None

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValidationError("chunk nbytes must be >= 0")
        if self.ratio <= 0:
            raise ValidationError("chunk ratio must be > 0")

    @property
    def wire_bytes(self) -> int:
        """Bytes that cross the network for this chunk."""
        if self.wire_payload is not None:
            return len(self.wire_payload)
        return max(1, int(round(self.nbytes / self.ratio)))


class ChunkSource(Protocol):
    """Anything that yields the chunks of one stream, in order."""

    def chunks(self) -> Iterator[Chunk]: ...


@dataclass
class SyntheticChunkSource:
    """Metadata-only chunk stream for simulation.

    Per-chunk ratios are ``ratio_mean`` with mild lognormal jitter
    (``ratio_sigma``), clipped to stay positive — matching the paper's
    "on average ... 2:1" phrasing.
    """

    stream_id: str
    num_chunks: int
    chunk_bytes: int
    ratio_mean: float = 2.0
    ratio_sigma: float = 0.05
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_chunks < 0:
            raise ValidationError("num_chunks must be >= 0")
        if self.chunk_bytes <= 0:
            raise ValidationError("chunk_bytes must be > 0")
        if self.ratio_mean <= 0:
            raise ValidationError("ratio_mean must be > 0")

    def chunks(self) -> Iterator[Chunk]:
        rng = make_rng(self.seed, "chunk-source", self.stream_id)
        for i in range(self.num_chunks):
            if self.ratio_sigma > 0:
                ratio = float(
                    self.ratio_mean * rng.lognormal(0.0, self.ratio_sigma)
                )
            else:
                ratio = self.ratio_mean
            yield Chunk(
                stream_id=self.stream_id,
                index=i,
                nbytes=self.chunk_bytes,
                ratio=max(ratio, 1.0),
            )


@dataclass
class DatasetChunkSource:
    """Live chunk stream rendered from a :class:`SpheresDataset`-like
    object exposing ``num_projections`` and ``chunk_payload(i)``."""

    stream_id: str
    dataset: object
    limit: int | None = None

    def chunks(self) -> Iterator[Chunk]:
        n = int(getattr(self.dataset, "num_projections"))
        if self.limit is not None:
            n = min(n, self.limit)
        for i in range(n):
            payload = self.dataset.chunk_payload(i)
            yield Chunk(
                stream_id=self.stream_id,
                index=i,
                nbytes=len(payload),
                payload=payload,
            )
