"""Synthetic tomographic "spheres" dataset (tomobank look-alike).

The phantom is a cylinder of polypropylene packed with borosilicate
glass spheres whose diameters are Gaussian-distributed in 38–45 µm
(following the tomobank *spheres* dataset description the paper cites).
A projection at angle θ is the X-ray transform: per detector pixel, the
attenuation line integral through matrix plus spheres.  Analytic chord
lengths make this exact and fast (no voxelization):

- chord through a sphere of radius r at perpendicular distance d:
  ``2·sqrt(r² − d²)``;
- chord through the cylinder likewise, per detector column.

Projections are normalized to detector counts and quantized to uint16 —
one projection of the paper's geometry (2304 × 2400 px) is exactly
11.0592 MB, the paper's streaming chunk size.  Mild detector noise is
optional; the default settings yield an LZ4 ratio close to the paper's
reported 2:1 average (the calibration test pins the acceptable band).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ValidationError
from repro.util.rng import make_rng

#: Detector geometry of the paper's chunks: rows x cols, uint16.
PAPER_DETECTOR_SHAPE: tuple[int, int] = (2304, 2400)
#: One X-ray projection = 11.0592 MB — the paper's unit of streaming work.
PAPER_CHUNK_BYTES: int = PAPER_DETECTOR_SHAPE[0] * PAPER_DETECTOR_SHAPE[1] * 2


@dataclass(frozen=True)
class Sphere:
    """One glass sphere: center (x, y, z) and radius, in µm."""

    x: float
    y: float
    z: float
    r: float


@dataclass
class SpheresPhantom:
    """Spheres packed in a cylindrical polypropylene matrix.

    Geometry units are µm.  The cylinder axis is z (the detector's row
    axis); projections rotate around it.
    """

    cylinder_radius: float = 1000.0
    cylinder_height: float = 960.0
    sphere_diameter_mean: float = 41.5
    sphere_diameter_std: float = 1.2
    volume_fraction: float = 0.30
    #: linear attenuation, 1/µm (soft polymer vs glass)
    mu_matrix: float = 5e-5
    mu_sphere: float = 2.4e-4
    seed: int = 7
    spheres: list[Sphere] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.volume_fraction < 0.65:
            raise ValidationError(
                "volume_fraction must be in [0, 0.65) (random packing limit)"
            )
        if not self.spheres:
            self._generate()

    def _generate(self) -> None:
        rng = make_rng(self.seed, "spheres-phantom")
        cyl_vol = math.pi * self.cylinder_radius**2 * self.cylinder_height
        target = self.volume_fraction * cyl_vol
        placed = 0.0
        # Random sequential placement without overlap checking: at the
        # paper's ~sub-percent sphere/cylinder volume ratios overlaps are
        # rare and irrelevant to compressibility/projection structure.
        while placed < target:
            d = rng.normal(self.sphere_diameter_mean, self.sphere_diameter_std)
            d = float(np.clip(d, 38.0, 45.0))
            r = d / 2.0
            rho = self.cylinder_radius * math.sqrt(rng.uniform())
            phi = rng.uniform(0.0, 2.0 * math.pi)
            z = rng.uniform(r, self.cylinder_height - r)
            self.spheres.append(
                Sphere(rho * math.cos(phi), rho * math.sin(phi), z, r)
            )
            placed += 4.0 / 3.0 * math.pi * r**3

    def __len__(self) -> int:
        return len(self.spheres)


class SpheresDataset:
    """Renders projections of a :class:`SpheresPhantom` as uint16 chunks."""

    def __init__(
        self,
        phantom: SpheresPhantom | None = None,
        *,
        detector_shape: tuple[int, int] = PAPER_DETECTOR_SHAPE,
        num_projections: int = 1447,  # ~16 GB at the paper chunk size
        counts_full: float = 48000.0,
        noise: float = 0.6,
        fov_scale: float = 2.6,
        v_margin: float = 0.15,
        seed: int = 7,
    ) -> None:
        rows, cols = detector_shape
        if rows < 1 or cols < 1:
            raise ValidationError("detector_shape must be positive")
        if num_projections < 1:
            raise ValidationError("num_projections must be >= 1")
        if fov_scale < 2.0:
            raise ValidationError("fov_scale must cover the cylinder (>= 2)")
        if v_margin < 0.0:
            raise ValidationError("v_margin must be >= 0")
        self.phantom = phantom or SpheresPhantom(seed=seed)
        self.detector_shape = detector_shape
        self.num_projections = num_projections
        self.counts_full = counts_full
        self.noise = noise
        self.v_margin = v_margin
        self.seed = seed
        # Detector pixel pitch: the field of view covers fov_scale x the
        # cylinder radius across columns and the cylinder height plus
        # v_margin above and below along rows — beamline frames keep air
        # margins around the sample, and those saturate flat (see
        # white_level below), which is what makes real LZ4 ratios land
        # near the paper's 2:1.
        self._pitch_u = fov_scale * self.phantom.cylinder_radius / cols
        v_span = self.phantom.cylinder_height * (1.0 + 2.0 * v_margin)
        self._pitch_v = v_span / rows
        self._v_offset = self.phantom.cylinder_height * v_margin
        # Unattenuated beam saturates the detector's white level, so air
        # pixels clip to one exact value (flat-field behaviour).
        self.white_level = counts_full * 0.9995

    @property
    def chunk_bytes(self) -> int:
        rows, cols = self.detector_shape
        return rows * cols * 2

    @property
    def total_bytes(self) -> int:
        return self.chunk_bytes * self.num_projections

    def angle(self, index: int) -> float:
        """Projection angle (radians) for projection ``index`` (0..π sweep)."""
        return math.pi * index / self.num_projections

    def projection(self, index: int) -> np.ndarray:
        """Render projection ``index`` as a (rows, cols) uint16 image."""
        if not 0 <= index < self.num_projections:
            raise ValidationError(
                f"projection index {index} out of range [0, {self.num_projections})"
            )
        theta = self.angle(index)
        rows, cols = self.detector_shape
        ph = self.phantom

        # Detector coordinates (µm): u across the cylinder, v along z.
        u = (np.arange(cols) - cols / 2.0 + 0.5) * self._pitch_u
        v = (np.arange(rows) + 0.5) * self._pitch_v - self._v_offset

        # Path length through the cylinder per column, only for rows that
        # intersect the (finite-height) cylinder.
        cyl = 2.0 * np.sqrt(np.maximum(ph.cylinder_radius**2 - u**2, 0.0))
        in_cyl = ((v >= 0.0) & (v <= ph.cylinder_height)).astype(float)
        path = in_cyl[:, None] * (cyl * ph.mu_matrix)[None, :]

        # Each sphere projects onto the detector at
        # (u0 = x·cosθ + y·sinθ, v0 = z); add (µ_sphere−µ_matrix)·chord.
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        dmu = ph.mu_sphere - ph.mu_matrix
        pitch_u, pitch_v = self._pitch_u, self._pitch_v
        for s in ph.spheres:
            u0 = s.x * cos_t + s.y * sin_t
            v0 = s.z
            # Pixel bounding box of the sphere's disk footprint.
            c0 = int((u0 - s.r) / pitch_u + cols / 2.0)
            c1 = int((u0 + s.r) / pitch_u + cols / 2.0) + 2
            r0 = int((v0 - s.r + self._v_offset) / pitch_v)
            r1 = int((v0 + s.r + self._v_offset) / pitch_v) + 2
            c0, c1 = max(c0, 0), min(c1, cols)
            r0, r1 = max(r0, 0), min(r1, rows)
            if c0 >= c1 or r0 >= r1:
                continue
            uu = u[c0:c1] - u0
            vv = v[r0:r1] - v0
            d2 = uu[None, :] ** 2 + vv[:, None] ** 2
            chord = 2.0 * np.sqrt(np.maximum(s.r**2 - d2, 0.0))
            path[r0:r1, c0:c1] += dmu * chord

        # Beer–Lambert to detector counts; air saturates the white level
        # so margins are exactly flat, then quantize to uint16.
        counts = self.counts_full * np.exp(-path)
        if self.noise > 0.0:
            rng = make_rng(self.seed, "detector-noise", index)
            counts = counts + rng.normal(0.0, self.noise, counts.shape)
        counts = np.minimum(counts, self.white_level)
        return np.clip(np.rint(counts), 0, 65535).astype(np.uint16)

    def chunk_payload(self, index: int) -> bytes:
        """Projection ``index`` serialized as the paper's chunk payload."""
        return self.projection(index).tobytes()
