"""Minimal chunked-array container — the HDF5 stand-in.

The paper reads source data through hdf5; the runtime only needs "a file
of equal-sized chunks with a little metadata".  The layout is
footer-based so the writer streams chunks straight to disk (a 16 GB
dataset must never be buffered in RAM):

.. code-block:: text

    magic    "RCHK"                        4 bytes
    version  u32                           (currently 2)
    data     chunk payloads, back to back  (optionally codec-compressed)
    index    nchunks x (u64 offset, u64 nbytes)
    header   JSON {dtype, shape, chunk_shape, nchunks, codec}
    footer   u64 index_offset | u32 header_len | u32 nchunks | "KHCR"

All integers little-endian.  Reading seeks to the fixed-size footer,
then the header and index.  Payload compression with any
:class:`repro.compress.Codec` is supported so examples can stage
compressed datasets on disk.
"""

from __future__ import annotations

import io
import json
import os
import struct

import numpy as np

from repro.compress.codec import Codec
from repro.util.errors import ValidationError

_MAGIC = b"RCHK"
_FOOTER_MAGIC = b"KHCR"
_VERSION = 2
_PREAMBLE = struct.Struct("<4sI")
_INDEX_ENTRY = struct.Struct("<QQ")
_FOOTER = struct.Struct("<QII4s")


class ChunkedContainer:
    """Write-once / read-many chunked array file."""

    # -- writing -----------------------------------------------------------

    class Writer:
        """Streams chunks to disk; finalizes index/header/footer on close."""

        def __init__(
            self,
            path: str | os.PathLike,
            chunk_shape: tuple[int, ...],
            dtype: str = "uint16",
            codec: Codec | None = None,
        ) -> None:
            self.path = os.fspath(path)
            self.chunk_shape = tuple(int(x) for x in chunk_shape)
            self.dtype = np.dtype(dtype)
            self.codec = codec
            self._entries: list[tuple[int, int]] = []
            self._file: io.BufferedWriter | None = open(self.path, "wb")
            self._file.write(_PREAMBLE.pack(_MAGIC, _VERSION))
            self._offset = _PREAMBLE.size

        def append(self, chunk: np.ndarray) -> None:
            """Append one chunk (must match chunk_shape/dtype)."""
            if self._file is None:
                raise ValidationError("writer already closed")
            arr = np.asarray(chunk)
            if arr.shape != self.chunk_shape:
                raise ValidationError(
                    f"chunk shape {arr.shape} != {self.chunk_shape}"
                )
            if arr.dtype != self.dtype:
                raise ValidationError(
                    f"chunk dtype {arr.dtype} != {self.dtype}"
                )
            payload = arr.tobytes()
            if self.codec is not None:
                payload = self.codec.compress(payload)
            self._file.write(payload)
            self._entries.append((self._offset, len(payload)))
            self._offset += len(payload)

        def close(self) -> None:
            if self._file is None:
                return
            f = self._file
            nchunks = len(self._entries)
            index_offset = self._offset
            for offset, nbytes in self._entries:
                f.write(_INDEX_ENTRY.pack(offset, nbytes))
            header = json.dumps(
                {
                    "dtype": self.dtype.name,
                    "shape": [nchunks, *self.chunk_shape],
                    "chunk_shape": list(self.chunk_shape),
                    "nchunks": nchunks,
                    "codec": self.codec.name if self.codec else "null",
                }
            ).encode()
            f.write(header)
            f.write(
                _FOOTER.pack(index_offset, len(header), nchunks, _FOOTER_MAGIC)
            )
            f.close()
            self._file = None

        def __enter__(self) -> "ChunkedContainer.Writer":
            return self

        def __exit__(self, *exc) -> None:
            self.close()

    # -- reading -------------------------------------------------------------

    def __init__(self, path: str | os.PathLike, codec: Codec | None = None):
        self.path = os.fspath(path)
        self._codec = codec
        size = os.path.getsize(self.path)
        if size < _PREAMBLE.size + _FOOTER.size:
            raise ValidationError(f"{self.path}: too short to be a container")
        with open(self.path, "rb") as f:
            magic, version = _PREAMBLE.unpack(f.read(_PREAMBLE.size))
            if magic != _MAGIC:
                raise ValidationError(f"{self.path}: not an RCHK container")
            if version != _VERSION:
                raise ValidationError(
                    f"{self.path}: unsupported version {version}"
                )
            f.seek(size - _FOOTER.size)
            index_offset, hlen, nchunks, fmagic = _FOOTER.unpack(
                f.read(_FOOTER.size)
            )
            if fmagic != _FOOTER_MAGIC:
                raise ValidationError(f"{self.path}: bad footer (truncated?)")
            index_size = nchunks * _INDEX_ENTRY.size
            if index_offset + index_size + hlen + _FOOTER.size != size:
                raise ValidationError(f"{self.path}: inconsistent footer")
            f.seek(index_offset)
            index_raw = f.read(index_size)
            self._index = [
                _INDEX_ENTRY.unpack_from(index_raw, i * _INDEX_ENTRY.size)
                for i in range(nchunks)
            ]
            header = json.loads(f.read(hlen).decode())
        self.dtype = np.dtype(header["dtype"])
        self.chunk_shape = tuple(header["chunk_shape"])
        self.shape = tuple(header["shape"])
        self.codec_name = header.get("codec", "null")
        if self.codec_name != "null" and codec is None:
            raise ValidationError(
                f"{self.path}: stored with codec {self.codec_name!r}; "
                "pass a matching codec to read"
            )
        if codec is not None and self.codec_name not in ("null", codec.name):
            raise ValidationError(
                f"{self.path}: stored with codec {self.codec_name!r}, "
                f"got {codec.name!r}"
            )

    def __len__(self) -> int:
        return len(self._index)

    def read_raw(self, index: int) -> bytes:
        """Read one chunk's stored payload (possibly compressed)."""
        if not 0 <= index < len(self):
            raise ValidationError(f"chunk index {index} out of range")
        offset, nbytes = self._index[index]
        with open(self.path, "rb") as f:
            f.seek(offset)
            payload = f.read(nbytes)
        if len(payload) != nbytes:
            raise ValidationError(f"{self.path}: truncated chunk {index}")
        return payload

    def read(self, index: int) -> np.ndarray:
        """Read and decode one chunk as an ndarray."""
        payload = self.read_raw(index)
        if self.codec_name != "null":
            assert self._codec is not None  # checked in __init__
            payload = self._codec.decompress(payload)
        arr = np.frombuffer(payload, dtype=self.dtype)
        return arr.reshape(self.chunk_shape)

    def __iter__(self):
        """Iterate chunks in order (streaming read)."""
        for i in range(len(self)):
            yield self.read(i)

    @classmethod
    def create(
        cls,
        path: str | os.PathLike,
        chunk_shape: tuple[int, ...],
        dtype: str = "uint16",
        codec: Codec | None = None,
    ) -> "ChunkedContainer.Writer":
        """Open a writer; use as a context manager."""
        return cls.Writer(path, chunk_shape, dtype, codec)
