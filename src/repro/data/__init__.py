"""Scientific data substrate.

The paper streams "a synthesized dataset of 16 GB, which mirrors real
tomographic datasets" (tomobank's *spheres* dataset: borosilicate glass
spheres, 38–45 µm Gaussian-distributed diameters, in a polypropylene
matrix) in chunks of 11.0592 MB — exactly one X-ray projection
(2304 × 2400 detector pixels × 2 bytes).

- :mod:`repro.data.spheres` — the phantom and analytic projection
  generator (line integrals through spheres; vectorized numpy);
- :mod:`repro.data.chunking` — the :class:`Chunk` unit of streaming work
  and helpers to cut a dataset into projection-sized chunks;
- :mod:`repro.data.container` — a minimal chunked-array container file
  (the HDF5 stand-in; see DESIGN.md §2).
"""

from repro.data.chunking import Chunk, ChunkSource, SyntheticChunkSource
from repro.data.container import ChunkedContainer
from repro.data.spheres import (
    PAPER_CHUNK_BYTES,
    PAPER_DETECTOR_SHAPE,
    SpheresDataset,
    SpheresPhantom,
)

__all__ = [
    "Chunk",
    "ChunkSource",
    "ChunkedContainer",
    "PAPER_CHUNK_BYTES",
    "PAPER_DETECTOR_SHAPE",
    "SpheresDataset",
    "SpheresPhantom",
    "SyntheticChunkSource",
]
