"""Per-chunk tracing: stage timelines and queue-wait analysis.

When a :class:`~repro.core.runtime.SimRuntime` is built with
``trace=True``, every stage records a :class:`StageSpan` per chunk:
when work started, when it finished, and where it ran.  From the spans
the tracer derives the numbers a performance engineer actually wants:

- per-stage service-time statistics,
- per-stage *queue wait* (gap between the previous stage finishing a
  chunk and the next stage starting it — where backpressure lives),
- end-to-end pipeline residence per chunk,
- the bottleneck stage (the one with the highest busy utilization).

This is the paper's "bottlenecks within the end-to-end pipeline shift
across different segments" analysis (§4.1), made inspectable.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.util.timeseries import WindowStats


@dataclass(frozen=True)
class StageSpan:
    """One stage's work interval for one chunk."""

    stream_id: str
    chunk_index: int
    stage: str
    start: float
    end: float
    core: str | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StageSummary:
    """Aggregated timing for one stage of one stream."""

    service: WindowStats = field(default_factory=WindowStats)
    queue_wait: WindowStats = field(default_factory=WindowStats)
    busy_seconds: float = 0.0
    chunks: int = 0


class ChunkTracer:
    """Collects stage spans; derives timelines and summaries."""

    def __init__(self) -> None:
        #: (stream, chunk) -> spans in pipeline order of recording.
        self._spans: dict[tuple[str, int], list[StageSpan]] = defaultdict(list)
        #: stream -> {stage -> thread count}, supplied by the runtime so
        #: bottleneck detection can use per-thread utilization.
        self._threads: dict[str, dict[str, int]] = {}
        self.total_spans = 0

    def set_thread_counts(self, stream_id: str, counts: dict[str, int]) -> None:
        """Record how many threads serve each stage of a stream."""
        self._threads[stream_id] = dict(counts)

    # -- recording -------------------------------------------------------

    def record(
        self,
        stream_id: str,
        chunk_index: int,
        stage: str,
        start: float,
        end: float,
        core: str | None = None,
    ) -> None:
        if end < start:
            raise ValueError(
                f"span for {stream_id}#{chunk_index}/{stage} ends before it starts"
            )
        self._spans[(stream_id, chunk_index)].append(
            StageSpan(stream_id, chunk_index, stage, start, end, core)
        )
        self.total_spans += 1

    # -- queries -----------------------------------------------------------

    def timeline(self, stream_id: str, chunk_index: int) -> list[StageSpan]:
        """Spans of one chunk, ordered by start time."""
        spans = self._spans.get((stream_id, chunk_index), [])
        return sorted(spans, key=lambda s: (s.start, s.end))

    def residence_time(self, stream_id: str, chunk_index: int) -> float:
        """First-start to last-end across the chunk's pipeline."""
        tl = self.timeline(stream_id, chunk_index)
        if not tl:
            return 0.0
        return tl[-1].end - tl[0].start

    def chunks_of(self, stream_id: str) -> list[int]:
        return sorted(
            idx for (sid, idx) in self._spans if sid == stream_id
        )

    def summarize(self, stream_id: str) -> dict[str, StageSummary]:
        """Per-stage service/queue-wait statistics for one stream."""
        out: dict[str, StageSummary] = defaultdict(StageSummary)
        for idx in self.chunks_of(stream_id):
            tl = self.timeline(stream_id, idx)
            prev_end: float | None = None
            for span in tl:
                s = out[span.stage]
                s.service.add(span.duration)
                s.busy_seconds += span.duration
                s.chunks += 1
                if prev_end is not None:
                    s.queue_wait.add(max(0.0, span.start - prev_end))
                prev_end = span.end
        return dict(out)

    def stage_utilization(self, stream_id: str) -> dict[str, float]:
        """Busy fraction per stage: busy_seconds / (threads × span).

        Needs thread counts (:meth:`set_thread_counts`); stages without
        a known count assume 1 thread.
        """
        spans = [
            s
            for (sid, _), lst in self._spans.items()
            if sid == stream_id
            for s in lst
        ]
        if not spans:
            return {}
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        makespan = max(t1 - t0, 1e-12)
        counts = self._threads.get(stream_id, {})
        summary = self.summarize(stream_id)
        return {
            stage: s.busy_seconds / (counts.get(stage, 1) * makespan)
            for stage, s in summary.items()
        }

    def bottleneck(self, stream_id: str) -> str | None:
        """The stage whose threads are busiest (highest utilization).

        Under backpressure the bottleneck stage runs (nearly) always
        busy while its neighbours idle on queue waits; per-thread
        utilization identifies it even when thread counts differ wildly
        between stages.
        """
        util = self.stage_utilization(stream_id)
        if not util:
            return None
        return max(util.items(), key=lambda kv: kv[1])[0]

    def report(self, stream_id: str) -> str:
        """Human-readable per-stage table."""
        summary = self.summarize(stream_id)
        util = self.stage_utilization(stream_id)
        counts = self._threads.get(stream_id, {})
        lines = [f"trace summary for stream {stream_id!r}:"]
        lines.append(
            f"  {'stage':<12} {'thr':>4} {'chunks':>6} {'service(ms)':>12} "
            f"{'q-wait(ms)':>11} {'busy(s)':>8} {'util':>5}"
        )
        for stage, s in summary.items():
            service_ms = s.service.mean * 1e3 if s.chunks else 0.0
            wait_ms = s.queue_wait.mean * 1e3 if s.queue_wait.n else 0.0
            lines.append(
                f"  {stage:<12} {counts.get(stage, 1):>4} {s.chunks:>6} "
                f"{service_ms:>12.2f} {wait_ms:>11.2f} "
                f"{s.busy_seconds:>8.2f} {util.get(stage, 0.0):>5.2f}"
            )
        bn = self.bottleneck(stream_id)
        if bn:
            lines.append(f"  bottleneck stage: {bn}")
        return "\n".join(lines)
