"""Per-chunk tracing: stage timelines and queue-wait analysis.

When a :class:`~repro.core.runtime.SimRuntime` is built with
``trace=True``, every stage records a :class:`StageSpan` per chunk:
when work started, when it finished, and where it ran.  Since the
telemetry subsystem landed, this module is a thin adapter: spans live
in a :class:`~repro.telemetry.spans.SpanStore` and every derived number
(per-stage service time, queue wait, the bottleneck stage) comes from
:class:`~repro.telemetry.report.PipelineReport` — the *same* code path
the live pipeline's telemetry uses, so a simulated trace and a live
trace answer "which stage is the bottleneck?" identically.

This is the paper's "bottlenecks within the end-to-end pipeline shift
across different segments" analysis (§4.1), made inspectable.
"""

from __future__ import annotations

from repro.telemetry.report import PipelineReport, StageAggregate
from repro.telemetry.spans import Span, SpanStore

#: One stage's work interval for one chunk.  ``StageSpan`` predates the
#: telemetry subsystem; it is now literally a telemetry span (the old
#: ``chunk_index``/``core`` field names remain available as properties).
StageSpan = Span

#: Aggregated per-stage timing; kept as an alias for trace-era imports.
StageSummary = StageAggregate


class ChunkTracer:
    """Collects stage spans; derives timelines and summaries.

    Spans land in ``self.spans`` — pass a shared
    :class:`~repro.telemetry.spans.SpanStore` (or a whole
    :class:`~repro.telemetry.Telemetry`, which also feeds the
    stage-seconds histogram) to make the trace visible to exporters.
    """

    def __init__(self, spans: SpanStore | None = None, *, telemetry=None) -> None:
        if spans is None:
            spans = telemetry.spans if telemetry is not None else SpanStore()
        self.spans = spans
        self._telemetry = telemetry
        #: stream -> {stage -> thread count}, supplied by the runtime so
        #: bottleneck detection can use per-thread utilization.
        self._threads: dict[str, dict[str, int]] = {}

    @property
    def total_spans(self) -> int:
        return len(self.spans)

    def set_thread_counts(self, stream_id: str, counts: dict[str, int]) -> None:
        """Record how many threads serve each stage of a stream."""
        self._threads[stream_id] = dict(counts)

    # -- recording -------------------------------------------------------

    def record(
        self,
        stream_id: str,
        chunk_index: int,
        stage: str,
        start: float,
        end: float,
        core: str | None = None,
    ) -> None:
        if self._telemetry is not None:
            self._telemetry.record_span(
                stage, start, end,
                stream_id=stream_id, chunk_id=chunk_index, track=core,
            )
        else:
            self.spans.record(
                stage, start, end,
                stream_id=stream_id, chunk_id=chunk_index, track=core,
            )

    # -- queries -----------------------------------------------------------

    def timeline(self, stream_id: str, chunk_index: int) -> list[StageSpan]:
        """Spans of one chunk, ordered by start time."""
        return self.spans.for_chunk(stream_id, chunk_index)

    def residence_time(self, stream_id: str, chunk_index: int) -> float:
        """First-start to last-end across the chunk's pipeline."""
        tl = self.timeline(stream_id, chunk_index)
        if not tl:
            return 0.0
        return tl[-1].end - tl[0].start

    def chunks_of(self, stream_id: str) -> list[int]:
        return sorted({s.chunk_id for s in self.spans.for_stream(stream_id)})

    def pipeline_report(self, stream_id: str) -> PipelineReport:
        """The unified telemetry report for one stream's trace."""
        return PipelineReport.from_spans(
            self.spans.for_stream(stream_id),
            stream_id=stream_id,
            thread_counts=self._threads.get(stream_id),
        )

    def summarize(self, stream_id: str) -> dict[str, StageSummary]:
        """Per-stage service/queue-wait statistics for one stream."""
        return self.pipeline_report(stream_id).stages

    def stage_utilization(self, stream_id: str) -> dict[str, float]:
        """Busy fraction per stage: busy_seconds / (threads × span).

        Needs thread counts (:meth:`set_thread_counts`); stages without
        a known count assume 1 thread.
        """
        return self.pipeline_report(stream_id).stage_utilization()

    def bottleneck(self, stream_id: str) -> str | None:
        """The stage whose threads are busiest (highest utilization).

        Under backpressure the bottleneck stage runs (nearly) always
        busy while its neighbours idle on queue waits; per-thread
        utilization identifies it even when thread counts differ wildly
        between stages.
        """
        return self.pipeline_report(stream_id).bottleneck

    def report(self, stream_id: str) -> str:
        """Human-readable per-stage table."""
        return self.pipeline_report(stream_id).render()
