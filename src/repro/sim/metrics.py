"""Metrics collection for the fluid simulator.

A :class:`MetricsCollector` registers as a :class:`FlowNetwork` interval
observer and integrates resource consumption over time.  It produces the
raw material for the paper's exhibits:

- per-core busy seconds  → core-usage maps (Figures 6, 8b, 9b),
- per-core remote-access (QPI) bytes → Figure 7,
- per-resource utilization → sanity checks in tests and ablations.

Chunk-completion throughput is recorded at the runtime layer (it knows
payload sizes); this module only sees resources and rates.

With a :class:`~repro.telemetry.registry.MetricRegistry` attached the
collector mirrors its accumulations into labeled counters
(``sim_resource_units_total{resource,kind}``) and publishes utilization
gauges on demand (:meth:`publish_utilization`), so simulated resource
consumption is inspectable through the same exporters as live metrics.
"""

from __future__ import annotations

from collections import defaultdict

from repro.sim.engine import Engine
from repro.sim.flows import Flow, FlowNetwork, Resource


class MetricsCollector:
    """Integrates per-resource and per-core consumption over sim time."""

    def __init__(
        self, engine: Engine, network: FlowNetwork, *, registry=None
    ) -> None:
        self.engine = engine
        self.network = network
        self.registry = registry
        self._usage_counters: dict[str, object] = {}
        self._usage_family = (
            registry.counter(
                "sim_resource_units_total",
                "Simulated units consumed per resource "
                "(core-seconds, bytes, ...)",
                ("resource", "kind"),
            )
            if registry is not None
            else None
        )
        self.start_time = engine.now
        #: resource name -> total units consumed (core-seconds, bytes, ...)
        self.resource_usage: dict[str, float] = defaultdict(float)
        #: resource name -> capacity (units/s), recorded on first sighting
        self.resource_capacity: dict[str, float] = {}
        #: core resource name -> bytes moved over any interconnect resource
        #: by flows executing on that core (the "remote memory access" of
        #: the paper's Figure 7)
        self.core_remote_bytes: dict[str, float] = defaultdict(float)
        #: core resource name -> bytes moved through memory controllers by
        #: flows executing on that core (local + remote; Fig 7 normalizer)
        self.core_mem_bytes: dict[str, float] = defaultdict(float)
        network.add_observer(self._on_interval)

    # -- observer --------------------------------------------------------

    def _on_interval(self, t0: float, t1: float, flows: list[Flow]) -> None:
        dt = t1 - t0
        if dt <= 0.0:
            return
        for f in flows:
            if f.rate <= 0.0:
                continue
            core_name = f.tags.get("core")
            for r, d in f.demands.items():
                amount = f.rate * d * dt
                self.resource_usage[r.name] += amount
                self.resource_capacity.setdefault(r.name, r.capacity)
                kind = r.tags.get("kind")
                if self._usage_family is not None:
                    counter = self._usage_counters.get(r.name)
                    if counter is None:
                        counter = self._usage_family.labels(
                            resource=r.name, kind=kind or "other"
                        )
                        self._usage_counters[r.name] = counter
                    counter.inc(amount)
                if core_name is not None:
                    if kind == "interconnect":
                        self.core_remote_bytes[core_name] += amount
                    elif kind == "memory":
                        self.core_mem_bytes[core_name] += amount

    # -- reporting -------------------------------------------------------

    def reset(self) -> None:
        """Drop accumulated metrics; measurement restarts at ``now``.

        Call at the end of a warm-up phase so pipeline fill does not bias
        utilization averages.  Registry counters are *not* reset — they
        stay monotonic lifetime totals, as counters must.
        """
        self.start_time = self.engine.now
        self.resource_usage.clear()
        self.core_remote_bytes.clear()
        self.core_mem_bytes.clear()

    @property
    def elapsed(self) -> float:
        return self.engine.now - self.start_time

    def utilization(self, resource: Resource | str) -> float:
        """Fraction of a resource's capacity consumed since start/reset."""
        name = resource if isinstance(resource, str) else resource.name
        if self.elapsed <= 0.0:
            return 0.0
        cap = (
            resource.capacity
            if isinstance(resource, Resource)
            else self.resource_capacity.get(name, 0.0)
        )
        if cap <= 0.0:
            return 0.0
        return self.resource_usage.get(name, 0.0) / (cap * self.elapsed)

    def core_utilization_map(self, core_names: list[str]) -> dict[str, float]:
        """Utilization per named core (0 for cores never used)."""
        return {name: self.utilization(name) for name in core_names}

    def publish_utilization(self) -> None:
        """Set ``sim_resource_utilization`` gauges from current totals.

        No-op without an attached registry.  Gauges (not counters):
        utilization is an instantaneous ratio over the elapsed window,
        re-published whenever the runtime reports.
        """
        if self.registry is None:
            return
        family = self.registry.gauge(
            "sim_resource_utilization",
            "Fraction of simulated resource capacity consumed",
            ("resource",),
        )
        for name in self.resource_usage:
            family.labels(resource=name).set(self.utilization(name))

    def remote_access_map(
        self, core_names: list[str], *, normalize: bool = True
    ) -> dict[str, float]:
        """Per-core interconnect (remote-access) traffic, Figure-7 style.

        With ``normalize=True`` values are scaled so the busiest core is
        1.0 ("average normalized remote memory access bandwidth").
        """
        raw = {n: self.core_remote_bytes.get(n, 0.0) for n in core_names}
        if not normalize:
            return raw
        peak = max(raw.values(), default=0.0)
        if peak <= 0.0:
            return raw
        return {n: v / peak for n, v in raw.items()}
