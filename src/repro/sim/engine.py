"""Event loop and process model for the discrete-event simulator.

The kernel is intentionally minimal: an event heap ordered by
``(time, priority, sequence)`` and generator-based processes that yield
*waitables* (:class:`Event` subclasses).  It exists so the runtime model
can express pipeline threads naturally::

    def compressor(engine, inq, outq, ...):
        while True:
            chunk = yield inq.get()
            yield network.run(make_flow(chunk))
            yield outq.put(compressed(chunk))

Design notes
------------
- Events are one-shot.  Triggering an already-triggered event raises
  :class:`~repro.util.errors.SimulationError` — double triggers are
  always bugs in this codebase.
- Processes are themselves events (they trigger when the generator
  returns), so ``yield engine.process(...)`` composes.
- No real time, no threads: the simulated clock jumps from event to
  event, which is what makes modelling 32 "threads" on one Python core
  possible at all (see DESIGN.md §2 on the GIL substitution).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator
from typing import Any

from repro.util.errors import SimulationError

#: Priority for ordinary events.
NORMAL = 1
#: Priority for events that must run before ordinary ones at the same time
#: (used by the flow network to settle allocations before observers run).
URGENT = 0


class Event:
    """A one-shot occurrence processes can wait on.

    Life cycle: *pending* → ``trigger(value)`` → scheduled on the heap →
    *processed* (callbacks run).  ``value`` is delivered to every waiting
    process as the result of its ``yield``.
    """

    __slots__ = ("engine", "callbacks", "_value", "_triggered", "_processed")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def trigger(self, value: Any = None, *, priority: int = NORMAL) -> "Event":
        """Schedule this event to fire now; idempotence is an error."""
        if self._triggered:
            raise SimulationError(f"{self!r} triggered twice")
        self._triggered = True
        self._value = value
        self.engine._schedule(0.0, self, priority)
        return self

    # Alias matching common DES naming.
    succeed = trigger

    def _process(self) -> None:
        if self._processed:
            raise SimulationError(f"{self!r} processed twice")
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at t={self.engine.now:.6g}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._triggered = True
        self._value = value
        engine._schedule(delay, self, NORMAL)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator; completes (as an event) when it returns.

    The generator yields :class:`Event` instances and is resumed with the
    event's value.  Exceptions raised inside the generator propagate out
    of :meth:`Engine.run` — simulations are deterministic programs, and a
    crash in a model is a bug to surface, not swallow.
    """

    __slots__ = ("gen", "name", "_target", "_alive")

    def __init__(
        self,
        engine: "Engine",
        gen: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(engine)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Event | None = None
        self._alive = True
        # Bootstrap: resume once the engine starts (or immediately if running).
        init = Event(engine)
        init.callbacks.append(self._resume)
        init.trigger(None, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self._alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._target
        if target is not None and not target.processed:
            # Detach from the event we were waiting on (it may already be
            # *triggered* — e.g. a Timeout, which is triggered from birth
            # — but as long as it has not been processed our callback is
            # still registered and must go).
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        kick = Event(self.engine)
        kick.callbacks.append(lambda ev: self._resume(ev, throw=Interrupt(cause)))
        kick.trigger(None, priority=URGENT)

    def _resume(self, event: Event, *, throw: BaseException | None = None) -> None:
        self._target = None
        try:
            if throw is not None:
                nxt = self.gen.throw(throw)
            else:
                nxt = self.gen.send(event.value)
        except StopIteration as stop:
            self._alive = False
            self.trigger(stop.value)
            return
        if not isinstance(nxt, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {nxt!r}; processes must yield Events"
            )
        if nxt.processed:
            raise SimulationError(
                f"process {self.name!r} waited on already-processed event {nxt!r}"
            )
        self._target = nxt
        nxt.callbacks.append(self._resume)


class Engine:
    """The simulation clock and event heap."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def _schedule(self, delay: float, event: Event, priority: int) -> None:
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event)
        )

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, gen: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Register a generator as a simulated process."""
        return Process(self, gen, name)

    def all_of(self, events: list[Event]) -> Event:
        """Event that fires when every event in ``events`` has fired.

        The composite value is the list of individual values, in order.
        """
        done = self.event()
        if not events:
            done.trigger([])
            return done
        remaining = {"n": len(events)}
        values: list[Any] = [None] * len(events)

        def make_cb(i: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                values[i] = ev.value
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    done.trigger(values)

            return cb

        for i, ev in enumerate(events):
            if ev.processed:
                raise SimulationError("all_of() got an already-processed event")
            ev.callbacks.append(make_cb(i))
        return done

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the single next event; error when the heap is empty."""
        if not self._heap:
            raise SimulationError("step() on empty event heap")
        t, _prio, _seq, event = heapq.heappop(self._heap)
        if t < self._now - 1e-12:
            raise SimulationError(
                f"event scheduled in the past: {t} < {self._now}"
            )
        self._now = max(self._now, t)
        event._process()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until ``until`` (a time or an event) or event exhaustion.

        Returns the event's value when ``until`` is an event.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._heap:
                    raise SimulationError(
                        "event heap exhausted before target event fired "
                        "(deadlock: a process is waiting on something that "
                        "will never trigger)"
                    )
                self.step()
            return stop.value
        horizon = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        if until is not None:
            self._now = max(self._now, horizon)
        return None

    def peek(self) -> float:
        """Time of the next event, or +inf when the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")
