"""Bounded FIFO stores — the simulated analogue of the paper's
thread-safe queues between pipeline stages (Figure 2).

A ``put`` on a full store blocks the producer and a ``get`` on an empty
store blocks the consumer, which is exactly the backpressure that shifts
the end-to-end bottleneck between compression, network and decompression
stages in the paper's Figure 12 analysis.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Engine, Event
from repro.util.errors import ValidationError
from repro.util.timeseries import TimeSeries


class Store:
    """Bounded FIFO channel between simulated processes.

    ``capacity`` bounds the number of buffered items (``None`` =
    unbounded).  Waiting producers/consumers are served in FIFO order,
    mirroring a condition-variable queue.  With ``monitor=True`` the
    store records a (time, depth) sample on every accepted put/get —
    the raw material for queue-occupancy analysis.
    """

    def __init__(
        self,
        engine: Engine,
        capacity: int | None = None,
        name: str = "",
        *,
        monitor: bool = False,
        telemetry: "Any | None" = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValidationError(f"store capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.depth_series: TimeSeries | None = TimeSeries() if monitor else None
        # With telemetry attached, every accepted put/get also publishes
        # the instantaneous depth as ``pipeline_queue_depth{queue}`` —
        # the gauge the watchdog's backpressure detector reads, so
        # sustained pressure is visible *mid-run* on the virtual clock
        # (the end-of-run report only writes summary stats).
        self._gauge = (
            telemetry.queue_gauge(name)
            if telemetry is not None and name
            else None
        )
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def _sample(self) -> None:
        if self.depth_series is not None:
            self.depth_series.add(self.engine.now, float(len(self._items)))
        if self._gauge is not None:
            self._gauge.set(float(len(self._items)))

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        ev = self.engine.event()
        if self._getters and not self._items:
            # Hand straight to the oldest waiting consumer.
            getter = self._getters.popleft()
            getter.trigger(item)
            ev.trigger(None)
        elif not self.is_full:
            self._items.append(item)
            ev.trigger(None)
        else:
            self._putters.append((ev, item))
        self._sample()
        return ev

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = self.engine.event()
        if self._items:
            item = self._items.popleft()
            ev.trigger(item)
            self._admit_waiting_putter()
        else:
            self._getters.append(ev)
        self._sample()
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters and not self._items:
            self._getters.popleft().trigger(item)
            return True
        if self.is_full:
            return False
        self._items.append(item)
        self._sample()
        return True

    def force_put(self, item: Any) -> None:
        """Enqueue ignoring capacity (used for end-of-stream sentinels)."""
        if self._getters and not self._items:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)
        self._sample()

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.is_full:
            put_ev, item = self._putters.popleft()
            if self._getters and not self._items:
                self._getters.popleft().trigger(item)
            else:
                self._items.append(item)
            put_ev.trigger(None)
