"""Discrete-event simulation substrate.

A small, self-contained DES kernel in three layers:

- :mod:`repro.sim.engine` — event heap, simulated clock, generator-based
  processes (a simpy-like kernel written from scratch);
- :mod:`repro.sim.queues` — bounded FIFO stores connecting pipeline
  stages, providing the backpressure the paper's thread-safe queues give;
- :mod:`repro.sim.flows` — a *fluid* (flow-level) model of shared
  resources: cores, memory controllers, QPI links and NICs are capacities,
  work items are flows with per-unit demand vectors, and rates are
  assigned max-min fairly via progressive filling.

Flow-level simulation is the standard technique for modelling
bandwidth-shared systems (networks, memory systems) when per-packet /
per-cache-line detail is irrelevant to the question being asked; here the
questions are all about sustained throughput under contention, which the
fluid model answers exactly.
"""

from repro.sim.engine import Engine, Event, Interrupt, Process, Timeout
from repro.sim.flows import Flow, FlowNetwork, Resource, CoreResource
from repro.sim.metrics import MetricsCollector
from repro.sim.queues import Store

__all__ = [
    "CoreResource",
    "Engine",
    "Event",
    "Flow",
    "FlowNetwork",
    "Interrupt",
    "MetricsCollector",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
