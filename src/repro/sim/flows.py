"""Fluid (flow-level) model of shared hardware resources.

Every piece of shared hardware — a CPU core, a socket's memory
controller, a QPI link direction, a NIC — is a :class:`Resource` with a
capacity in *units per second* (core-seconds/s, bytes/s, bits/s).  A unit
of pipeline work (compress one chunk, receive one chunk) is a
:class:`Flow` carrying

- ``work``: how many work units it needs (typically bytes of payload),
- ``demands``: how much of each resource one work unit consumes, e.g.
  ``{core7: 1/0.58e9, mc0: 1.0, qpi01: 1.0, mc1: 0.5}`` for "compress a
  byte read remotely from socket 0 while running on socket 1".

The :class:`FlowNetwork` assigns each active flow a rate via progressive
filling (max-min fairness): all flows' rates grow together until some
resource saturates; flows crossing that resource freeze; repeat.  This is
the classic fluid approximation used by flow-level network simulators,
and it is exact for the steady-state questions the paper's evaluation
asks (sustained Gbps under contention).

Rates are recomputed only when the flow population changes (arrival,
completion, cancellation), so the cost is ``O(events × flows ×
resources)`` — trivially fast for pipeline-scale populations.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

from repro.sim.engine import Engine, Event, URGENT
from repro.util.errors import SimulationError, ValidationError

#: Relative slack used to decide a flow has finished (floating point).
_REL_EPS = 1e-9
_ABS_EPS = 1e-6


class Resource:
    """A shared capacity (bytes/s, core-seconds/s, bits/s ...)."""

    __slots__ = ("name", "capacity", "tags")

    def __init__(self, name: str, capacity: float, **tags: Any) -> None:
        if capacity <= 0:
            raise ValidationError(f"resource {name!r} capacity must be > 0")
        self.name = name
        self.capacity = float(capacity)
        self.tags = tags

    def effective_capacity(self, nflows: int) -> float:
        """Capacity offered when ``nflows`` flows are using the resource.

        Plain resources are load-independent; :class:`CoreResource`
        overrides this to model context-switch overhead.
        """
        return self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Resource {self.name} cap={self.capacity:g}>"


class CoreResource(Resource):
    """A CPU core whose deliverable capacity shrinks when oversubscribed.

    With ``n`` runnable software threads on one hardware core, context
    switching and cache thrash remove roughly ``csw_penalty`` of capacity
    per extra thread (Observation 2: going from 1 to 2 threads/core
    "nearly halves" per-thread compression speed — i.e. aggregate drops
    slightly below 1.0).
    """

    __slots__ = ("csw_penalty", "min_efficiency")

    def __init__(
        self,
        name: str,
        capacity: float = 1.0,
        csw_penalty: float = 0.03,
        min_efficiency: float = 0.5,
        **tags: Any,
    ) -> None:
        super().__init__(name, capacity, **tags)
        if not 0.0 <= csw_penalty < 1.0:
            raise ValidationError("csw_penalty must be in [0, 1)")
        self.csw_penalty = csw_penalty
        self.min_efficiency = min_efficiency

    def effective_capacity(self, nflows: int) -> float:
        if nflows <= 1:
            return self.capacity
        eff = max(self.min_efficiency, 1.0 - self.csw_penalty * (nflows - 1))
        return self.capacity * eff


class Flow:
    """A unit of work moving through shared resources at a fluid rate."""

    __slots__ = (
        "work",
        "remaining",
        "demands",
        "weight",
        "max_rate",
        "tags",
        "rate",
        "completion",
        "_active",
        "_cols",
        "_vals",
    )

    def __init__(
        self,
        work: float,
        demands: Mapping[Resource, float],
        *,
        weight: float = 1.0,
        max_rate: float | None = None,
        tags: Mapping[str, Any] | None = None,
    ) -> None:
        if work < 0:
            raise ValidationError(f"flow work must be >= 0, got {work}")
        if weight <= 0:
            raise ValidationError("flow weight must be > 0")
        if max_rate is not None and max_rate <= 0:
            raise ValidationError("flow max_rate must be > 0")
        cleaned = {r: float(d) for r, d in demands.items() if d > 0.0}
        if any(d < 0 for d in demands.values()):
            raise ValidationError("flow demands must be non-negative")
        if not cleaned and max_rate is None and work > 0:
            raise ValidationError(
                "flow with positive work needs at least one demand or a max_rate"
            )
        self.work = float(work)
        self.remaining = float(work)
        self.demands = cleaned
        self.weight = float(weight)
        self.max_rate = max_rate
        self.tags: dict[str, Any] = dict(tags or {})
        self.rate = 0.0
        self.completion: Event | None = None
        self._active = False

    @property
    def done_fraction(self) -> float:
        if self.work == 0:
            return 1.0
        return 1.0 - self.remaining / self.work

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.tags.get('label', '?')} remaining={self.remaining:g}"
            f" rate={self.rate:g}>"
        )


#: Observer signature: (t0, t1, active_flows) — flows carry their rate
#: over [t0, t1]; called just before rates change.
IntervalObserver = Callable[[float, float, list[Flow]], None]


class FlowNetwork:
    """Tracks active flows and assigns max-min fair rates."""

    #: Flow-population size at which allocation switches from the scalar
    #: reference implementation to the vectorized one.  Both compute the
    #: same rates (a property test pins them against each other); the
    #: vectorized path wins once per-reallocation work dominates.
    VECTORIZE_THRESHOLD = 24

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._flows: list[Flow] = []
        self._last_t = engine.now
        self._version = 0
        self._observers: list[IntervalObserver] = []
        # Vectorized-path caches: a stable column index per resource and
        # per-resource capacity/penalty arrays (grown on first sighting).
        self._res_index: dict[Resource, int] = {}
        self._res_caps: list[float] = []
        self._res_penalty: list[float] = []
        self._res_min_eff: list[float] = []

    # -- public API ------------------------------------------------------

    @property
    def active_flows(self) -> tuple[Flow, ...]:
        return tuple(self._flows)

    def add_observer(self, fn: IntervalObserver) -> None:
        """Register a metrics observer called on every rate interval."""
        self._observers.append(fn)

    def run(self, flow: Flow) -> Event:
        """Start ``flow``; returns the event fired (with the flow) on completion."""
        if flow._active or flow.completion is not None:
            raise SimulationError("flow started twice")
        flow.completion = self.engine.event()
        if flow.work <= 0.0:
            flow.completion.trigger(flow)
            return flow.completion
        flow._active = True
        self._register_columns(flow)
        self._flows.append(flow)
        self._reallocate()
        return flow.completion

    def cancel(self, flow: Flow) -> None:
        """Abort an active flow; its completion event never fires."""
        if not flow._active:
            raise SimulationError("cancel() on inactive flow")
        self._advance()
        flow._active = False
        self._flows.remove(flow)
        self._reallocate(advanced=True)

    # -- allocation ------------------------------------------------------

    def _advance(self) -> None:
        """Progress remaining work up to ``engine.now`` at current rates."""
        now = self.engine.now
        dt = now - self._last_t
        if dt < 0:
            raise SimulationError("flow network clock went backwards")
        if dt > 0.0:
            for obs in self._observers:
                obs(self._last_t, now, list(self._flows))
            for f in self._flows:
                if f.rate > 0.0:
                    f.remaining = max(0.0, f.remaining - f.rate * dt)
        self._last_t = now

    def _reallocate(self, *, advanced: bool = False) -> None:
        if not advanced:
            self._advance()
        self._compute_rates()
        self._version += 1
        self._schedule_next_completion()

    def _compute_rates(self) -> None:
        flows = self._flows
        if not flows:
            return
        if len(flows) >= self.VECTORIZE_THRESHOLD:
            self._compute_rates_vectorized()
            return
        self._compute_rates_scalar()

    def _compute_rates_scalar(self) -> None:
        flows = self._flows
        # Per-resource flow population (for load-dependent capacities).
        users: dict[Resource, int] = {}
        for f in flows:
            for r in f.demands:
                users[r] = users.get(r, 0) + 1
        residual: dict[Resource, float] = {
            r: r.effective_capacity(n) for r, n in users.items()
        }
        unfrozen = set(range(len(flows)))
        rates = [0.0] * len(flows)
        # Progressive filling: grow all unfrozen rates by a common alpha
        # (weighted) until a resource saturates or a flow hits its cap.
        for _ in range(len(flows) + len(residual) + 1):
            if not unfrozen:
                break
            load: dict[Resource, float] = {}
            for i in unfrozen:
                f = flows[i]
                for r, d in f.demands.items():
                    load[r] = load.get(r, 0.0) + f.weight * d
            alpha = math.inf
            bottleneck: Resource | None = None
            for r, ld in load.items():
                if ld <= 0.0:
                    continue
                a = residual[r] / ld
                if a < alpha:
                    alpha, bottleneck = a, r
            capped: list[int] = []
            for i in unfrozen:
                f = flows[i]
                if f.max_rate is not None:
                    a = (f.max_rate - rates[i]) / f.weight
                    if a < alpha:
                        alpha = a
                        bottleneck = None
            if not math.isfinite(alpha):
                raise SimulationError(
                    "unbounded flow rate: a flow has neither resource demands "
                    "nor a max_rate"
                )
            alpha = max(alpha, 0.0)
            for i in unfrozen:
                f = flows[i]
                rates[i] += f.weight * alpha
                for r, d in f.demands.items():
                    residual[r] -= f.weight * d * alpha
                if f.max_rate is not None and rates[i] >= f.max_rate - _REL_EPS * f.max_rate:
                    capped.append(i)
            # Freeze flows on saturated resources and capped flows.
            saturated = {
                r for r, res in residual.items() if res <= _REL_EPS * r.capacity
            }
            frozen = {
                i
                for i in unfrozen
                if any(r in saturated for r in flows[i].demands)
            }
            frozen.update(capped)
            if not frozen:
                # Defensive: progressive filling must freeze someone each
                # round; bail out rather than loop forever.
                if bottleneck is not None:
                    frozen = {
                        i
                        for i in unfrozen
                        if bottleneck in flows[i].demands
                    }
                else:  # pragma: no cover - cap handling above catches this
                    break
            unfrozen -= frozen
        for f, r in zip(flows, rates):
            f.rate = r

    def _register_columns(self, flow: Flow) -> None:
        """Assign stable matrix columns to a flow's resources (cached)."""
        cols = []
        vals = []
        for r, d in flow.demands.items():
            idx = self._res_index.get(r)
            if idx is None:
                idx = len(self._res_index)
                self._res_index[r] = idx
                self._res_caps.append(r.capacity)
                if isinstance(r, CoreResource):
                    self._res_penalty.append(r.csw_penalty)
                    self._res_min_eff.append(r.min_efficiency)
                else:
                    self._res_penalty.append(0.0)
                    self._res_min_eff.append(1.0)
            cols.append(idx)
            vals.append(d)
        flow._cols = np.asarray(cols, dtype=np.intp)
        flow._vals = np.asarray(vals, dtype=float)

    def _compute_rates_vectorized(self) -> None:
        """Progressive filling over dense arrays (numpy).

        Identical semantics to :meth:`_compute_rates_scalar` — a
        differential property test pins the two against each other.
        Profiling shows rate allocation dominates large scenarios
        (Figure 5 with 128 streams); this path amortizes it with cached
        per-flow demand columns and incremental load updates.
        """
        flows = self._flows
        n = len(flows)
        m = len(self._res_index)
        # Per-resource flow population -> effective capacities
        # (CoreResource context-switch model, vectorized).
        users = np.zeros(m)
        for f in flows:
            users[f._cols] += 1.0
        caps_arr = np.asarray(self._res_caps)
        penalty = np.asarray(self._res_penalty)
        min_eff = np.asarray(self._res_min_eff)
        eff = np.clip(1.0 - penalty * np.maximum(users - 1.0, 0.0), min_eff, 1.0)
        residual = caps_arr * eff
        sat_eps = _REL_EPS * caps_arr

        weights = np.array([f.weight for f in flows])
        flow_caps = np.array(
            [math.inf if f.max_rate is None else f.max_rate for f in flows]
        )
        rates = np.zeros(n)
        active = np.ones(n, dtype=bool)
        # Dense demand matrix built once per reallocation from cached
        # column indices; loads are then exact matmuls each round (an
        # incremental-update variant accumulated floating-point dust
        # that poisoned the saturation test).
        demand = np.zeros((n, m))
        for i, f in enumerate(flows):
            demand[i, f._cols] = f._vals
        touches = demand > 0.0

        for _ in range(n + m + 1):
            if not active.any():
                break
            w_eff = np.where(active, weights, 0.0)
            load = w_eff @ demand
            used = load > 0.0
            alpha = math.inf
            if used.any():
                alpha = float(np.min(residual[used] / load[used]))
            headroom = (flow_caps[active] - rates[active]) / weights[active]
            if headroom.size:
                alpha = min(alpha, float(np.min(headroom)))
            if not math.isfinite(alpha):
                raise SimulationError(
                    "unbounded flow rate: a flow has neither resource "
                    "demands nor a max_rate"
                )
            alpha = max(alpha, 0.0)
            rates += w_eff * alpha
            residual -= load * alpha
            saturated = residual <= sat_eps
            at_cap = np.isfinite(flow_caps) & (
                rates >= flow_caps * (1.0 - _REL_EPS)
            )
            frozen = active & at_cap
            if saturated.any():
                frozen |= active & touches[:, saturated].any(axis=1)
            if not frozen.any():
                # Guarantee progress: freeze flows on the bottleneck
                # resource (mirrors the scalar fallback).
                if used.any():
                    ratios = np.where(
                        used, residual / np.where(used, load, 1.0), math.inf
                    )
                    b = int(np.argmin(ratios))
                    frozen = active & touches[:, b]
                if not frozen.any():  # pragma: no cover - cap handling
                    break
            active &= ~frozen
        for f, r in zip(flows, rates):
            f.rate = float(r)

    def _schedule_next_completion(self) -> None:
        next_dt = math.inf
        for f in self._flows:
            if f.rate > 0.0:
                next_dt = min(next_dt, f.remaining / f.rate)
        if not math.isfinite(next_dt):
            if self._flows:
                # All active flows starved (rate 0) — with max-min fairness
                # this can only happen if a resource has zero effective
                # capacity, which Resource forbids.
                raise SimulationError("all active flows starved at rate 0")
            return
        version = self._version
        timer = self.engine.timeout(max(next_dt, 0.0))
        timer.callbacks.append(lambda _ev: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._version:
            return  # superseded by a newer allocation
        self._advance()
        finished = [
            f
            for f in self._flows
            if f.remaining <= max(_ABS_EPS, _REL_EPS * f.work)
        ]
        if not finished:
            # Numerical drift: reschedule from the same allocation.
            self._version += 1
            self._schedule_next_completion()
            return
        for f in finished:
            f.remaining = 0.0
            f._active = False
            self._flows.remove(f)
        # Trigger completions *before* new arrivals can run (URGENT), so
        # pipeline processes observe a consistent order.
        for f in finished:
            assert f.completion is not None
            f.completion.trigger(f, priority=URGENT)
        self._reallocate(advanced=True)
