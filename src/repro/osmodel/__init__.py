"""Operating-system behaviour models.

The paper's baseline is "let the OS place threads"; its contribution is
overriding the OS with topology knowledge.  To compare the two we need an
explicit model of what the OS would do:

- :mod:`repro.osmodel.affinity` — affinity masks (the `numa_bind()` /
  `sched_setaffinity` vocabulary);
- :mod:`repro.osmodel.scheduler` — a load-balancing scheduler in the
  spirit of Linux CFS wake balancing: least-loaded core selection with
  cache-affinity stickiness and periodic rebalancing, but **no knowledge
  of NIC attachment** — the blind spot the paper exploits (§4.2);
- :mod:`repro.osmodel.firsttouch` — Linux's default first-touch page
  placement (§3.4 cites it to explain where chunk buffers live).
"""

from repro.osmodel.affinity import AffinityMask
from repro.osmodel.firsttouch import FirstTouchAllocator
from repro.osmodel.scheduler import OsScheduler

__all__ = ["AffinityMask", "FirstTouchAllocator", "OsScheduler"]
