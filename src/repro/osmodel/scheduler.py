"""A Linux-CFS-flavoured placement model for OS-scheduled threads.

This is the paper's *baseline*: "we allow the operating system to
determine the execution locations autonomously" (§4.2).  The model keeps
the behaviours that matter to the study:

- **least-loaded placement**: a waking thread goes to the core with the
  fewest runnable threads in its affinity mask;
- **wake affinity**: new threads prefer the spawning thread's socket
  while it has idle capacity — this is why the paper's Figures 8b/9b
  show OS-placed thread groups packing "the majority within a single
  NUMA domain";
- **stickiness with occasional migration**: a running thread mostly
  stays put, but the load balancer occasionally moves it to the globally
  least-loaded core;
- **no NIC/NUMA-I/O knowledge**: the scheduler balances *CPU load only*.
  It cannot know that receive threads belong near the NIC's socket —
  precisely the blind spot the paper's runtime exploits for its 1.48X.

Randomized tie-breaking is seeded; experiments average over repetitions
with derived seeds, mirroring the paper's 5–30 repetitions per point.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.hw.topology import CoreId, MachineSpec
from repro.osmodel.affinity import AffinityMask
from repro.util.errors import ConfigurationError, ValidationError
from repro.util.rng import make_rng


class OsScheduler:
    """Tracks thread→core assignment under OS-style load balancing."""

    def __init__(
        self,
        spec: MachineSpec,
        *,
        seed: int = 0,
        wake_affinity: float = 0.85,
        migrate_prob: float = 0.005,
        spill_threshold: int = 1,
    ) -> None:
        if not 0.0 <= wake_affinity <= 1.0:
            raise ValidationError("wake_affinity must be in [0, 1]")
        if not 0.0 <= migrate_prob <= 1.0:
            raise ValidationError("migrate_prob must be in [0, 1]")
        if spill_threshold < 0:
            raise ValidationError("spill_threshold must be >= 0")
        self.spec = spec
        self.rng: np.random.Generator = make_rng(seed, "os-scheduler", spec.name)
        self.wake_affinity = wake_affinity
        self.migrate_prob = migrate_prob
        self.spill_threshold = spill_threshold
        self.loads: dict[CoreId, int] = {c: 0 for c in spec.all_cores()}
        self._assignment: dict[Hashable, CoreId] = {}
        self._masks: dict[Hashable, AffinityMask] = {}
        self.migrations = 0

    # -- queries -----------------------------------------------------------

    def current(self, tid: Hashable) -> CoreId:
        try:
            return self._assignment[tid]
        except KeyError as exc:
            raise ConfigurationError(f"thread {tid!r} was never placed") from exc

    def core_loads(self) -> dict[CoreId, int]:
        return dict(self.loads)

    def socket_load(self, socket: int) -> int:
        return sum(n for c, n in self.loads.items() if c.socket == socket)

    # -- placement -----------------------------------------------------------

    def place(
        self,
        tid: Hashable,
        mask: AffinityMask,
        *,
        hint_socket: int | None = None,
    ) -> CoreId:
        """Place a new thread; returns its core.

        ``hint_socket`` models wake affinity: the socket of the thread
        that spawned/woke this one (``select_idle_sibling`` searches the
        waker's LLC domain first).  With probability ``wake_affinity``
        the thread lands on the hint socket even when its cores are
        already loaded, up to ``spill_threshold`` extra threads per core
        over the global minimum — this is the packing behaviour behind
        the paper's "the majority function within a single NUMA domain"
        observation for OS-placed thread groups (Figures 8b/9b, §4.2).
        """
        if tid in self._assignment:
            raise ConfigurationError(f"thread {tid!r} placed twice")
        candidates = mask.sorted_cores()
        if hint_socket is not None and self.rng.random() < self.wake_affinity:
            local = [c for c in candidates if c.socket == hint_socket]
            if local:
                global_min = min(self.loads[c] for c in candidates)
                if min(self.loads[c] for c in local) <= global_min + self.spill_threshold:
                    candidates = local
        core = self._least_loaded(candidates)
        self._assignment[tid] = core
        self._masks[tid] = mask
        self.loads[core] += 1
        return core

    def reschedule(self, tid: Hashable) -> CoreId:
        """A scheduling opportunity (e.g. a chunk boundary).

        Sticky: the thread keeps its core unless the periodic load
        balancer fires (``migrate_prob``) *and* a strictly less-loaded
        core exists.  Balancing is LLC-domain-biased like Linux's: with
        probability ``wake_affinity`` only same-socket cores are
        considered, so cross-NUMA migrations of cache-hot threads stay
        rare — which is why OS-packed thread groups persist long enough
        to hurt (§4.2).
        """
        core = self.current(tid)
        if self.rng.random() >= self.migrate_prob:
            return core
        candidates = self._masks[tid].sorted_cores()
        if self.rng.random() < self.wake_affinity:
            local = [c for c in candidates if c.socket == core.socket]
            if local:
                candidates = local
        best = self._least_loaded(candidates, exclude_tid_core=core)
        if self.loads[best] < self.loads[core] - 1:
            self.loads[core] -= 1
            self.loads[best] += 1
            self._assignment[tid] = best
            self.migrations += 1
            return best
        return core

    def force_migrate(self, tid: Hashable, core: CoreId) -> None:
        """Runtime-directed migration (used by the dynamic rebalancer).

        Bypasses stickiness but still respects the thread's mask.
        """
        if core not in self._masks[tid]:
            raise ConfigurationError(
                f"cannot migrate {tid!r} to {core}: outside its affinity mask"
            )
        old = self.current(tid)
        if old == core:
            return
        self.loads[old] -= 1
        self.loads[core] += 1
        self._assignment[tid] = core
        self.migrations += 1

    def remove(self, tid: Hashable) -> None:
        """Thread exited; release its load contribution."""
        core = self._assignment.pop(tid)
        self._masks.pop(tid)
        self.loads[core] -= 1

    # -- internals -------------------------------------------------------------

    def _least_loaded(
        self, candidates: list[CoreId], *, exclude_tid_core: CoreId | None = None
    ) -> CoreId:
        best_load = min(self.loads[c] for c in candidates)
        ties = [c for c in candidates if self.loads[c] == best_load]
        if len(ties) == 1:
            return ties[0]
        return ties[int(self.rng.integers(len(ties)))]
