"""CPU affinity masks over a machine's cores.

An :class:`AffinityMask` is an immutable set of :class:`CoreId` validated
against a :class:`MachineSpec`.  It is the common vocabulary between the
placement policies (which produce masks) and the scheduler model (which
picks cores within them) — the simulated analogue of ``numa_bind()`` /
``sched_setaffinity``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.hw.topology import CoreId, MachineSpec
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class AffinityMask:
    """An immutable, validated set of cores a thread may run on."""

    spec: MachineSpec
    cores: frozenset[CoreId]

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValidationError("affinity mask must contain >= 1 core")
        valid = set(self.spec.all_cores())
        bad = self.cores - valid
        if bad:
            raise ValidationError(
                f"mask contains cores not on {self.spec.name!r}: "
                f"{sorted(map(str, bad))}"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def all_cores(cls, spec: MachineSpec) -> "AffinityMask":
        """No restriction — the OS-managed default."""
        return cls(spec, frozenset(spec.all_cores()))

    @classmethod
    def socket(cls, spec: MachineSpec, socket: int) -> "AffinityMask":
        """All cores of one NUMA domain (what ``numa_bind()`` gives)."""
        return cls(spec, frozenset(spec.cores_of(socket)))

    @classmethod
    def sockets(cls, spec: MachineSpec, sockets: Iterable[int]) -> "AffinityMask":
        """Union of several NUMA domains (Table 1's "0 & 1" rows)."""
        cores: set[CoreId] = set()
        for s in sockets:
            cores.update(spec.cores_of(s))
        return cls(spec, frozenset(cores))

    @classmethod
    def single(cls, spec: MachineSpec, core: CoreId) -> "AffinityMask":
        """Exactly one core (hard pinning)."""
        return cls(spec, frozenset([core]))

    # -- queries -------------------------------------------------------------

    def __contains__(self, core: CoreId) -> bool:
        return core in self.cores

    def __len__(self) -> int:
        return len(self.cores)

    def sorted_cores(self) -> list[CoreId]:
        """Cores in OS enumeration order (deterministic iteration)."""
        return sorted(self.cores)

    def sockets_covered(self) -> set[int]:
        return {c.socket for c in self.cores}

    def restrict_to_socket(self, socket: int) -> "AffinityMask":
        sub = frozenset(c for c in self.cores if c.socket == socket)
        if not sub:
            raise ValidationError(
                f"mask has no cores on socket {socket}"
            )
        return AffinityMask(self.spec, sub)
