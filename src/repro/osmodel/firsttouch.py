"""First-touch page placement (Linux default NUMA memory policy).

§3.4 of the paper: "chunks are stored in memory where the respective send
and receive threads execute, based on Linux OS's first-touch policy.
This policy dictates that a data page is allocated in the local memory of
the core that first accesses it."

The allocator answers one question — *which socket is this buffer homed
on?* — and records the history so tests can assert policy behaviour.
An explicit bind (the simulated ``numa_bind`` / ``numa_alloc_onnode``)
overrides first-touch, which is how Table 1's "Memory Domain" rows pin
the source dataset to a chosen domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.topology import CoreId, MachineSpec
from repro.util.errors import ValidationError


@dataclass
class Allocation:
    """One recorded buffer allocation."""

    label: str
    nbytes: int
    socket: int
    policy: str  # "first-touch" or "bind"


@dataclass
class FirstTouchAllocator:
    """Tracks buffer homes under first-touch with optional explicit binds."""

    spec: MachineSpec
    allocations: list[Allocation] = field(default_factory=list)
    _bound_socket: int | None = None

    def bind(self, socket: int | None) -> None:
        """Restrict subsequent allocations to one socket (``numa_bind``).

        ``None`` removes the restriction (back to first-touch).
        """
        if socket is not None:
            self.spec._check_socket(socket)
        self._bound_socket = socket

    def touch(self, core: CoreId, nbytes: int, label: str = "") -> int:
        """Home a buffer first-touched by a thread running on ``core``.

        Returns the socket the buffer lives on.
        """
        if nbytes < 0:
            raise ValidationError("allocation size must be >= 0")
        if self._bound_socket is not None:
            socket, policy = self._bound_socket, "bind"
        else:
            socket, policy = core.socket, "first-touch"
        self.allocations.append(Allocation(label, nbytes, socket, policy))
        return socket

    def on_socket(self, socket: int) -> int:
        """Total bytes currently homed on ``socket``."""
        return sum(a.nbytes for a in self.allocations if a.socket == socket)
