"""Shared utilities: unit handling, deterministic RNG, tables, statistics.

These helpers are dependency-free (numpy only) and used by every other
subpackage.  Nothing in here knows about NUMA, streaming, or the paper —
keep it that way.
"""

from repro.util.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.util.rng import derive_seed, make_rng
from repro.util.tables import Table, format_table
from repro.util.timeseries import RateMeter, TimeSeries, WindowStats
from repro.util.units import (
    GiB,
    Gbps,
    KiB,
    MiB,
    bits,
    bytes_to_bits,
    fmt_bytes,
    fmt_rate_bps,
    gbps_to_bytes_per_s,
    parse_size,
)

__all__ = [
    "ConfigurationError",
    "GiB",
    "Gbps",
    "KiB",
    "MiB",
    "RateMeter",
    "ReproError",
    "SimulationError",
    "Table",
    "TimeSeries",
    "ValidationError",
    "WindowStats",
    "bits",
    "bytes_to_bits",
    "derive_seed",
    "fmt_bytes",
    "fmt_rate_bps",
    "format_table",
    "gbps_to_bytes_per_s",
    "make_rng",
    "parse_size",
]
