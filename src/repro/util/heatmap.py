"""ASCII heatmaps for per-core maps (Figures 6 and 7 style).

The paper renders core-usage and remote-access data as heatmaps; this
renders the same matrices as shaded monospace blocks so terminal output
can be eyeballed against the paper's panels.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

#: Shades from empty to full.
SHADES = " .:-=+*#%@"


def shade(value: float, vmax: float = 1.0) -> str:
    """Map ``value`` in [0, vmax] to one shade character."""
    if vmax <= 0:
        return SHADES[0]
    frac = min(max(value / vmax, 0.0), 1.0)
    return SHADES[min(int(frac * (len(SHADES) - 1) + 0.5), len(SHADES) - 1)]


def render_heatmap(
    rows: Sequence[str],
    columns: Mapping[str, Mapping[str, float]],
    *,
    vmax: float | None = None,
    title: str | None = None,
    legend: bool = True,
) -> str:
    """Render ``columns`` (label -> {row -> value}) as an ASCII heatmap.

    Rows are printed top to bottom in the order given (core 0 at the
    top, like the paper's Y axis); one shaded character per column.
    """
    if vmax is None:
        vmax = max(
            (v for col in columns.values() for v in col.values()),
            default=1.0,
        ) or 1.0
    width = max((len(label) for label in columns), default=1)
    lines: list[str] = []
    if title:
        lines.append(title)
    row_label_w = max((len(r) for r in rows), default=1)
    # Column headers, vertical.
    labels = list(columns)
    for i in range(width):
        header = " " * (row_label_w + 1)
        header += " ".join(
            (label[i] if i < len(label) else " ") for label in labels
        )
        lines.append(header)
    for row in rows:
        cells = " ".join(
            shade(columns[label].get(row, 0.0), vmax) for label in labels
        )
        lines.append(f"{row:<{row_label_w}} {cells}")
    if legend:
        lines.append(
            f"{'':<{row_label_w}} scale: '{SHADES[0]}'=0 .. '{SHADES[-1]}'={vmax:g}"
        )
    return "\n".join(lines)
