"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch one type at an API boundary.  Python built-ins (``ValueError``,
``TypeError``) are still used for plain argument-contract violations in
leaf helpers; anything with domain meaning uses this hierarchy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input value violates a documented domain constraint."""


class QueueTimeout(ReproError, TimeoutError):
    """A bounded-queue operation timed out.

    Raised by :meth:`repro.live.queues.ClosableQueue.get` when no item
    arrived within ``timeout`` seconds, and by
    :meth:`~repro.live.queues.ClosableQueue.put` when backpressure did
    not clear in time.  Derives from :class:`TimeoutError` so generic
    timeout handlers still work, but callers inside the library catch
    this type instead of leaking ``queue.Empty``/``queue.Full``.
    """


class ConfigurationError(ReproError):
    """A runtime/placement configuration is inconsistent or infeasible.

    Examples: pinning a task to a socket that does not exist, requesting
    more pinned threads than the machine has cores with ``strict=True``,
    or a stream whose sender and receiver disagree on codec.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid internal state.

    This signals a bug in simulation *inputs* (e.g. a process yielded an
    event that is already consumed) or a violated engine invariant — not
    a modelling result such as "throughput was low".
    """


class CodecError(ReproError):
    """Compressed data is malformed or violates the LZ4 format."""


class TransportError(ReproError):
    """A live (socket) transport failed or received a malformed frame."""


class FrameIntegrityError(TransportError):
    """A received frame is provably corrupt (bad magic, oversized
    header fields, checksum mismatch).

    Distinguished from plain :class:`TransportError` (connection reset,
    mid-frame EOF) because the resilient receiver reacts differently:
    an integrity failure means the byte stream can no longer be trusted
    for framing, so the connection is closed and the sender must
    reconnect and replay — and the rejection is counted in
    ``transport_frames_rejected_total``.
    """
