"""Deterministic random-number management.

Every stochastic component (data synthesis, OS-scheduler tie-breaking,
experiment repetition noise) takes an explicit seed and derives child
generators through :func:`derive_seed` so that

- the whole experiment suite is reproducible from one root seed, and
- two components never share a stream (no accidental correlation).
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root: int, *labels: object) -> int:
    """Derive a 63-bit child seed from ``root`` and a label path.

    The derivation hashes the textual label path, so it is stable across
    processes and Python versions (unlike ``hash()``).
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


def make_rng(root: int, *labels: object) -> np.random.Generator:
    """Return a numpy Generator seeded from ``derive_seed(root, *labels)``."""
    return np.random.default_rng(derive_seed(root, *labels))
