"""Library logging.

All repro modules log under the ``"repro"`` namespace and, per library
convention, attach no handlers — applications opt in::

    import logging
    logging.getLogger("repro").setLevel(logging.DEBUG)
    logging.basicConfig()

Two opt-in conveniences layer on top:

- the ``REPRO_LOG_LEVEL`` environment variable (``DEBUG``, ``INFO``,
  ``warning``, a numeric level, ...) sets the namespace level without
  touching application code — applied once, lazily, on the first
  :func:`get_logger` call;
- :func:`attach_event_bus` bridges every record into the structured
  event stream (:mod:`repro.obs.events`), so the library's narration
  (planner placements, scheduler migrations, reconnects) lands on the
  same timeline the watchdog and fault layer write to.

Debug logging narrates the decisions that matter when a scenario
surprises you: planner placements, simulation build/run milestones,
scheduler migrations, rebalancer actions.
"""

from __future__ import annotations

import logging
import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoid a runtime util->obs cycle
    from repro.obs.events import EventBus, EventLogHandler

#: Environment variable naming the ``repro`` namespace log level.
LEVEL_ENV = "REPRO_LOG_LEVEL"

_env_applied = False


def _apply_env_level(root: logging.Logger) -> None:
    """Honor ``REPRO_LOG_LEVEL`` once per process (idempotent)."""
    global _env_applied
    if _env_applied:
        return
    _env_applied = True
    raw = os.environ.get(LEVEL_ENV, "").strip()
    if not raw:
        return
    level: int | None
    if raw.isdigit():
        level = int(raw)
    else:
        # getLevelName maps name -> level for known names (int), and
        # returns "Level X" strings for unknown ones on every 3.10+.
        resolved = logging.getLevelName(raw.upper())
        level = resolved if isinstance(resolved, int) else None
    if level is None:
        root.warning("ignoring %s=%r: not a log level", LEVEL_ENV, raw)
        return
    root.setLevel(level)


def get_logger(subsystem: str) -> logging.Logger:
    """Logger for one subsystem, e.g. ``get_logger("core.runtime")``."""
    _apply_env_level(logging.getLogger("repro"))
    return logging.getLogger(f"repro.{subsystem}")


def attach_event_bus(bus: "EventBus") -> "EventLogHandler":
    """Route every ``repro.*`` log record into ``bus`` as a ``log`` event.

    Returns the installed handler; pass it to :func:`detach_event_bus`
    when the run ends.  Imported lazily so :mod:`repro.util` never
    depends on :mod:`repro.obs` at import time.
    """
    from repro.obs.events import EventLogHandler

    handler = EventLogHandler(bus)
    logging.getLogger("repro").addHandler(handler)
    return handler


def detach_event_bus(handler: "EventLogHandler") -> None:
    """Remove a handler installed by :func:`attach_event_bus`."""
    logging.getLogger("repro").removeHandler(handler)
