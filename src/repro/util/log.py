"""Library logging.

All repro modules log under the ``"repro"`` namespace and, per library
convention, attach no handlers — applications opt in::

    import logging
    logging.getLogger("repro").setLevel(logging.DEBUG)
    logging.basicConfig()

Debug logging narrates the decisions that matter when a scenario
surprises you: planner placements, simulation build/run milestones,
scheduler migrations, rebalancer actions.
"""

from __future__ import annotations

import logging


def get_logger(subsystem: str) -> logging.Logger:
    """Logger for one subsystem, e.g. ``get_logger("core.runtime")``."""
    return logging.getLogger(f"repro.{subsystem}")
