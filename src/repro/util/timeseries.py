"""Light-weight statistics containers used by simulation metrics.

These are deliberately simple: the simulator produces modest numbers of
samples (chunk completions, utilization snapshots) and the harness needs
means, rate estimates over a window, and per-interval series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TimeSeries:
    """Append-only (time, value) series with summary helpers."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"time went backwards: {t} < {self.times[-1]}"
            )
        self.times.append(float(t))
        self.values.append(float(v))

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        """Unweighted mean of the sampled values (nan when empty)."""
        if not self.values:
            return math.nan
        return float(np.mean(self.values))

    def time_weighted_mean(self) -> float:
        """Mean weighting each value by the span until the next sample."""
        if len(self.times) < 2:
            return self.mean()
        t = np.asarray(self.times)
        v = np.asarray(self.values[:-1])
        dt = np.diff(t)
        total = dt.sum()
        if total <= 0:
            return self.mean()
        return float((v * dt).sum() / total)

    def asarrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (times, values) as numpy arrays."""
        return np.asarray(self.times), np.asarray(self.values)


@dataclass
class RateMeter:
    """Counts discrete completions and converts them to an average rate.

    Used for throughput: record ``add(t, nbytes)`` per chunk completion,
    then ask for bytes/s (or bits/s) over the measured span, optionally
    discarding a warm-up prefix so pipeline fill does not bias the mean.
    """

    events: list[tuple[float, float]] = field(default_factory=list)
    #: Work start time per event (equals the completion time when the
    #: caller doesn't know it); lets windowed estimates prorate work
    #: that straddles the window edge instead of over-counting it.
    starts: list[float] = field(default_factory=list)

    def add(self, t: float, amount: float, start: float | None = None) -> None:
        """Record that ``amount`` units completed at time ``t``.

        ``start`` is when the work producing them began (defaults to
        ``t``, i.e. instantaneous completion).
        """
        if self.events and t < self.events[-1][0]:
            raise ValueError("time went backwards in RateMeter")
        self.events.append((float(t), float(amount)))
        self.starts.append(float(t if start is None else start))

    def total(self, *, since: float = 0.0) -> float:
        """Total amount recorded at or after ``since``."""
        return sum(a for t, a in self.events if t >= since)

    def rate(self, *, start: float | None = None, end: float | None = None) -> float:
        """Average rate (units/s) over [start, end].

        Defaults: ``start`` = time of first event (or 0), ``end`` = time
        of last event.  Returns 0 for an empty or zero-span window.
        """
        if not self.events:
            return 0.0
        t0 = self.events[0][0] if start is None else start
        t1 = self.events[-1][0] if end is None else end
        span = t1 - t0
        if span <= 0:
            return 0.0
        amount = sum(a for t, a in self.events if t0 <= t <= t1)
        return amount / span


@dataclass
class WindowStats:
    """Streaming mean/variance/extrema over scalar samples (Welford)."""

    n: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the summary."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self.minimum = min(self.minimum, x)
        self.maximum = max(self.maximum, x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (nan for n < 2)."""
        if self.n < 2:
            return math.nan
        return self._m2 / (self.n - 1)

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan
