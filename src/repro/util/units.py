"""Unit conversions for sizes and rates.

Conventions used throughout the library:

- **sizes** are plain ``int`` byte counts;
- **rates** are ``float`` and explicitly suffixed: ``_bps`` (bits per
  second) for network quantities, ``_Bps`` (bytes per second) for memory
  and codec quantities.  The paper reports network numbers in Gbps, so
  formatting helpers default to Gbps.

Binary prefixes (KiB/MiB/GiB) are used for memory sizes to match how the
paper sizes chunks (11.0592 MB = one X-ray projection, a decimal-MB
quantity) and DIMMs; decimal helpers are provided for that chunk size.
"""

from __future__ import annotations

import re

from repro.util.errors import ValidationError

#: Binary size multipliers (bytes).
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

#: Decimal size multipliers (bytes) — network and instrument vendors use these.
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

#: Rate multipliers (bits per second).
Kbps: float = 1e3
Mbps: float = 1e6
Gbps: float = 1e9
Tbps: float = 1e12

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]i?B|B)?\s*$",
    re.IGNORECASE,
)

_SIZE_UNITS = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": 1000 * GB,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
}


def bits(nbytes: int | float) -> float:
    """Return the number of bits in ``nbytes`` bytes."""
    return float(nbytes) * 8.0


def bytes_to_bits(nbytes: int | float) -> float:
    """Alias of :func:`bits`, reads better at call sites converting totals."""
    return bits(nbytes)


def gbps_to_bytes_per_s(rate_gbps: float) -> float:
    """Convert a rate in Gbps to bytes/second."""
    return rate_gbps * Gbps / 8.0


def bytes_per_s_to_gbps(rate_Bps: float) -> float:
    """Convert a rate in bytes/second to Gbps."""
    return rate_Bps * 8.0 / Gbps


def parse_size(text: str | int) -> int:
    """Parse a human size string (``"11.0592MB"``, ``"16 GiB"``) to bytes.

    Integers pass through unchanged.  A bare number is taken as bytes.
    Raises :class:`ValidationError` for unparseable input or a negative
    value.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValidationError(f"size must be non-negative, got {text}")
        return text
    m = _SIZE_RE.match(str(text))
    if not m:
        raise ValidationError(f"unparseable size: {text!r}")
    num = float(m.group("num"))
    unit = (m.group("unit") or "B").lower()
    try:
        mult = _SIZE_UNITS[unit]
    except KeyError as exc:  # pragma: no cover - regex restricts units
        raise ValidationError(f"unknown size unit in {text!r}") from exc
    return int(round(num * mult))


def fmt_bytes(nbytes: int | float) -> str:
    """Format a byte count with a binary prefix (``"10.5 MiB"``)."""
    n = float(nbytes)
    for unit, mult in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= mult:
            return f"{n / mult:.2f} {unit}"
    return f"{int(n)} B"


def fmt_rate_bps(rate_bps: float) -> str:
    """Format a bit rate (``"105.41 Gbps"``)."""
    for unit, mult in (("Tbps", Tbps), ("Gbps", Gbps), ("Mbps", Mbps), ("Kbps", Kbps)):
        if abs(rate_bps) >= mult:
            return f"{rate_bps / mult:.2f} {unit}"
    return f"{rate_bps:.0f} bps"


def fmt_rate_Bps(rate_Bps: float) -> str:
    """Format a byte rate (``"1.20 GiB/s"``)."""
    return fmt_bytes(rate_Bps) + "/s"
