"""Plain-text table rendering for experiment harness output.

The benchmark harness prints paper-shaped rows; this module renders them
as aligned monospace tables so ``repro-experiment fig12`` output can be
eyeballed against the paper's figures.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != ncols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {ncols} (headers={headers!r})"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Table:
    """An accumulating table: add rows as an experiment sweeps parameters."""

    headers: Sequence[str]
    title: str | None = None
    rows: list[list[object]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        """Append one row; must match the header arity."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render the accumulated rows (see :func:`format_table`)."""
        return format_table(self.headers, self.rows, title=self.title)

    def column(self, name: str) -> list[object]:
        """Return all values of the named column."""
        try:
            idx = list(self.headers).index(name)
        except ValueError as exc:
            raise KeyError(f"no column {name!r} in {list(self.headers)}") from exc
        return [row[idx] for row in self.rows]
