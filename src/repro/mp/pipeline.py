"""`repro-live --mode process`: the multi-process live pipeline.

:class:`ProcessPipeline` is :class:`~repro.live.runtime.LivePipeline`
with the compress stage moved into real processes::

    feeder -> raw ring[d] -> [compress proc d] -> comp ring[d] ->
    collector[d] -> sendq -> {S_i ==socketpair==> R_i} -> wireq ->
    [D x decompress] -> sink

One compressor process per NUMA domain, each with its own pair of
domain-local rings (the dgen-rs lesson: locality of the *buffers*,
not just the threads).  Everything downstream of the collectors is
the thread pipeline verbatim — same sender/receiver/decompressor
bodies, same socketpairs, same frames — so receiver output is
byte-identical between modes and every report/metric reads the same.

Delivery is exactly-once across worker crashes: the supervisor replays
dispatched-but-uncollected records into the restarted worker's ring
(at-least-once), and the collectors deduplicate on ``(stream, index)``
before anything reaches the wire.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable

from repro.compress.codec import (
    Codec,
    CodecSpec,
    codec_spec,
    resolve_codec,
    wire_codec_name,
)
from repro.data.chunking import Chunk
from repro.faults.policy import RetryPolicy
from repro.live import workers
from repro.live.queues import ClosableQueue, Closed
from repro.live.runtime import LiveConfig, LiveReport
from repro.live.stageset import Knobs, StageSet
from repro.live.transport import socket_pipe
from repro.mp.records import ChunkRecord, pack_record, unpack_record
from repro.mp.supervisor import DomainSupervisor
from repro.mp.topology import plan_topology
from repro.telemetry.facade import as_telemetry
from repro.trace import TraceContext
from repro.util.errors import ValidationError


class _OrigLen:
    """A length-only stand-in for the original payload.

    The sender path needs ``len(chunk.payload)`` for the frame's
    ``orig_len`` field and nothing else — the real bytes stayed in the
    worker process.  Carrying just the length keeps the parent from
    re-materializing every uncompressed chunk.
    """

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        self.nbytes = nbytes

    def __len__(self) -> int:
        return self.nbytes


class _WireChunk:
    """A collected record shaped like a compressed live ``Chunk``."""

    __slots__ = (
        "stream_id", "index", "payload", "wire_payload", "codec_id", "trace",
    )

    def __init__(
        self,
        stream_id: str,
        index: int,
        orig_len: int,
        wire_payload: bytes,
        codec_id: int = 0,
        trace: object | None = None,
    ) -> None:
        self.stream_id = stream_id
        self.index = index
        self.payload = _OrigLen(orig_len)
        self.wire_payload = wire_payload
        self.codec_id = codec_id
        #: Re-hydrated trace context for sampled chunks (the original
        #: object stayed in the parent; only the ring flag crossed).
        self.trace = trace


class ProcessPipeline:
    """Single-host pipeline with per-domain compressor processes."""

    def __init__(
        self,
        config: LiveConfig | None = None,
        codec: "Codec | CodecSpec | str | None" = None,
        *,
        telemetry: "bool | object" = False,
        retry: RetryPolicy | None = None,
        controller: "object | None" = None,
    ):
        self.config = config or LiveConfig(execution_mode="process")
        self.codec = resolve_codec(
            codec if codec is not None else self.config.codec
        )
        self.telemetry = as_telemetry(telemetry)
        self.retry = retry
        self.controller = controller

    def run(
        self,
        source: Iterable[Chunk],
        sink: Callable[[str, int, bytes], None] | None = None,
        *,
        telemetry: "bool | object | None" = None,
    ) -> LiveReport:
        """Stream every chunk of ``source`` through the full pipeline."""
        cfg = self.config
        delivered: dict[tuple[str, int], int] = {}
        delivered_lock = threading.Lock()
        expected: dict[tuple[str, int], int] = {}
        bytes_out = [0]

        def counting_sink(stream_id: str, index: int, data: bytes) -> None:
            with delivered_lock:
                delivered[(stream_id, index)] = (
                    delivered.get((stream_id, index), 0) + 1
                )
                bytes_out[0] += len(data)
            if sink is not None:
                sink(stream_id, index, data)

        tel = self.telemetry if telemetry is None else as_telemetry(telemetry)
        topology = plan_topology(cfg)
        ndomains = topology.domains
        if tel is not None:
            tel.thread_counts.update(
                {
                    "feed": 1,
                    "compress": ndomains,
                    "send": cfg.connections,
                    "recv": cfg.connections,
                    "decompress": cfg.decompress_threads,
                }
            )
        stats = {
            name: workers.StageStats(name)
            for name in ("feed", "compress", "send", "recv", "decompress")
        }
        supervisor = DomainSupervisor(
            topology,
            codec_spec=str(codec_spec(self.codec)),
            retry=self.retry,
            start_method=cfg.mp_start_method,
            telemetry=tel,
            batch_frames=cfg.batch_frames,
        )
        sendq = ClosableQueue(
            cfg.queue_capacity, producers=ndomains, name="sendq", telemetry=tel
        )
        wireq = ClosableQueue(
            cfg.queue_capacity,
            producers=cfg.connections,
            name="wireq",
            telemetry=tel,
        )

        #: (stream, index) already collected — replay dedup.
        seen: set[tuple[str, int]] = set()
        seen_lock = threading.Lock()

        sampler = None
        # Guarded like _record_codec: as_telemetry passes through
        # duck-typed user objects that may predate record_span.
        record_span = getattr(tel, "record_span", None)
        if record_span is not None and cfg.trace_sample > 0:
            from repro.trace import HeadSampler

            sampler = HeadSampler(cfg.trace_sample, cfg.trace_per_stream_cap)

        def feed() -> None:
            next_domain = 0
            try:
                for chunk in source:
                    if chunk.payload is None:
                        raise ValidationError(
                            "live pipeline chunks need payloads"
                        )
                    if sampler is not None and chunk.trace is None:
                        chunk.trace = sampler.sample_chunk(
                            chunk.stream_id, chunk.index
                        )
                    key = (chunk.stream_id, chunk.index)
                    n = len(chunk.payload)
                    expected[key] = n
                    packed = pack_record(
                        ChunkRecord(
                            stream_id=chunk.stream_id,
                            index=chunk.index,
                            payload=chunk.payload,
                            compressed=False,
                            orig_len=n,
                            traced=chunk.trace is not None,
                        )
                    )
                    t0 = time.perf_counter()
                    supervisor.dispatch(next_domain % ndomains, key, packed)
                    next_domain += 1
                    t1 = time.perf_counter()
                    stats["feed"].record(n, n, t1 - t0)
                    if tel is not None:
                        tel.record_chunk("feed", chunk.stream_id, n)
                        tel.heartbeat("mp-feeder")
                        if chunk.trace is not None and record_span is not None:
                            record_span(
                                "feed", t0, t1,
                                stream_id=chunk.stream_id,
                                chunk_id=chunk.index,
                                track="mp-feeder",
                            )
            except Exception as exc:  # noqa: BLE001 - thread boundary
                stats["feed"].fail(f"feeder: {exc!r}")
            finally:
                supervisor.close_inputs()

        knobs = Knobs(
            batch_frames=cfg.batch_frames, batch_linger=cfg.batch_linger
        )

        def collect(domain: int) -> None:
            ring = supervisor.comp_ring(domain)
            try:
                while True:
                    try:
                        raws = ring.get_many(max(1, knobs.batch_frames))
                    except Closed:
                        break
                    batch: list[_WireChunk] = []
                    for raw in raws:
                        rec = unpack_record(raw)
                        supervisor.ack(domain, rec.key)
                        with seen_lock:
                            if rec.key in seen:
                                # A restart replayed work the dead
                                # worker had already finished.
                                if tel is not None:
                                    tel.record_dedup()
                                continue
                            seen.add(rec.key)
                        if tel is not None:
                            tel.record_chunk(
                                "compress", rec.stream_id, rec.orig_len
                            )
                            # Guarded like live/workers: as_telemetry
                            # passes through duck-typed user objects
                            # that may predate record_codec.
                            workers._record_codec(
                                tel,
                                "compress",
                                rec.stream_id,
                                wire_codec_name(rec.codec_id)
                                if rec.codec_id
                                else self.codec.name,
                            )
                            if (
                                rec.stage_times is not None
                                and record_span is not None
                            ):
                                # The worker stamped its compress
                                # interval (perf_counter is shared
                                # across processes on this host) —
                                # surface it on the same per-domain
                                # track the thread pipeline would use.
                                record_span(
                                    "compress",
                                    rec.stage_times[0],
                                    rec.stage_times[1],
                                    stream_id=rec.stream_id,
                                    chunk_id=rec.index,
                                    track=f"mp-compress-{domain}",
                                )
                        trace = (
                            TraceContext(rec.stream_id, rec.index)
                            if rec.traced
                            else None
                        )
                        batch.append(
                            _WireChunk(
                                rec.stream_id,
                                rec.index,
                                rec.orig_len,
                                rec.payload,
                                rec.codec_id,
                                trace,
                            )
                        )
                    put = 0
                    while put < len(batch):
                        put += sendq.put_many(batch[put:])
            except Exception as exc:  # noqa: BLE001 - thread boundary
                stats["compress"].fail(f"collector-{domain}: {exc!r}")
            finally:
                sendq.close()

        aff = cfg.affinity

        def _thread(name: str, target: Any, *args: Any, **kw: Any) -> Any:
            return threading.Thread(
                target=target, args=args, kwargs=kw, name=name, daemon=True
            )

        def feed_factory(i: int, stop: threading.Event) -> threading.Thread:
            return _thread("mp-feeder", feed)

        def collect_factory(
            i: int, stop: threading.Event
        ) -> threading.Thread:
            return _thread(f"collector-{i}", collect, i)

        def connection_factory(
            i: int, stop: threading.Event
        ) -> list[threading.Thread]:
            tx, rx = socket_pipe(telemetry=tel)
            return [
                _thread(
                    f"send-{i}", workers.sender, tx, sendq, stats["send"],
                    compressed=True, cpus=aff.get("send"), telemetry=tel,
                    knobs=knobs,
                ),
                _thread(
                    f"recv-{i}", workers.receiver, rx, wireq, stats["recv"],
                    aff.get("recv"), telemetry=tel, knobs=knobs,
                ),
            ]

        def decompress_factory(
            i: int, stop: threading.Event
        ) -> threading.Thread:
            return _thread(
                f"decompress-{i}", workers.decompressor, self.codec, wireq,
                stats["decompress"], counting_sink, aff.get("decompress"),
                telemetry=tel, knobs=knobs, stop=stop,
            )

        stages = {
            "feed": StageSet("feed", feed_factory, count=1),
            # One collector per domain ring — the count is topology,
            # not a tunable, so the set stays non-scalable.
            "collect": StageSet(
                "collect",
                collect_factory,
                count=ndomains,
                downstream=sendq,
            ),
            "send": StageSet(
                "send", connection_factory, count=cfg.connections
            ),
            "decompress": StageSet(
                "decompress",
                decompress_factory,
                count=cfg.decompress_threads,
                scalable=True,
            ),
        }

        controller = self.controller
        if controller is not None:
            from repro.control.executor import StageSetExecutor

            def respawn_compress() -> bool:
                # Compress workers are processes, not threads: route the
                # respawn to the domain supervisor, which SIGKILLs each
                # worker and lets the crash path restart-and-replay it
                # (exactly-once holds — collectors dedup on key).  Every
                # domain is cycled; a stall signal doesn't say which
                # domain's worker went quiet.
                results = [supervisor.respawn(d) for d in range(ndomains)]
                return any(results)

            controller.bind(
                StageSetExecutor(
                    stages,
                    knobs,
                    queue_map={"sendq": "send", "wireq": "decompress"},
                    respawn_hooks={"compress": respawn_compress},
                )
            )

        if tel is not None:
            tel.emit_event(
                "run_start",
                "process pipeline starting",
                runner="ProcessPipeline",
                codec=self.codec.name,
                mode="process",
                domains=ndomains,
                connections=cfg.connections,
                decompress_threads=cfg.decompress_threads,
            )
        t0 = time.perf_counter()
        errors: list[str] = []
        try:
            supervisor.start()
            try:
                for ss in stages.values():
                    ss.start()
                if controller is not None:
                    controller.start()
                for ss in stages.values():
                    errors.extend(ss.join(cfg.timeouts.join))
            finally:
                if controller is not None:
                    controller.stop()
            # Sweep again: the controller may have grown a set while
            # earlier sets were being joined (re-joins are free, and
            # duplicate straggler reports dedupe below).
            for ss in stages.values():
                errors.extend(ss.join(cfg.timeouts.join))
            errors = list(dict.fromkeys(errors))
            errors.extend(supervisor.join(cfg.timeouts.join))
            elapsed = time.perf_counter() - t0
            # The compress stage ran out-of-process; fold the shared
            # stats slots into the ordinary stage accounting.
            if supervisor.stats is not None:
                comp = stats["compress"]
                for s in supervisor.stats.snapshot():
                    comp.chunks += s.chunks
                    comp.bytes_in += s.bytes_in
                    comp.bytes_out += s.bytes_out
                    comp.busy_seconds += s.busy_us / 1e6
        finally:
            supervisor.shutdown()

        for s in stats.values():
            errors.extend(s.errors)
        if cfg.verify and not errors:
            missing = set(expected) - set(delivered)
            dupes = {k: n for k, n in delivered.items() if n > 1}
            if missing:
                errors.append(
                    f"{len(missing)} chunks never delivered: "
                    f"{sorted(missing)[:3]}..."
                )
            if dupes:
                errors.append(f"duplicated chunks: {sorted(dupes)[:3]}...")
        if tel is not None:
            tel.emit_event(
                "run_end",
                "process pipeline finished",
                severity="info" if not errors else "error",
                runner="ProcessPipeline",
                ok=not errors,
                elapsed_s=round(elapsed, 6),
                chunks=stats["decompress"].chunks,
                restarts=supervisor.restarts,
            )
        return LiveReport(
            chunks=stats["decompress"].chunks,
            bytes_in=stats["feed"].bytes_in,
            wire_bytes=stats["send"].bytes_out,
            bytes_out=bytes_out[0],
            elapsed=elapsed,
            stage_stats=stats,
            errors=errors,
            telemetry=tel,
        )
