"""The worker-process body: one compressor domain, ring to ring.

:func:`compress_worker` is the target of one ``multiprocessing``
``Process`` — the process-mode analogue of
:func:`repro.live.workers.compressor`.  It attaches its rings and
stats slot by name (spawn-safe: everything crosses the boundary as
plain strings and ints), pins the whole process to its domain's CPU
set, then loops: drain raw records, compress, publish compressed
records, account into the shared stats slot.

Shutdown has two flavours, both lossless for published work:

- the feeder closes the raw ring → the worker drains what is left,
  closes its output ring and exits 0 (the normal end of stream);
- SIGTERM → the worker stops *blocking* for new input, takes only
  records already published, flushes them downstream and exits 0 (the
  supervisor's graceful drain — acked work is never dropped).

A worker never logs and takes no locks shared with the parent, so it
is safe to start under any start method, including a mid-run ``fork``
restart.
"""

from __future__ import annotations

import os
import signal
import time

from repro.compress.codec import resolve_codec
from repro.live.affinity import current_affinity, pin_current_thread
from repro.live.queues import Closed
from repro.mp.records import ChunkRecord, pack_record, unpack_record
from repro.mp.ring import SharedRing
from repro.mp.stats import StatsBlock, WorkerState
from repro.util.errors import QueueTimeout

#: Idle get() timeout — bounds how stale a heartbeat can go while the
#: worker waits for input, and how late it notices a SIGTERM.
_IDLE_TICK = 0.2


def compress_worker(
    *,
    domain: int,
    cpus: tuple[int, ...],
    codec_spec: str,
    in_ring: str,
    out_ring: str,
    stats_name: str,
    stats_slot: int,
    batch_frames: int = 1,
    crash_after: int | None = None,
    timed: bool = False,
) -> None:
    """Run one compressor domain until its input ring drains.

    ``timed=True`` (set when the parent has telemetry attached) makes
    the worker stamp its compress interval into every outgoing record's
    time trailer; the collector turns the stamps into ``compress``
    spans on the shared timeline (``perf_counter`` is CLOCK_MONOTONIC,
    shared across processes on one host).
    """
    stats = StatsBlock.attach(stats_name)
    stats.set_pid(stats_slot, os.getpid())
    stats.set_state(stats_slot, WorkerState.STARTING)

    if cpus:
        pin_current_thread(cpus)
    applied = current_affinity()
    stats.set_cpus(stats_slot, len(applied) if cpus and applied else 0)

    draining = False

    def _on_term(signum: int, frame: object) -> None:
        nonlocal draining
        draining = True

    signal.signal(signal.SIGTERM, _on_term)

    # A spec *string* crosses the spawn boundary (instances never
    # pickle); adaptive sets re-build their selector per process.
    codec = resolve_codec(codec_spec)
    inr = SharedRing.attach(in_ring)
    outr = SharedRing.attach(out_ring)
    done = 0
    try:
        stats.set_state(stats_slot, WorkerState.RUNNING)
        while True:
            stats.beat(stats_slot, time.time())
            try:
                # While draining, take only already-published records.
                raws = inr.get_many(
                    batch_frames, timeout=0 if draining else _IDLE_TICK
                )
            except Closed:
                break
            except QueueTimeout:
                if draining:
                    break
                continue
            if draining:
                stats.set_state(stats_slot, WorkerState.DRAINING)
            out: list[bytes] = []
            for raw in raws:
                rec = unpack_record(raw)
                t0 = time.perf_counter()
                comp, codec_id = codec.compress_with_id(rec.payload)
                t1 = time.perf_counter()
                busy = t1 - t0
                out.append(
                    pack_record(
                        ChunkRecord(
                            stream_id=rec.stream_id,
                            index=rec.index,
                            payload=comp,
                            compressed=True,
                            orig_len=len(rec.payload),
                            codec_id=codec_id,
                            traced=rec.traced,
                            stage_times=(
                                (t0, t1) if (timed or rec.traced) else None
                            ),
                        )
                    )
                )
                stats.add(
                    stats_slot,
                    chunks=1,
                    bytes_in=len(rec.payload),
                    bytes_out=len(comp),
                    busy_us=int(busy * 1e6),
                )
            sent = 0
            while sent < len(out):
                sent += outr.put_many(out[sent:])
            done += len(raws)
            if crash_after is not None and done >= crash_after:
                # Fault-injection hook: die the hard way, mid-stream,
                # without flushing anything or running handlers.
                os._exit(1)
        # Clean end of stream: seal the output so the collector finishes.
        # A crashing worker must NOT close it — its replacement will
        # keep producing into the same ring.
        outr.close()
        stats.set_state(stats_slot, WorkerState.STOPPED)
        stats.beat(stats_slot, time.time())
    except BaseException:
        stats.set_state(stats_slot, WorkerState.CRASHED)
        raise
    finally:
        inr.detach()
        outr.detach()
        stats.detach()
