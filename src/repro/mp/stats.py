"""Per-worker counters over shared memory: telemetry across the fork.

Worker processes cannot write into the parent's
:class:`~repro.telemetry.registry.MetricRegistry` — it is ordinary
heap state.  Instead each worker owns one 64-byte slot in a
:class:`StatsBlock` (a single shared-memory page) and bumps plain
struct fields there; the supervisor polls :meth:`StatsBlock.snapshot`
and folds the deltas into the normal registry, so ``/metrics``,
``/report`` and ``repro-top`` show process workers exactly like
thread workers.

Slot layout (64 bytes, one cache line, single writer)::

    pid        u32   worker's os.getpid() (0 = never started)
    state      u32   WorkerState value
    restarts   u32   written by the *supervisor* (sole exception to
                     single-writer: workers never touch this field)
    cpus       u32   size of the CPU set actually applied by
                     sched_setaffinity (0 = unpinned)
    chunks     u64   records fully processed
    bytes_in   u64   payload bytes consumed
    bytes_out  u64   payload bytes produced
    busy_us    u64   microseconds spent inside the codec
    heartbeat  f64   time.time() of the worker's last liveness beat

Every field is an aligned 4- or 8-byte store, so a concurrent reader
may see a *stale* value but never a torn one; counters are cumulative
and the poller takes deltas, which makes stale reads self-correcting.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.util.errors import ValidationError

_MAGIC = 0x52_50_4D_53  # "RPMS"
_HEADER = struct.Struct("<II")  # magic, worker slot count
_SLOT = struct.Struct("<IIIIQQQQd")
_SLOT_BYTES = 64
_DATA_OFF = 64

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")

_PID_OFF = 0
_STATE_OFF = 4
_RESTARTS_OFF = 8
_CPUS_OFF = 12
_CHUNKS_OFF = 16
_BYTES_IN_OFF = 24
_BYTES_OUT_OFF = 32
_BUSY_US_OFF = 40
_HEARTBEAT_OFF = 48


class WorkerState(enum.IntEnum):
    """Lifecycle of one worker process, as it reports itself."""

    UNBORN = 0
    STARTING = 1
    RUNNING = 2
    DRAINING = 3
    STOPPED = 4
    CRASHED = 5


@dataclass(frozen=True)
class WorkerStats:
    """One slot, decoded at a point in time."""

    pid: int
    state: WorkerState
    restarts: int
    cpus: int
    chunks: int
    bytes_in: int
    bytes_out: int
    busy_us: int
    heartbeat: float


class StatsBlock:
    """A page of per-worker counter slots shared across processes."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        workers: int,
        *,
        owner: bool,
        name: str,
    ) -> None:
        self._shm = shm
        self._buf = shm.buf
        self.workers = workers
        self._owner = owner
        self.name = name

    @classmethod
    def create(cls, name: str | None = None, *, workers: int = 1) -> "StatsBlock":
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        size = _DATA_OFF + workers * _SLOT_BYTES
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        _HEADER.pack_into(shm.buf, 0, _MAGIC, workers)
        shm.buf[_DATA_OFF:size] = bytes(workers * _SLOT_BYTES)
        return cls(shm, workers, owner=True, name=shm.name)

    @classmethod
    def attach(cls, name: str) -> "StatsBlock":
        # Attach registers the shared tracker's name-set again (no-op);
        # the creator's unlink() is the one balancing unregister.  See
        # the matching note in :meth:`SharedRing.attach`.
        shm = shared_memory.SharedMemory(name=name, create=False)
        magic, workers = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ValidationError(
                f"segment {name!r} is not a StatsBlock (magic=0x{magic:08X})"
            )
        return cls(shm, workers, owner=False, name=name)

    # -- addressing ------------------------------------------------------

    def _off(self, slot: int, field: int) -> int:
        if not 0 <= slot < self.workers:
            raise ValidationError(
                f"slot {slot} out of range (block has {self.workers})"
            )
        return _DATA_OFF + slot * _SLOT_BYTES + field

    # -- single-field writes (each an aligned store) ---------------------

    def set_pid(self, slot: int, pid: int) -> None:
        _U32.pack_into(self._buf, self._off(slot, _PID_OFF), pid)

    def set_state(self, slot: int, state: WorkerState) -> None:
        _U32.pack_into(self._buf, self._off(slot, _STATE_OFF), int(state))

    def bump_restarts(self, slot: int) -> None:
        """Supervisor-only: the one field the worker never writes."""
        off = self._off(slot, _RESTARTS_OFF)
        (cur,) = _U32.unpack_from(self._buf, off)
        _U32.pack_into(self._buf, off, cur + 1)

    def set_cpus(self, slot: int, ncpus: int) -> None:
        _U32.pack_into(self._buf, self._off(slot, _CPUS_OFF), ncpus)

    def add(
        self,
        slot: int,
        *,
        chunks: int = 0,
        bytes_in: int = 0,
        bytes_out: int = 0,
        busy_us: int = 0,
    ) -> None:
        """Accumulate work counters (single-writer, so read-modify-write
        of this worker's own slot is race-free)."""
        for off, delta in (
            (_CHUNKS_OFF, chunks),
            (_BYTES_IN_OFF, bytes_in),
            (_BYTES_OUT_OFF, bytes_out),
            (_BUSY_US_OFF, busy_us),
        ):
            if delta:
                at = self._off(slot, off)
                (cur,) = _U64.unpack_from(self._buf, at)
                _U64.pack_into(self._buf, at, cur + delta)

    def beat(self, slot: int, now: float) -> None:
        _F64.pack_into(self._buf, self._off(slot, _HEARTBEAT_OFF), now)

    # -- reader side -----------------------------------------------------

    def read(self, slot: int) -> WorkerStats:
        off = self._off(slot, 0)
        (
            pid,
            state,
            restarts,
            cpus,
            chunks,
            bytes_in,
            bytes_out,
            busy_us,
            heartbeat,
        ) = _SLOT.unpack_from(self._buf, off)
        return WorkerStats(
            pid=pid,
            state=WorkerState(state),
            restarts=restarts,
            cpus=cpus,
            chunks=chunks,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            busy_us=busy_us,
            heartbeat=heartbeat,
        )

    def snapshot(self) -> list[WorkerStats]:
        """Decode every slot (the supervisor's polling entrypoint)."""
        return [self.read(i) for i in range(self.workers)]

    # -- lifecycle -------------------------------------------------------

    def detach(self) -> None:
        self._buf = memoryview(b"")
        self._shm.close()

    def unlink(self) -> None:
        self.detach()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
