"""The byte record the rings carry: one chunk, self-describing.

A :class:`ChunkRecord` is the shared-memory sibling of the transport's
:class:`~repro.live.transport.Frame` — same identity fields, but no
checksum (the bytes never leave the host; the wire hop downstream adds
CRC32 as always) and no magic (the ring's slot length already delimits
records).  Layout, little-endian::

    index     u32   chunk index within the stream
    flags     u16   bit 0: payload is compressed; bit 3: flow-traced;
                    bit 4: timed (a 16-byte stage-timestamp trailer
                    follows the payload); bits 8-15: codec wire id
                    (0 = the pipeline's configured codec), matching
                    the transport's flag layout
    sid_len   u16   stream id length
    orig_len  u32   uncompressed payload length
    <stream id bytes>
    <payload bytes>
    <t0, t1   2×f64 — only when bit 4 is set>

The trailer is how per-chunk flow tracing crosses the process
boundary (:mod:`repro.trace`): the parent marks a sampled record with
bit 3, the compress worker echoes the bit and stamps its wall-clock
work interval ``(t0, t1)`` into the outgoing trailer (bit 4), and the
collector synthesizes the ``mp-compress-N`` span from it.  A pipeline
with telemetry attached asks workers to stamp *every* record (timed
without traced) so process mode emits the same per-chunk compress
spans thread mode does.  Untraced, untimed records are byte-identical
to the previous layout.

Packing is one ``struct`` + two slices; the ring then copies the
record straight into its slot, so a chunk crosses the process boundary
with exactly one memcpy in and one out — no pickle, no refcounting,
no allocator churn proportional to object graphs.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.util.errors import ValidationError

_RECORD = struct.Struct("<IHHI")

_FLAG_COMPRESSED = 0x1
#: Bit 3: the chunk is a sampled member of a flow trace (matches the
#: transport's ``FLAG_TRACED`` bit position so intent forwards 1:1).
_FLAG_TRACED = 0x8
#: Bit 4: the record ends with a (t0, t1) stage-timestamp trailer.
_FLAG_TIMED = 0x10
#: Bits 8-15 of the flags word carry the codec wire id (same layout as
#: the transport frame header, so the values forward unchanged).
_CODEC_SHIFT = 8

#: Stage-work trailer: wall-clock start/end of the compress call.
_TIME_TRAILER = struct.Struct("<dd")

#: Matches the transport's stream-id bound so any record that fits a
#: ring also frames onto the wire.
MAX_STREAM_ID = 4096


class ChunkRecord(NamedTuple):
    """One chunk as it crosses a :class:`~repro.mp.ring.SharedRing`."""

    stream_id: str
    index: int
    payload: bytes
    compressed: bool
    orig_len: int
    #: Wire id of the codec that produced the payload (0 = the
    #: pipeline's configured codec).
    codec_id: int = 0
    #: Flow-trace membership — forwarded unchanged through the worker.
    traced: bool = False
    #: Wall-clock start/end of the stage work that produced this
    #: record; ``None`` when the producer did not stamp (the record
    #: then carries no trailer).
    stage_times: "tuple[float, float] | None" = None

    @property
    def key(self) -> tuple[str, int]:
        """Identity used for replay bookkeeping and collector dedup."""
        return (self.stream_id, self.index)


def pack_record(record: ChunkRecord) -> bytes:
    """Encode ``record`` for a ring slot."""
    sid = record.stream_id.encode()
    if len(sid) > MAX_STREAM_ID:
        raise ValidationError(f"stream id too long ({len(sid)} bytes)")
    if not 0 <= record.codec_id <= 255:
        raise ValidationError(
            f"codec id {record.codec_id} outside [0, 255]"
        )
    flags = (
        (_FLAG_COMPRESSED if record.compressed else 0)
        | (_FLAG_TRACED if record.traced else 0)
        | (record.codec_id << _CODEC_SHIFT)
    )
    tail = b""
    if record.stage_times is not None:
        flags |= _FLAG_TIMED
        tail = _TIME_TRAILER.pack(*record.stage_times)
    return (
        _RECORD.pack(record.index, flags, len(sid), record.orig_len)
        + sid
        + record.payload
        + tail
    )


def unpack_record(data: bytes) -> ChunkRecord:
    """Invert :func:`pack_record`; raises on a malformed record."""
    if len(data) < _RECORD.size:
        raise ValidationError(
            f"ring record truncated ({len(data)} < {_RECORD.size} bytes)"
        )
    index, flags, sid_len, orig_len = _RECORD.unpack_from(data, 0)
    if len(data) < _RECORD.size + sid_len:
        raise ValidationError("ring record truncated inside the stream id")
    sid = data[_RECORD.size : _RECORD.size + sid_len].decode()
    end = len(data)
    stage_times: tuple[float, float] | None = None
    if flags & _FLAG_TIMED:
        if end < _RECORD.size + sid_len + _TIME_TRAILER.size:
            raise ValidationError(
                "ring record truncated inside the time trailer"
            )
        end -= _TIME_TRAILER.size
        t0, t1 = _TIME_TRAILER.unpack_from(data, end)
        stage_times = (t0, t1)
    payload = data[_RECORD.size + sid_len : end]
    return ChunkRecord(
        stream_id=sid,
        index=index,
        payload=payload,
        compressed=bool(flags & _FLAG_COMPRESSED),
        orig_len=orig_len,
        codec_id=(flags >> _CODEC_SHIFT) & 0xFF,
        traced=bool(flags & _FLAG_TRACED),
        stage_times=stage_times,
    )


def record_overhead(stream_id: str) -> int:
    """Bytes a record adds on top of its payload (slot sizing helper).

    Includes the optional time trailer — a slot sized with this bound
    fits the record whether or not the producer stamps timestamps.
    """
    return _RECORD.size + len(stream_id.encode()) + _TIME_TRAILER.size
